//! Structural netlist linting.
//!
//! The linter runs a catalog of structural passes over a [`Netlist`] and
//! emits machine-readable [`LintDiagnostic`]s — each with a severity, the
//! offending node's path, and a suggested fix. It complements
//! [`Netlist::validate`]: `validate` rejects netlists that are unsafe to
//! simulate (dangling ids, cycles-by-forward-reference, inconsistent
//! input lists), while the linter *also* reports quality findings that
//! are legal but suspicious — dead gates, floating inputs,
//! constant-driven outputs, fanout and depth budget overruns.
//!
//! Because netlists built through the ordinary builders are append-only
//! DAGs, the graph-shape errors (cycles, dangling references) can only
//! arise via [`Netlist::from_parts`] — deserialized netlists and test
//! fixtures. The optimizer runs the linter as a post-pass and asserts it
//! never introduces regressions.
//!
//! # Example
//!
//! ```
//! use gatesim::Netlist;
//!
//! let mut nl = Netlist::new();
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let y = nl.and2(a, b);
//! let _orphan = nl.or2(a, b); // never reaches an output
//! nl.mark_output(y, "y");
//!
//! let report = nl.lint();
//! assert!(report.is_clean()); // no errors…
//! assert_eq!(report.warning_count(), 1); // …but the dead gate is flagged
//! ```

use std::collections::HashMap;

use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// How serious a [`LintDiagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but simulatable: dead logic, budget overruns.
    Warning,
    /// Structurally broken: the netlist cannot be simulated reliably.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The lint pass that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintPass {
    /// A gate or output references a node id outside the netlist.
    DanglingReference,
    /// The graph contains a combinational cycle.
    CombinationalCycle,
    /// The primary-input list disagrees with the `Input`-kind nodes, so
    /// some node would never be driven by the simulator.
    UndrivenNode,
    /// Two primary outputs (error) or inputs (warning) share a name.
    NameCollision,
    /// A gate's value can never reach a primary output.
    DeadGate,
    /// A primary input feeds no logic cone of any output.
    FloatingInput,
    /// A primary output is driven by a constant (possibly via buffers).
    ConstantOutput,
    /// A node's fanout exceeds [`LintConfig::max_fanout`].
    FanoutBudget,
    /// An output's logic depth exceeds [`LintConfig::max_depth`].
    DepthBudget,
}

impl LintPass {
    /// Kebab-case mnemonic, e.g. `combinational-cycle`.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            LintPass::DanglingReference => "dangling-reference",
            LintPass::CombinationalCycle => "combinational-cycle",
            LintPass::UndrivenNode => "undriven-node",
            LintPass::NameCollision => "name-collision",
            LintPass::DeadGate => "dead-gate",
            LintPass::FloatingInput => "floating-input",
            LintPass::ConstantOutput => "constant-output",
            LintPass::FanoutBudget => "fanout-budget",
            LintPass::DepthBudget => "depth-budget",
        }
    }

    /// All passes, in catalog order.
    #[must_use]
    pub const fn all() -> [LintPass; 9] {
        [
            LintPass::DanglingReference,
            LintPass::CombinationalCycle,
            LintPass::UndrivenNode,
            LintPass::NameCollision,
            LintPass::DeadGate,
            LintPass::FloatingInput,
            LintPass::ConstantOutput,
            LintPass::FanoutBudget,
            LintPass::DepthBudget,
        ]
    }
}

impl std::fmt::Display for LintPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single finding from a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Which pass fired.
    pub pass: LintPass,
    /// How serious the finding is.
    pub severity: Severity,
    /// The primary offending node, when one exists.
    pub node: Option<NodeId>,
    /// Human-readable location, e.g. `n17 (maj)` or `output "cout"`.
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} (help: {})",
            self.severity, self.pass, self.path, self.message, self.suggestion
        )
    }
}

/// Budgets for the resource-oriented passes.
///
/// The defaults are sized so every netlist the workspace ships — up to
/// the 64-bit ripple-carry adder, whose carry chain is the deepest
/// structure here — passes without findings, while an accidental
/// quadratic blow-up trips them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Maximum fanout any single node may have.
    pub max_fanout: usize,
    /// Maximum logic depth (gates on the longest input→output path).
    pub max_depth: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            max_fanout: 64,
            max_depth: 256,
        }
    }
}

/// The collected findings of a lint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<LintDiagnostic>,
}

impl LintReport {
    /// All findings, in pass-catalog order.
    #[must_use]
    pub fn diagnostics(&self) -> &[LintDiagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` if no error-severity findings were produced (warnings are
    /// allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` if nothing at all was flagged.
    #[must_use]
    pub fn is_spotless(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings per pass, for regression comparisons.
    #[must_use]
    pub fn counts_by_pass(&self) -> HashMap<LintPass, usize> {
        let mut counts = HashMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.pass).or_insert(0) += 1;
        }
        counts
    }

    /// `true` if `self` has more findings than `baseline` in any pass —
    /// i.e. a transformation introduced new problems.
    #[must_use]
    pub fn regressed_from(&self, baseline: &LintReport) -> bool {
        let before = baseline.counts_by_pass();
        self.counts_by_pass()
            .iter()
            .any(|(pass, &count)| count > before.get(pass).copied().unwrap_or(0))
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "lint: clean");
        }
        writeln!(
            f,
            "lint: {} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl Netlist {
    /// Run the full lint catalog with the default [`LintConfig`].
    #[must_use]
    pub fn lint(&self) -> LintReport {
        lint_with_config(self, &LintConfig::default())
    }
}

/// Run the full lint catalog with the default [`LintConfig`].
#[must_use]
pub fn lint(netlist: &Netlist) -> LintReport {
    lint_with_config(netlist, &LintConfig::default())
}

fn node_path(netlist: &Netlist, id: NodeId) -> String {
    let node = &netlist.nodes()[id.index()];
    match node.name() {
        Some(name) => format!("{id} ({} {name:?})", node.kind()),
        None => format!("{id} ({})", node.kind()),
    }
}

fn id_of(idx: usize) -> NodeId {
    NodeId::from_raw(u32::try_from(idx).expect("netlist larger than u32 nodes"))
}

/// Run the full lint catalog with an explicit configuration.
#[must_use]
pub fn lint_with_config(netlist: &Netlist, config: &LintConfig) -> LintReport {
    let mut diagnostics = Vec::new();
    let len = netlist.len();
    let nodes = netlist.nodes();
    let in_range = |id: NodeId| id.index() < len;

    // --- dangling-reference: gate fan-ins and primary outputs -----------
    let mut structurally_sound = true;
    for (idx, node) in nodes.iter().enumerate() {
        for &input in node.inputs() {
            if !in_range(input) {
                structurally_sound = false;
                diagnostics.push(LintDiagnostic {
                    pass: LintPass::DanglingReference,
                    severity: Severity::Error,
                    node: Some(id_of(idx)),
                    path: node_path(netlist, id_of(idx)),
                    message: format!(
                        "fan-in references node id {} but the netlist has {len} nodes",
                        input.index()
                    ),
                    suggestion: "rebuild the netlist through the builder API, which \
                                 rejects foreign node ids"
                        .into(),
                });
            }
        }
    }
    for (id, name) in netlist.primary_outputs() {
        if !in_range(*id) {
            structurally_sound = false;
            diagnostics.push(LintDiagnostic {
                pass: LintPass::DanglingReference,
                severity: Severity::Error,
                node: None,
                path: format!("output {name:?}"),
                message: format!(
                    "references node id {} but the netlist has {len} nodes",
                    id.index()
                ),
                suggestion: "mark an existing node as the output instead".into(),
            });
        }
    }

    // --- undriven-node: input list vs Input-kind nodes ------------------
    let mut listed = vec![false; len];
    for id in netlist.primary_inputs() {
        if !in_range(*id) {
            structurally_sound = false;
            diagnostics.push(LintDiagnostic {
                pass: LintPass::DanglingReference,
                severity: Severity::Error,
                node: None,
                path: format!("primary-input list entry {id}"),
                message: format!("references node id {} past the netlist end", id.index()),
                suggestion: "drop the stale entry from the input list".into(),
            });
            continue;
        }
        if nodes[id.index()].kind() != GateKind::Input {
            diagnostics.push(LintDiagnostic {
                pass: LintPass::UndrivenNode,
                severity: Severity::Error,
                node: Some(*id),
                path: node_path(netlist, *id),
                message: "listed as a primary input but is not an Input node".into(),
                suggestion: "list only Input-kind nodes as primary inputs".into(),
            });
        } else {
            listed[id.index()] = true;
        }
    }
    for (idx, node) in nodes.iter().enumerate() {
        if node.kind() == GateKind::Input && !listed[idx] {
            diagnostics.push(LintDiagnostic {
                pass: LintPass::UndrivenNode,
                severity: Severity::Error,
                node: Some(id_of(idx)),
                path: node_path(netlist, id_of(idx)),
                message: "Input node is missing from the primary-input list and would \
                          never be driven"
                    .into(),
                suggestion: "append the node to the primary-input list".into(),
            });
        }
    }

    // --- name-collision --------------------------------------------------
    let mut seen_outputs: HashMap<&str, usize> = HashMap::new();
    for (_, name) in netlist.primary_outputs() {
        *seen_outputs.entry(name.as_str()).or_insert(0) += 1;
    }
    let mut dup_outputs: Vec<&str> = seen_outputs
        .iter()
        .filter(|(_, &c)| c > 1)
        .map(|(&n, _)| n)
        .collect();
    dup_outputs.sort_unstable();
    for name in dup_outputs {
        diagnostics.push(LintDiagnostic {
            pass: LintPass::NameCollision,
            severity: Severity::Error,
            node: None,
            path: format!("output {name:?}"),
            message: format!("{} outputs share this name", seen_outputs[name]),
            suggestion: "give each primary output a unique name".into(),
        });
    }
    let mut seen_inputs: HashMap<&str, usize> = HashMap::new();
    for id in netlist.primary_inputs() {
        if in_range(*id) {
            if let Some(name) = nodes[id.index()].name() {
                *seen_inputs.entry(name).or_insert(0) += 1;
            }
        }
    }
    let mut dup_inputs: Vec<&str> = seen_inputs
        .iter()
        .filter(|(_, &c)| c > 1)
        .map(|(&n, _)| n)
        .collect();
    dup_inputs.sort_unstable();
    for name in dup_inputs {
        diagnostics.push(LintDiagnostic {
            pass: LintPass::NameCollision,
            severity: Severity::Warning,
            node: None,
            path: format!("input {name:?}"),
            message: format!("{} inputs share this name", seen_inputs[name]),
            suggestion: "give each primary input a unique name".into(),
        });
    }

    // --- combinational-cycle ---------------------------------------------
    // Iterative three-color DFS over in-range edges; needed because
    // `from_parts` permits forward references.
    let mut acyclic = true;
    if structurally_sound {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; len];
        for root in 0..len {
            if color[root] != WHITE {
                continue;
            }
            // Stack of (node, next-child-index); `path` mirrors the gray chain.
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            let mut path = vec![root];
            while let Some(&mut (idx, ref mut child)) = stack.last_mut() {
                let fanins = nodes[idx].inputs();
                if *child < fanins.len() {
                    let next = fanins[*child].index();
                    *child += 1;
                    match color[next] {
                        WHITE => {
                            color[next] = GRAY;
                            stack.push((next, 0));
                            path.push(next);
                        }
                        GRAY => {
                            acyclic = false;
                            let start = path.iter().position(|&p| p == next).unwrap_or(0);
                            let cycle: Vec<String> = path[start..]
                                .iter()
                                .chain(std::iter::once(&next))
                                .map(|&p| id_of(p).to_string())
                                .collect();
                            diagnostics.push(LintDiagnostic {
                                pass: LintPass::CombinationalCycle,
                                severity: Severity::Error,
                                node: Some(id_of(next)),
                                path: node_path(netlist, id_of(next)),
                                message: format!("combinational cycle: {}", cycle.join(" → ")),
                                suggestion: "break the loop (combinational netlists \
                                             must be acyclic)"
                                    .into(),
                            });
                        }
                        _ => {}
                    }
                } else {
                    color[idx] = BLACK;
                    stack.pop();
                    path.pop();
                }
            }
        }
    }

    // The remaining passes assume a structurally sound, acyclic graph.
    if !structurally_sound || !acyclic {
        return LintReport { diagnostics };
    }

    // --- dead-gate / floating-input: reachability from the outputs -------
    let mut reachable = vec![false; len];
    let mut queue: Vec<usize> = netlist
        .primary_outputs()
        .iter()
        .map(|(id, _)| id.index())
        .collect();
    while let Some(idx) = queue.pop() {
        if reachable[idx] {
            continue;
        }
        reachable[idx] = true;
        for &input in nodes[idx].inputs() {
            if !reachable[input.index()] {
                queue.push(input.index());
            }
        }
    }
    for (idx, node) in nodes.iter().enumerate() {
        if reachable[idx] {
            continue;
        }
        if node.kind() == GateKind::Input {
            diagnostics.push(LintDiagnostic {
                pass: LintPass::FloatingInput,
                severity: Severity::Warning,
                node: Some(id_of(idx)),
                path: node_path(netlist, id_of(idx)),
                message: "primary input reaches no primary output".into(),
                suggestion: "remove the input or connect it to live logic".into(),
            });
        } else {
            diagnostics.push(LintDiagnostic {
                pass: LintPass::DeadGate,
                severity: Severity::Warning,
                node: Some(id_of(idx)),
                path: node_path(netlist, id_of(idx)),
                message: "gate reaches no primary output".into(),
                suggestion: "remove it (optimize() strips dead logic)".into(),
            });
        }
    }

    // --- constant-output: follow buffer chains to a constant -------------
    for (id, name) in netlist.primary_outputs() {
        let mut cur = *id;
        while nodes[cur.index()].kind() == GateKind::Buf {
            cur = nodes[cur.index()].inputs()[0];
        }
        let kind = nodes[cur.index()].kind();
        if matches!(kind, GateKind::Const0 | GateKind::Const1) {
            diagnostics.push(LintDiagnostic {
                pass: LintPass::ConstantOutput,
                severity: Severity::Warning,
                node: Some(*id),
                path: format!("output {name:?}"),
                message: format!("stuck at constant ({kind})"),
                suggestion: "check the logic cone; a primary output should depend \
                             on at least one input"
                    .into(),
            });
        }
    }

    // --- fanout-budget ----------------------------------------------------
    let mut fanout = vec![0usize; len];
    for node in nodes {
        for &input in node.inputs() {
            fanout[input.index()] += 1;
        }
    }
    for (id, _) in netlist.primary_outputs() {
        fanout[id.index()] += 1;
    }
    for (idx, &count) in fanout.iter().enumerate() {
        if count > config.max_fanout {
            diagnostics.push(LintDiagnostic {
                pass: LintPass::FanoutBudget,
                severity: Severity::Warning,
                node: Some(id_of(idx)),
                path: node_path(netlist, id_of(idx)),
                message: format!("fanout {count} exceeds the budget of {}", config.max_fanout),
                suggestion: "insert buffers or restructure the cone".into(),
            });
        }
    }

    // --- depth-budget -----------------------------------------------------
    // Longest input→output path counting logic gates. Memoized iterative
    // post-order (insertion order need not be topological for
    // `from_parts` netlists, but the graph is acyclic here).
    let mut depth: Vec<Option<usize>> = vec![None; len];
    for root in 0..len {
        if depth[root].is_some() {
            continue;
        }
        let mut stack = vec![(root, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if depth[idx].is_some() {
                continue;
            }
            let fanins = nodes[idx].inputs();
            if expanded || fanins.is_empty() {
                let max_in = fanins
                    .iter()
                    .map(|i| depth[i.index()].expect("children resolved"))
                    .max()
                    .unwrap_or(0);
                depth[idx] = Some(max_in + usize::from(!fanins.is_empty()));
            } else {
                stack.push((idx, true));
                for &input in fanins {
                    if depth[input.index()].is_none() {
                        stack.push((input.index(), false));
                    }
                }
            }
        }
    }
    let deepest = netlist
        .primary_outputs()
        .iter()
        .map(|(id, name)| (depth[id.index()].unwrap_or(0), id, name))
        .max_by_key(|(d, _, _)| *d);
    if let Some((d, id, name)) = deepest {
        if d > config.max_depth {
            diagnostics.push(LintDiagnostic {
                pass: LintPass::DepthBudget,
                severity: Severity::Warning,
                node: Some(*id),
                path: format!("output {name:?}"),
                message: format!("logic depth {d} exceeds the budget of {}", config.max_depth),
                suggestion: "use a parallel-prefix structure or raise \
                             LintConfig::max_depth"
                    .into(),
            });
        }
    }

    LintReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::netlist::Node;

    #[test]
    fn shipped_adders_are_spotless() {
        for width in [4usize, 16, 32, 64] {
            let (nl, _) = builders::ripple_carry_adder(width);
            let report = nl.lint();
            assert!(report.is_spotless(), "rca{width}: {report}");
            let (nl, _) = builders::modular_adder(width);
            let report = nl.lint();
            assert!(report.is_spotless(), "mod{width}: {report}");
        }
    }

    #[test]
    fn dead_gate_is_flagged() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let live = nl.and2(a, b);
        let _dead = nl.xor2(a, b);
        nl.mark_output(live, "y");
        let report = nl.lint();
        assert!(report.is_clean());
        let dead: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.pass == LintPass::DeadGate)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].severity, Severity::Warning);
        assert!(dead[0].path.contains("xor"));
    }

    #[test]
    fn floating_input_is_flagged() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let _unused = nl.input("b");
        let y = nl.not(a);
        nl.mark_output(y, "y");
        let report = nl.lint();
        let floats: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.pass == LintPass::FloatingInput)
            .collect();
        assert_eq!(floats.len(), 1);
        assert!(floats[0].path.contains("\"b\""));
    }

    #[test]
    fn combinational_cycle_is_detected() {
        // n0 = input, n1 = and(n0, n2), n2 = not(n1): a 2-gate loop only
        // expressible through from_parts.
        let nodes = vec![
            Node::new(GateKind::Input, &[], Some("a".into())),
            Node::new(
                GateKind::And2,
                &[NodeId::from_raw(0), NodeId::from_raw(2)],
                None,
            ),
            Node::new(GateKind::Not, &[NodeId::from_raw(1)], None),
        ];
        let nl = Netlist::from_parts(
            nodes,
            vec![NodeId::from_raw(0)],
            vec![(NodeId::from_raw(2), "y".into())],
        );
        assert!(nl.validate().is_err(), "forward refs must fail validate");
        let report = nl.lint();
        assert!(!report.is_clean());
        let cycles: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.pass == LintPass::CombinationalCycle)
            .collect();
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("→"), "{}", cycles[0].message);
    }

    #[test]
    fn dangling_reference_is_detected() {
        let nodes = vec![
            Node::new(GateKind::Input, &[], Some("a".into())),
            Node::new(
                GateKind::And2,
                &[NodeId::from_raw(0), NodeId::from_raw(99)],
                None,
            ),
        ];
        let nl = Netlist::from_parts(
            nodes,
            vec![NodeId::from_raw(0)],
            vec![(NodeId::from_raw(1), "y".into())],
        );
        let report = nl.lint();
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics()[0].pass, LintPass::DanglingReference);
    }

    #[test]
    fn undriven_input_node_is_detected() {
        // An Input node that is not in the primary-input list.
        let nodes = vec![
            Node::new(GateKind::Input, &[], Some("a".into())),
            Node::new(GateKind::Input, &[], Some("ghost".into())),
            Node::new(
                GateKind::Or2,
                &[NodeId::from_raw(0), NodeId::from_raw(1)],
                None,
            ),
        ];
        let nl = Netlist::from_parts(
            nodes,
            vec![NodeId::from_raw(0)],
            vec![(NodeId::from_raw(2), "y".into())],
        );
        let report = nl.lint();
        let undriven: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.pass == LintPass::UndrivenNode)
            .collect();
        assert_eq!(undriven.len(), 1);
        assert_eq!(undriven[0].severity, Severity::Error);
        assert!(undriven[0].path.contains("ghost"));
    }

    #[test]
    fn constant_output_is_flagged_through_buffers() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let y = nl.buf(a);
        nl.mark_output(y, "ok");
        let c = nl.constant(true);
        let cb = nl.buf(c);
        nl.mark_output(cb, "stuck");
        let report = nl.lint();
        let constants: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.pass == LintPass::ConstantOutput)
            .collect();
        assert_eq!(constants.len(), 1);
        assert!(constants[0].path.contains("stuck"));
    }

    #[test]
    fn name_collisions_are_reported_at_both_severities() {
        let mut nl = Netlist::new();
        let a = nl.input("x");
        let b = nl.input("x");
        let y = nl.and2(a, b);
        nl.mark_output(y, "y");
        nl.mark_output(y, "y");
        let report = nl.lint();
        let collisions: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.pass == LintPass::NameCollision)
            .collect();
        assert_eq!(collisions.len(), 2);
        assert!(collisions
            .iter()
            .any(|d| d.severity == Severity::Error && d.path.contains("output")));
        assert!(collisions
            .iter()
            .any(|d| d.severity == Severity::Warning && d.path.contains("input")));
    }

    #[test]
    fn budgets_trip_on_tiny_limits() {
        let (nl, _) = builders::ripple_carry_adder(8);
        let tight = LintConfig {
            max_fanout: 1,
            max_depth: 2,
        };
        let report = lint_with_config(&nl, &tight);
        assert!(report.is_clean(), "budgets are warnings, not errors");
        let passes = report.counts_by_pass();
        assert!(passes.get(&LintPass::FanoutBudget).copied().unwrap_or(0) > 0);
        assert_eq!(passes.get(&LintPass::DepthBudget).copied(), Some(1));
    }

    #[test]
    fn regression_comparison_detects_new_findings() {
        let mut clean = Netlist::new();
        let a = clean.input("a");
        let y = clean.not(a);
        clean.mark_output(y, "y");
        let mut dirty = clean.clone();
        let _dead = dirty.buf(a);
        let base = clean.lint();
        let after = dirty.lint();
        assert!(after.regressed_from(&base));
        assert!(!base.regressed_from(&after));
        assert!(!base.regressed_from(&base));
    }

    #[test]
    fn diagnostics_render_with_severity_pass_and_help() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let _dead = nl.not(a);
        let y = nl.buf(a);
        nl.mark_output(y, "y");
        let report = nl.lint();
        let text = report.to_string();
        assert!(text.contains("warning[dead-gate]"), "{text}");
        assert!(text.contains("help:"), "{text}");
    }
}
