//! Error types for netlist construction and simulation.

use std::error::Error;
use std::fmt;

/// Error raised when a [`Netlist`](crate::Netlist) is assembled
/// inconsistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildNetlistError {
    /// A gate referenced a node id that does not exist (yet) in this
    /// netlist. Because netlists are append-only, forward references are
    /// impossible by construction and this indicates a node id from a
    /// different netlist.
    UnknownNode {
        /// The offending node id (raw index).
        node: u32,
        /// Number of nodes currently in the netlist.
        len: usize,
    },
    /// An output was marked twice with the same name.
    DuplicateOutputName(String),
    /// A primary output references a node id outside the netlist.
    InvalidOutput {
        /// Name of the offending output.
        name: String,
        /// The out-of-range node id (raw index).
        node: u32,
        /// Number of nodes in the netlist.
        len: usize,
    },
    /// The primary-input list is inconsistent with the node array: an
    /// entry is out of range, references a non-input node, or an
    /// input-kind node is missing from the list (and would never be
    /// driven by the simulator).
    MalformedInputList {
        /// The offending node id (raw index).
        node: u32,
    },
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::UnknownNode { node, len } => write!(
                f,
                "node id {node} is out of range for a netlist with {len} nodes \
                 (was it created by a different netlist?)"
            ),
            BuildNetlistError::DuplicateOutputName(name) => {
                write!(f, "output name {name:?} is already in use")
            }
            BuildNetlistError::InvalidOutput { name, node, len } => write!(
                f,
                "output {name:?} references node id {node}, out of range for a \
                 netlist with {len} nodes"
            ),
            BuildNetlistError::MalformedInputList { node } => write!(
                f,
                "primary-input list is inconsistent at node id {node} \
                 (entry out of range, non-input node listed, or input node unlisted)"
            ),
        }
    }
}

impl Error for BuildNetlistError {}

/// Error raised by [`Simulator::evaluate`](crate::Simulator::evaluate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulateError {
    /// The supplied input vector length does not match the number of
    /// primary inputs of the netlist.
    InputLengthMismatch {
        /// Number of values supplied.
        supplied: usize,
        /// Number of primary inputs the netlist declares.
        expected: usize,
    },
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::InputLengthMismatch { supplied, expected } => write!(
                f,
                "input vector has {supplied} values but the netlist has {expected} primary inputs"
            ),
        }
    }
}

impl Error for SimulateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_lowercase_messages() {
        let e = SimulateError::InputLengthMismatch {
            supplied: 3,
            expected: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("3"));
        assert!(msg.contains("5"));
        assert!(msg.starts_with(char::is_lowercase));

        let e = BuildNetlistError::UnknownNode { node: 9, len: 2 };
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildNetlistError>();
        assert_send_sync::<SimulateError>();
    }
}
