//! Reduced ordered binary decision diagrams (ROBDDs) for formal
//! verification of netlists.
//!
//! This module is the proof engine behind [`crate::equiv::prove`]: a
//! hash-consed BDD manager compiles a [`Netlist`] into one canonical
//! decision diagram per primary output. Because ROBDDs are canonical for
//! a fixed variable order, two circuits are equivalent *iff* their
//! output diagrams are the same node — an actual proof, unlike the
//! simulation sampling of [`crate::equiv::check`].
//!
//! Beyond equivalence, the manager supports the two analyses the
//! approximate-arithmetic crates need for proof-grade error
//! characterization without `2^n` vector sweeps:
//!
//! * **model counting** ([`Bdd::sat_fraction`]) — the exact fraction of
//!   input vectors satisfying a function, which gives exhaustive error
//!   rates;
//! * **word-level arithmetic over BDD vectors** ([`Bdd::word_sub`],
//!   [`Bdd::word_abs`], [`Bdd::max_unsigned`]) — symbolic two's
//!   complement subtraction and a greedy MSB-first maximization that
//!   extracts the worst-case error *and* an operand pair attaining it.
//!
//! # Variable ordering
//!
//! BDD sizes are notoriously order-sensitive: a ripple-carry adder is
//! linear under the interleaved order `a0, b0, cin, a1, b1, …` and
//! exponential under the declaration order `a0…an, b0…bn`. The
//! [`interleaved_order`] heuristic derives a good order structurally by
//! a depth-first traversal from the outputs, which interleaves operand
//! bits for all the adder topologies in this workspace.
//!
//! # Example
//!
//! ```
//! use gatesim::bdd::{interleaved_order, Bdd};
//! use gatesim::Netlist;
//!
//! let mut nl = Netlist::new();
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let y = nl.xor2(a, b);
//! nl.mark_output(y, "y");
//!
//! let mut bdd = Bdd::new(nl.num_inputs() as u32);
//! let order = interleaved_order(&nl);
//! let outs = bdd.compile(&nl, &order).unwrap();
//! // XOR is true on half of the input space.
//! assert_eq!(bdd.sat_fraction(outs[0]), 0.5);
//! ```

use std::collections::HashMap;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Handle to a BDD node inside a [`Bdd`] manager.
///
/// Refs are canonical: two refs from the same manager denote the same
/// Boolean function *iff* they are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false function.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true function.
    pub const TRUE: BddRef = BddRef(1);

    /// `true` for the two terminal nodes.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

/// Error raised when a BDD operation exceeds the manager's node budget.
///
/// BDDs can blow up exponentially under a bad variable order; the budget
/// turns that failure mode into a recoverable error so callers can fall
/// back to simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeLimitExceeded {
    /// The configured node budget.
    pub limit: usize,
}

impl std::fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BDD node budget of {} nodes exceeded", self.limit)
    }
}

impl std::error::Error for NodeLimitExceeded {}

/// Variable index of the terminal nodes: sorts after every real variable.
const TERMINAL_VAR: u32 = u32::MAX;

struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A hash-consed ROBDD manager over a fixed number of variables.
///
/// The default node budget is [`Bdd::DEFAULT_NODE_LIMIT`]; use
/// [`Bdd::with_node_limit`] to tighten or loosen it.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    num_vars: u32,
    node_limit: usize,
}

impl Bdd {
    /// Default node budget: generous enough for every 64-bit adder in the
    /// workspace under the interleaved order, small enough to fail fast
    /// on an exponential blow-up.
    pub const DEFAULT_NODE_LIMIT: usize = 1 << 22;

    /// Create a manager over `num_vars` variables with the default node
    /// budget.
    #[must_use]
    pub fn new(num_vars: u32) -> Self {
        Self::with_node_limit(num_vars, Self::DEFAULT_NODE_LIMIT)
    }

    /// Create a manager with an explicit node budget.
    #[must_use]
    pub fn with_node_limit(num_vars: u32, node_limit: usize) -> Self {
        let mut nodes = Vec::with_capacity(1024);
        // Index 0 / 1 are the FALSE / TRUE terminals.
        nodes.push(Node {
            var: TERMINAL_VAR,
            lo: BddRef::FALSE,
            hi: BddRef::FALSE,
        });
        nodes.push(Node {
            var: TERMINAL_VAR,
            lo: BddRef::TRUE,
            hi: BddRef::TRUE,
        });
        Self {
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
            node_limit,
        }
    }

    /// Number of variables this manager was created over.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of live nodes (including the two terminals).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if only the terminals exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    fn var_of(&self, f: BddRef) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> Result<BddRef, NodeLimitExceeded> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return Ok(r);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(NodeLimitExceeded {
                limit: self.node_limit,
            });
        }
        let r = BddRef(u32::try_from(self.nodes.len()).expect("BDD larger than u32 nodes"));
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        Ok(r)
    }

    /// The single-variable function `x_var`.
    ///
    /// # Panics
    /// Panics if `var` is outside the manager's variable range.
    pub fn var(&mut self, var: u32) -> Result<BddRef, NodeLimitExceeded> {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, BddRef::FALSE, BddRef::TRUE)
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        let node = &self.nodes[f.0 as usize];
        if node.var == var {
            (node.lo, node.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)` — the universal
    /// BDD operation every connective below derives from.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, NodeLimitExceeded> {
        // Terminal cases.
        if f == BddRef::TRUE {
            return Ok(g);
        }
        if f == BddRef::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let m = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, m);
        let (g0, g1) = self.cofactors(g, m);
        let (h0, h1) = self.cofactors(h, m);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(m, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, NodeLimitExceeded> {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, NodeLimitExceeded> {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> Result<BddRef, NodeLimitExceeded> {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, NodeLimitExceeded> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Compile a netlist into one BDD per primary output (in output
    /// declaration order).
    ///
    /// `var_of_input[i]` is the BDD variable assigned to the netlist's
    /// `i`-th primary input — typically produced by [`interleaved_order`].
    ///
    /// # Errors
    /// Returns [`NodeLimitExceeded`] if any intermediate diagram exceeds
    /// the node budget.
    ///
    /// # Panics
    /// Panics if `var_of_input` does not cover every primary input or
    /// assigns a variable outside the manager's range.
    pub fn compile(
        &mut self,
        netlist: &Netlist,
        var_of_input: &[u32],
    ) -> Result<Vec<BddRef>, NodeLimitExceeded> {
        assert_eq!(
            var_of_input.len(),
            netlist.num_inputs(),
            "variable order must cover every primary input"
        );
        let mut input_seq = 0usize;
        let mut refs: Vec<BddRef> = Vec::with_capacity(netlist.len());
        for node in netlist.nodes() {
            let get = |i: usize| refs[node.inputs()[i].index()];
            let r = match node.kind() {
                GateKind::Input => {
                    let v = var_of_input[input_seq];
                    input_seq += 1;
                    self.var(v)?
                }
                GateKind::Const0 => BddRef::FALSE,
                GateKind::Const1 => BddRef::TRUE,
                GateKind::Buf => get(0),
                GateKind::Not => self.not(get(0))?,
                GateKind::And2 => self.and(get(0), get(1))?,
                GateKind::Or2 => self.or(get(0), get(1))?,
                GateKind::Xor2 => self.xor(get(0), get(1))?,
                GateKind::Nand2 => {
                    let t = self.and(get(0), get(1))?;
                    self.not(t)?
                }
                GateKind::Nor2 => {
                    let t = self.or(get(0), get(1))?;
                    self.not(t)?
                }
                GateKind::Xnor2 => {
                    let t = self.xor(get(0), get(1))?;
                    self.not(t)?
                }
                // Mux input order is (sel, a, b): y = if sel { b } else { a }.
                GateKind::Mux2 => self.ite(get(0), get(2), get(1))?,
                GateKind::Maj3 => {
                    let (a, b, c) = (get(0), get(1), get(2));
                    let bc_or = self.or(b, c)?;
                    let bc_and = self.and(b, c)?;
                    self.ite(a, bc_or, bc_and)?
                }
            };
            refs.push(r);
        }
        Ok(netlist
            .primary_outputs()
            .iter()
            .map(|(id, _)| refs[id.index()])
            .collect())
    }

    /// The exact fraction of the `2^num_vars` input vectors on which `f`
    /// is true.
    ///
    /// The result is exact (every intermediate is a dyadic rational with
    /// at most `num_vars` significant bits) as long as `num_vars ≤ 52`;
    /// beyond that it is correctly rounded to `f64`.
    #[must_use]
    pub fn sat_fraction(&self, f: BddRef) -> f64 {
        let mut memo: HashMap<BddRef, f64> = HashMap::new();
        self.sat_fraction_memo(f, &mut memo)
    }

    fn sat_fraction_memo(&self, f: BddRef, memo: &mut HashMap<BddRef, f64>) -> f64 {
        if f == BddRef::FALSE {
            return 0.0;
        }
        if f == BddRef::TRUE {
            return 1.0;
        }
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let node = &self.nodes[f.0 as usize];
        let p =
            0.5 * (self.sat_fraction_memo(node.lo, memo) + self.sat_fraction_memo(node.hi, memo));
        memo.insert(f, p);
        p
    }

    /// One satisfying assignment of `f`, as `assignment[var] = value`
    /// over all `num_vars` variables (don't-care variables are `false`),
    /// or `None` if `f` is unsatisfiable.
    #[must_use]
    pub fn any_sat(&self, f: BddRef) -> Option<Vec<bool>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f;
        while cur != BddRef::TRUE {
            let node = &self.nodes[cur.0 as usize];
            if node.lo != BddRef::FALSE {
                cur = node.lo;
            } else {
                assignment[node.var as usize] = true;
                cur = node.hi;
            }
        }
        Some(assignment)
    }

    /// Existential quantification `∃ vars . f`: the disjunction of all
    /// cofactors of `f` over every variable in `vars`.
    ///
    /// This is the workhorse of symbolic reachability: the image of a
    /// state set under a transition relation is
    /// `∃ current, input . R ∧ Reached`.
    ///
    /// # Errors
    /// Returns [`NodeLimitExceeded`] if an intermediate diagram exceeds
    /// the node budget.
    pub fn exists(&mut self, f: BddRef, vars: &[u32]) -> Result<BddRef, NodeLimitExceeded> {
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut memo: HashMap<BddRef, BddRef> = HashMap::new();
        self.exists_memo(f, &sorted, &mut memo)
    }

    fn exists_memo(
        &mut self,
        f: BddRef,
        vars: &[u32],
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> Result<BddRef, NodeLimitExceeded> {
        if f.is_const() {
            return Ok(f);
        }
        let top = self.var_of(f);
        // Children only carry variables above `top`, so if every
        // quantified variable sorts before `top`, none appears in `f`.
        if vars.last().is_none_or(|&v| v < top) {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let node = &self.nodes[f.0 as usize];
        let (lo, hi, var) = (node.lo, node.hi, node.var);
        let lo_q = self.exists_memo(lo, vars, memo)?;
        let hi_q = self.exists_memo(hi, vars, memo)?;
        let r = if vars.binary_search(&var).is_ok() {
            self.or(lo_q, hi_q)?
        } else {
            self.mk(var, lo_q, hi_q)?
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Rename variables of `f` under an order-preserving substitution:
    /// every variable `v` in the support of `f` that appears in `map`
    /// becomes `map[v]`.
    ///
    /// Used by symbolic reachability to move an image expressed over
    /// next-state variables back onto current-state variables.
    ///
    /// # Panics
    /// Panics if the substitution is not strictly monotone on the
    /// support of `f` (a non-monotone renaming would need a full
    /// reordering pass to stay canonical), or if a target variable is
    /// outside the manager's range.
    ///
    /// # Errors
    /// Returns [`NodeLimitExceeded`] if an intermediate diagram exceeds
    /// the node budget.
    pub fn rename_monotone(
        &mut self,
        f: BddRef,
        map: &HashMap<u32, u32>,
    ) -> Result<BddRef, NodeLimitExceeded> {
        let mut memo: HashMap<BddRef, BddRef> = HashMap::new();
        self.rename_memo(f, map, &mut memo)
    }

    fn rename_memo(
        &mut self,
        f: BddRef,
        map: &HashMap<u32, u32>,
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> Result<BddRef, NodeLimitExceeded> {
        if f.is_const() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let node = &self.nodes[f.0 as usize];
        let (lo, hi, var) = (node.lo, node.hi, node.var);
        let target = map.get(&var).copied().unwrap_or(var);
        assert!(target < self.num_vars, "renamed variable out of range");
        // Monotonicity on the support: the renamed variable must still
        // sort above everything renamed in the children. Verified
        // structurally: the children's (renamed) top variables must stay
        // strictly greater than `target`.
        let lo_r = self.rename_memo(lo, map, memo)?;
        let hi_r = self.rename_memo(hi, map, memo)?;
        for child in [lo_r, hi_r] {
            if !child.is_const() {
                assert!(
                    self.var_of(child) > target,
                    "rename_monotone: substitution is not order-preserving \
                     (variable {var} -> {target} collides with child order)"
                );
            }
        }
        let r = self.mk(target, lo_r, hi_r)?;
        memo.insert(f, r);
        Ok(r)
    }

    /// Symbolic full adder on three bits; returns `(sum, carry)`.
    fn full_add(
        &mut self,
        a: BddRef,
        b: BddRef,
        c: BddRef,
    ) -> Result<(BddRef, BddRef), NodeLimitExceeded> {
        let axb = self.xor(a, b)?;
        let sum = self.xor(axb, c)?;
        let bc_or = self.or(b, c)?;
        let bc_and = self.and(b, c)?;
        let carry = self.ite(a, bc_or, bc_and)?;
        Ok((sum, carry))
    }

    /// Symbolic two's complement subtraction of unsigned words:
    /// `a − b` over `max(len)+1` bits, LSB first. The extra bit makes the
    /// result a valid signed value for any unsigned operands.
    pub fn word_sub(
        &mut self,
        a: &[BddRef],
        b: &[BddRef],
    ) -> Result<Vec<BddRef>, NodeLimitExceeded> {
        let w = a.len().max(b.len()) + 1;
        let mut out = Vec::with_capacity(w);
        // a + ~b + 1, zero-extending both operands.
        let mut carry = BddRef::TRUE;
        for i in 0..w {
            let ai = a.get(i).copied().unwrap_or(BddRef::FALSE);
            let bi = b.get(i).copied().unwrap_or(BddRef::FALSE);
            let nbi = self.not(bi)?;
            let (s, c) = self.full_add(ai, nbi, carry)?;
            out.push(s);
            carry = c;
        }
        Ok(out)
    }

    /// Symbolic two's complement negation (LSB first).
    pub fn word_neg(&mut self, bits: &[BddRef]) -> Result<Vec<BddRef>, NodeLimitExceeded> {
        let mut out = Vec::with_capacity(bits.len());
        let mut carry = BddRef::TRUE;
        for &bit in bits {
            let nb = self.not(bit)?;
            let (s, c) = self.full_add(nb, BddRef::FALSE, carry)?;
            out.push(s);
            carry = c;
        }
        Ok(out)
    }

    /// Symbolic absolute value of a two's complement word (LSB first).
    /// The result is interpreted as unsigned.
    pub fn word_abs(&mut self, bits: &[BddRef]) -> Result<Vec<BddRef>, NodeLimitExceeded> {
        let Some(&sign) = bits.last() else {
            return Ok(Vec::new());
        };
        let neg = self.word_neg(bits)?;
        bits.iter()
            .zip(&neg)
            .map(|(&b, &n)| self.ite(sign, n, b))
            .collect()
    }

    /// The maximum value an unsigned BDD word (LSB first) attains over
    /// all input vectors, together with an assignment attaining it.
    ///
    /// Works greedily from the MSB down: each bit is forced to 1 when the
    /// accumulated constraint stays satisfiable.
    ///
    /// # Panics
    /// Panics if `bits` is wider than 64.
    pub fn max_unsigned(&mut self, bits: &[BddRef]) -> Result<(u64, Vec<bool>), NodeLimitExceeded> {
        assert!(bits.len() <= 64, "word wider than u64");
        let mut constraint = BddRef::TRUE;
        let mut value = 0u64;
        for (i, &bit) in bits.iter().enumerate().rev() {
            let forced = self.and(constraint, bit)?;
            if forced == BddRef::FALSE {
                let nb = self.not(bit)?;
                constraint = self.and(constraint, nb)?;
            } else {
                constraint = forced;
                value |= 1 << i;
            }
        }
        let witness = self
            .any_sat(constraint)
            .expect("constraint is satisfiable by construction");
        Ok((value, witness))
    }
}

/// A structurally derived variable order: depth-first traversal from the
/// primary outputs, assigning variables to inputs in first-visit order.
///
/// Returns `var_of_input[i]` — the BDD variable for the `i`-th primary
/// input. Inputs unreachable from any output are ordered last, in
/// declaration order.
///
/// For the word-level arithmetic netlists in this workspace (outputs
/// declared LSB first, each depending on operand bits of its own and
/// lower positions) this produces the interleaved order `a0, b0, cin,
/// a1, b1, …` under which adder BDDs stay linear in the width.
#[must_use]
pub fn interleaved_order(netlist: &Netlist) -> Vec<u32> {
    // Map node index -> primary-input position.
    let mut input_pos: HashMap<usize, usize> = HashMap::new();
    for (pos, id) in netlist.primary_inputs().iter().enumerate() {
        input_pos.insert(id.index(), pos);
    }
    let mut order = vec![u32::MAX; netlist.num_inputs()];
    let mut next_var = 0u32;
    let mut visited = vec![false; netlist.len()];
    for (out, _) in netlist.primary_outputs() {
        // Iterative DFS; children pushed in reverse so the first fan-in
        // is visited first.
        let mut stack = vec![out.index()];
        while let Some(idx) = stack.pop() {
            if visited[idx] {
                continue;
            }
            visited[idx] = true;
            if let Some(&pos) = input_pos.get(&idx) {
                order[pos] = next_var;
                next_var += 1;
            }
            let node = &netlist.nodes()[idx];
            for dep in node.inputs().iter().rev() {
                if dep.index() < visited.len() && !visited[dep.index()] {
                    stack.push(dep.index());
                }
            }
        }
    }
    for slot in &mut order {
        if *slot == u32::MAX {
            *slot = next_var;
            next_var += 1;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn terminals_and_variables_are_canonical() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0).unwrap();
        let x2 = bdd.var(0).unwrap();
        assert_eq!(x, x2);
        let nx = bdd.not(x).unwrap();
        let nnx = bdd.not(nx).unwrap();
        assert_eq!(nnx, x);
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0).unwrap();
        let y = bdd.var(1).unwrap();
        let and = bdd.and(x, y).unwrap();
        let or = bdd.or(x, y).unwrap();
        let xor = bdd.xor(x, y).unwrap();
        assert_eq!(bdd.sat_fraction(and), 0.25);
        assert_eq!(bdd.sat_fraction(or), 0.75);
        assert_eq!(bdd.sat_fraction(xor), 0.5);
        // De Morgan, canonically.
        let nand = bdd.not(and).unwrap();
        let nx = bdd.not(x).unwrap();
        let ny = bdd.not(y).unwrap();
        let de_morgan = bdd.or(nx, ny).unwrap();
        assert_eq!(nand, de_morgan);
    }

    #[test]
    fn compile_agrees_with_simulation() {
        let (nl, ports) = builders::ripple_carry_adder(5);
        let order = interleaved_order(&nl);
        let mut bdd = Bdd::new(nl.num_inputs() as u32);
        let outs = bdd.compile(&nl, &order).unwrap();
        let mut sim = crate::sim::Simulator::new(&nl);
        for a in 0..32u64 {
            for b in (0..32u64).step_by(3) {
                let inputs = ports.pack_operands(a, b, false);
                let want = sim.evaluate(&inputs).unwrap();
                for (o, &w) in outs.iter().zip(&want) {
                    // Evaluate the BDD on the same vector.
                    let mut cur = *o;
                    while !cur.is_const() {
                        let node = &bdd.nodes[cur.0 as usize];
                        // Map variable back to an input position.
                        let pos = order
                            .iter()
                            .position(|&v| v == node.var)
                            .expect("var maps to an input");
                        cur = if inputs[pos] { node.hi } else { node.lo };
                    }
                    assert_eq!(cur == BddRef::TRUE, w);
                }
            }
        }
    }

    #[test]
    fn adder_bdd_stays_small_under_interleaved_order() {
        let (nl, _) = builders::ripple_carry_adder(32);
        let order = interleaved_order(&nl);
        let mut bdd = Bdd::new(nl.num_inputs() as u32);
        bdd.compile(&nl, &order).unwrap();
        // Linear in width — far below the node budget. (Under the
        // declaration order this would be millions of nodes.)
        assert!(bdd.len() < 10_000, "unexpected blow-up: {}", bdd.len());
    }

    #[test]
    fn node_limit_is_enforced() {
        let (nl, _) = builders::ripple_carry_adder(16);
        // Declaration order a0..a15 b0..b15 cin: exponential for the
        // high sum bits — must trip a small budget.
        let order: Vec<u32> = (0..nl.num_inputs() as u32).collect();
        let mut bdd = Bdd::with_node_limit(nl.num_inputs() as u32, 2_000);
        let err = bdd.compile(&nl, &order).unwrap_err();
        assert_eq!(err.limit, 2_000);
        assert!(err.to_string().contains("2000"));
    }

    #[test]
    fn sat_fraction_counts_adder_carries() {
        // cout of a 1-bit full adder is the majority function: 4 of 8.
        let (nl, _) = builders::ripple_carry_adder(1);
        let order = interleaved_order(&nl);
        let mut bdd = Bdd::new(3);
        let outs = bdd.compile(&nl, &order).unwrap();
        assert_eq!(bdd.sat_fraction(outs[1]), 0.5);
    }

    #[test]
    fn any_sat_finds_a_witness() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0).unwrap();
        let y = bdd.var(1).unwrap();
        let ny = bdd.not(y).unwrap();
        let f = bdd.and(x, ny).unwrap();
        let w = bdd.any_sat(f).unwrap();
        assert!(w[0]);
        assert!(!w[1]);
        assert_eq!(bdd.any_sat(BddRef::FALSE), None);
    }

    #[test]
    fn word_sub_and_abs_compute_differences() {
        // Two 2-bit constants: |1 - 3| = 2.
        let mut bdd = Bdd::new(1);
        let one = [BddRef::TRUE, BddRef::FALSE];
        let three = [BddRef::TRUE, BddRef::TRUE];
        let diff = bdd.word_sub(&one, &three).unwrap();
        let abs = bdd.word_abs(&diff).unwrap();
        let (max, _) = bdd.max_unsigned(&abs).unwrap();
        assert_eq!(max, 2);
    }

    #[test]
    fn max_unsigned_maximizes_symbolic_words() {
        // max over x of |x - 5| for 3-bit x is |0 - 5| = 5... and
        // |7 - 5| = 2; so 5.
        let mut bdd = Bdd::new(3);
        let x: Vec<BddRef> = (0..3).map(|i| bdd.var(i).unwrap()).collect();
        let five = [BddRef::TRUE, BddRef::FALSE, BddRef::TRUE];
        let diff = bdd.word_sub(&x, &five).unwrap();
        let abs = bdd.word_abs(&diff).unwrap();
        let (max, witness) = bdd.max_unsigned(&abs).unwrap();
        assert_eq!(max, 5);
        // The witness must be x = 0.
        assert_eq!(witness[..3], [false, false, false]);
    }

    #[test]
    fn exists_quantifies_variables_away() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0).unwrap();
        let y = bdd.var(1).unwrap();
        let z = bdd.var(2).unwrap();
        let xy = bdd.and(x, y).unwrap();
        let f = bdd.or(xy, z).unwrap();
        // ∃y . (x∧y) ∨ z  =  x ∨ z.
        let q = bdd.exists(f, &[1]).unwrap();
        let want = bdd.or(x, z).unwrap();
        assert_eq!(q, want);
        // Quantifying everything yields TRUE for a satisfiable function.
        let all = bdd.exists(f, &[0, 1, 2]).unwrap();
        assert_eq!(all, BddRef::TRUE);
        // ∃x over a function not mentioning x is a no-op.
        let nz = bdd.exists(z, &[0, 1]).unwrap();
        assert_eq!(nz, z);
        assert_eq!(bdd.exists(BddRef::FALSE, &[0]).unwrap(), BddRef::FALSE);
    }

    #[test]
    fn exists_matches_manual_cofactor_disjunction() {
        // f = (x0 ⊕ x1) ∧ x2; ∃x1.f = x2 (one of the cofactors is true
        // for either value of x0).
        let mut bdd = Bdd::new(3);
        let x0 = bdd.var(0).unwrap();
        let x1 = bdd.var(1).unwrap();
        let x2 = bdd.var(2).unwrap();
        let x01 = bdd.xor(x0, x1).unwrap();
        let f = bdd.and(x01, x2).unwrap();
        let q = bdd.exists(f, &[1]).unwrap();
        assert_eq!(q, x2);
    }

    #[test]
    fn rename_monotone_shifts_variable_blocks() {
        // Build f over vars {2, 3}, rename down to {0, 1}: the shifted
        // function must equal the directly constructed one.
        let mut bdd = Bdd::new(4);
        let a = bdd.var(2).unwrap();
        let b = bdd.var(3).unwrap();
        let f = bdd.and(a, b).unwrap();
        let map: HashMap<u32, u32> = [(2u32, 0u32), (3, 1)].into_iter().collect();
        let g = bdd.rename_monotone(f, &map).unwrap();
        let x = bdd.var(0).unwrap();
        let y = bdd.var(1).unwrap();
        let want = bdd.and(x, y).unwrap();
        assert_eq!(g, want);
    }

    #[test]
    #[should_panic(expected = "not order-preserving")]
    fn rename_monotone_rejects_order_swaps() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let f = bdd.and(a, b).unwrap();
        // Swapping 0 and 1 is not order-preserving.
        let map: HashMap<u32, u32> = [(0u32, 1u32), (1, 0)].into_iter().collect();
        let _ = bdd.rename_monotone(f, &map);
    }

    #[test]
    fn interleaved_order_interleaves_adder_operands() {
        let (nl, _) = builders::ripple_carry_adder(4);
        let order = interleaved_order(&nl);
        // Inputs are a0..a3, b0..b3, cin. sum0 = a0 ^ b0 ^ cin, so the
        // first three variables are exactly {a0, b0, cin}.
        let mut first_three: Vec<usize> = (0..9).filter(|&i| order[i] < 3).collect();
        first_three.sort_unstable();
        assert_eq!(first_three, vec![0, 4, 8]);
    }
}
