//! Switching-activity reports.

use std::collections::BTreeMap;

use crate::energy::EnergyModel;
use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Aggregated switching-activity and energy statistics of a simulation run.
///
/// Produced by [`Simulator::activity_report`](crate::Simulator::activity_report).
///
/// # Example
///
/// ```
/// use gatesim::{builders, EnergyModel, Simulator};
///
/// # fn main() -> Result<(), gatesim::SimulateError> {
/// let (nl, ports) = builders::ripple_carry_adder(8);
/// let mut sim = Simulator::new(&nl);
/// sim.evaluate(&ports.pack_operands(0, 0, false))?;
/// sim.evaluate(&ports.pack_operands(255, 1, false))?;
/// let report = sim.activity_report(&EnergyModel::default());
/// assert!(report.total_energy > 0.0);
/// assert!(report.dynamic_energy <= report.total_energy);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityReport {
    /// Number of evaluations performed.
    pub evaluations: u64,
    /// Total node-output toggles.
    pub total_toggles: u64,
    /// Per-gate-kind toggle counts (kinds with zero toggles are omitted).
    pub toggles_by_kind: BTreeMap<GateKind, u64>,
    /// Per-gate-kind instance counts.
    pub gates_by_kind: BTreeMap<GateKind, u64>,
    /// Dynamic (switching) energy.
    pub dynamic_energy: f64,
    /// Static (leakage) energy over all evaluations.
    pub leakage_energy: f64,
    /// `dynamic_energy + leakage_energy`.
    pub total_energy: f64,
    /// Mean toggles per node per evaluation transition — the classic
    /// "switching activity factor" α.
    pub activity_factor: f64,
}

impl ActivityReport {
    pub(crate) fn new(
        netlist: &Netlist,
        toggles: &[u64],
        evaluations: u64,
        model: &EnergyModel,
    ) -> Self {
        let mut toggles_by_kind = BTreeMap::new();
        let mut gates_by_kind = BTreeMap::new();
        let mut dynamic = 0.0;
        for (node, &t) in netlist.nodes().iter().zip(toggles) {
            *gates_by_kind.entry(node.kind()).or_insert(0) += 1;
            if t > 0 {
                *toggles_by_kind.entry(node.kind()).or_insert(0) += t;
            }
            dynamic += t as f64 * model.toggle_energy(node.kind());
        }
        let leakage = evaluations as f64 * model.leakage_per_cycle(netlist);
        let total_toggles: u64 = toggles.iter().sum();
        let transitions = evaluations.saturating_sub(1);
        let activity_factor = if transitions == 0 || netlist.is_empty() {
            0.0
        } else {
            total_toggles as f64 / (transitions as f64 * netlist.len() as f64)
        };
        Self {
            evaluations,
            total_toggles,
            toggles_by_kind,
            gates_by_kind,
            dynamic_energy: dynamic,
            leakage_energy: leakage,
            total_energy: dynamic + leakage,
            activity_factor,
        }
    }
}

impl std::fmt::Display for ActivityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "evaluations: {}, toggles: {}, activity: {:.4}",
            self.evaluations, self.total_toggles, self.activity_factor
        )?;
        writeln!(
            f,
            "energy: dynamic {:.3} + leakage {:.3} = {:.3}",
            self.dynamic_energy, self.leakage_energy, self.total_energy
        )?;
        for (kind, count) in &self.gates_by_kind {
            let t = self.toggles_by_kind.get(kind).copied().unwrap_or(0);
            writeln!(f, "  {kind:>6}: {count} gates, {t} toggles")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::sim::Simulator;

    #[test]
    fn report_aggregates_by_kind() {
        let (nl, ports) = builders::ripple_carry_adder(4);
        let mut sim = Simulator::new(&nl);
        sim.evaluate(&ports.pack_operands(0, 0, false)).unwrap();
        sim.evaluate(&ports.pack_operands(15, 15, false)).unwrap();
        let report = sim.activity_report(&EnergyModel::default());
        assert_eq!(report.evaluations, 2);
        // 4-bit RCA: 8 XORs, 4 majority cells.
        assert_eq!(report.gates_by_kind[&GateKind::Xor2], 8);
        assert_eq!(report.gates_by_kind[&GateKind::Maj3], 4);
        assert!(report.total_toggles > 0);
        assert!(report.activity_factor > 0.0);
        assert!(report.activity_factor <= 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let (nl, ports) = builders::ripple_carry_adder(2);
        let mut sim = Simulator::new(&nl);
        sim.evaluate(&ports.pack_operands(1, 1, false)).unwrap();
        let text = sim.activity_report(&EnergyModel::default()).to_string();
        assert!(text.contains("evaluations"));
        assert!(text.contains("xor"));
    }
}
