//! Gate-level combinational netlist simulator with a switching-activity
//! energy model.
//!
//! This crate is the hardware substrate of the ApproxIt reproduction: every
//! approximate adder evaluated by the framework exists as a real gate
//! netlist built from this crate's primitives, and every energy number the
//! benchmark harness reports is derived from the switching activity of such
//! a netlist under a CMOS-style switched-capacitance model (after Weste &
//! Harris, *CMOS VLSI Design*).
//!
//! # Architecture
//!
//! * [`Netlist`] — an append-only DAG of logic gates. Because a gate can
//!   only reference already-created nodes, insertion order is a topological
//!   order and evaluation is a single forward sweep.
//! * [`Simulator`] — evaluates a netlist on Boolean input vectors and
//!   counts per-gate output toggles across consecutive evaluations.
//! * [`PackedSimulator`] — the bit-parallel backend: 64 input patterns
//!   per `u64` word per gate, output- and toggle-identical to
//!   [`Simulator`], used by every exhaustive sweep in the workspace.
//! * [`par`] — deterministic scoped-thread executor, re-exported from the
//!   shared `parx` crate; all parallel sweeps (equivalence checks,
//!   fault campaigns, energy traces) are bit-identical to serial runs.
//! * [`EnergyModel`] — maps toggle counts to (relative) dynamic energy and
//!   adds a leakage term, using per-gate capacitances proportional to
//!   transistor counts.
//! * [`builders`] — reusable structural generators (full adders,
//!   ripple-carry chains, multiplexers) used by higher-level crates to
//!   assemble approximate arithmetic units.
//!
//! # Example
//!
//! Build a 1-bit full adder, simulate it, and measure its switching energy:
//!
//! ```
//! use gatesim::{Netlist, Simulator, EnergyModel};
//!
//! # fn main() -> Result<(), gatesim::SimulateError> {
//! let mut nl = Netlist::new();
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let cin = nl.input("cin");
//! let (sum, cout) = gatesim::builders::full_adder(&mut nl, a, b, cin);
//! nl.mark_output(sum, "sum");
//! nl.mark_output(cout, "cout");
//!
//! let mut sim = Simulator::new(&nl);
//! let out = sim.evaluate(&[true, true, false])?; // 1 + 1 + 0
//! assert_eq!(out, vec![false, true]);            // sum = 0, carry = 1
//!
//! let out = sim.evaluate(&[true, false, false])?; // 1 + 0 + 0
//! assert_eq!(out, vec![true, false]);
//!
//! let energy = sim.energy(&EnergyModel::default());
//! assert!(energy > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod error;
mod gate;
mod netlist;
mod sim;

pub mod bdd;
pub mod builders;
pub mod dot;
pub mod equiv;
pub mod fault;
pub mod lint;
pub mod optimize;
pub mod packed;
pub mod stats;
pub mod timing;

pub use energy::EnergyModel;
pub use equiv::Equivalence;
pub use error::{BuildNetlistError, SimulateError};
pub use fault::{CampaignRow, ErrorStats, FaultCampaign, FaultySimulator, StructuralFault};
pub use gate::GateKind;
pub use lint::{LintConfig, LintDiagnostic, LintPass, LintReport, Severity};
pub use netlist::{Netlist, Node, NodeId};
pub use packed::PackedSimulator;
pub use par::Executor;
/// Deterministic parallel execution, re-exported from the shared
/// [`parx`] crate (the executor graduated out of gatesim once the
/// online solver paths started using it too). `gatesim::par::...`
/// paths keep working; new code should depend on `parx` directly.
pub use parx as par;
pub use sim::Simulator;
pub use stats::ActivityReport;
