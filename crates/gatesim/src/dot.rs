//! Graphviz DOT export for netlists.

use std::fmt::Write as _;

use crate::netlist::Netlist;

/// Render a netlist as a Graphviz `digraph` for visual inspection.
///
/// Primary inputs are drawn as triangles, outputs as double circles, and
/// ordinary gates as boxes labelled with their mnemonic.
///
/// # Example
///
/// ```
/// use gatesim::{dot, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let y = nl.not(a);
/// nl.mark_output(y, "y");
/// let text = dot::to_dot(&nl, "inverter");
/// assert!(text.starts_with("digraph inverter"));
/// assert!(text.contains("not"));
/// ```
#[must_use]
pub fn to_dot(netlist: &Netlist, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let output_ids: std::collections::BTreeSet<usize> = netlist
        .primary_outputs()
        .iter()
        .map(|(id, _)| id.index())
        .collect();
    for (idx, node) in netlist.nodes().iter().enumerate() {
        let label = node
            .name()
            .map_or_else(|| node.kind().mnemonic().to_owned(), ToOwned::to_owned);
        let shape = match node.kind() {
            crate::GateKind::Input => "triangle",
            _ if output_ids.contains(&idx) => "doublecircle",
            _ => "box",
        };
        let _ = writeln!(out, "  n{idx} [label=\"{label}\", shape={shape}];");
        for dep in node.inputs() {
            let _ = writeln!(out, "  n{} -> n{idx};", dep.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let (nl, _) = builders::ripple_carry_adder(2);
        let text = to_dot(&nl, "rca2");
        // 2-bit RCA: 5 inputs + 4 xor + 2 maj = 11 nodes.
        assert_eq!(text.matches("label=").count(), nl.len());
        assert!(text.contains("->"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn outputs_are_double_circles() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let y = nl.buf(a);
        nl.mark_output(y, "y");
        let text = to_dot(&nl, "g");
        assert!(text.contains("doublecircle"));
        assert!(text.contains("triangle"));
    }
}
