//! Property tests: the BDD prover must agree with exhaustive simulation
//! on randomly generated netlists.
//!
//! For every seeded random circuit of 6–10 inputs we require:
//!
//! * `prove(nl, optimize(nl))` returns `Proven`, matching the exhaustive
//!   [`equiv::check`] sweep;
//! * for a single-gate mutation of the circuit, `prove` and the
//!   exhaustive sweep reach the same verdict, and any counterexample the
//!   prover emits actually reproduces in simulation.

use gatesim::equiv::{self, Equivalence};
use gatesim::{optimize, GateKind, Netlist, NodeId, Simulator};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

const TWO_INPUT_KINDS: [GateKind; 6] = [
    GateKind::And2,
    GateKind::Or2,
    GateKind::Xor2,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::Xnor2,
];

/// Build a random DAG with `num_inputs` inputs and a handful of outputs.
fn random_netlist(rng: &mut Rng, num_inputs: usize, num_gates: usize) -> Netlist {
    let mut nl = Netlist::new();
    let mut pool: Vec<NodeId> = (0..num_inputs).map(|i| nl.input(format!("x{i}"))).collect();
    for _ in 0..num_gates {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let id = match rng.below(9) {
            0 => nl.not(a),
            1 => nl.mux2(a, b, c),
            2 => nl.maj3(a, b, c),
            k => {
                let kind = TWO_INPUT_KINDS[k - 3];
                match kind {
                    GateKind::And2 => nl.and2(a, b),
                    GateKind::Or2 => nl.or2(a, b),
                    GateKind::Xor2 => nl.xor2(a, b),
                    GateKind::Nand2 => nl.nand2(a, b),
                    GateKind::Nor2 => nl.nor2(a, b),
                    GateKind::Xnor2 => nl.xnor2(a, b),
                    _ => unreachable!(),
                }
            }
        };
        pool.push(id);
    }
    // Mark the last few gates as outputs so most of the DAG stays live.
    let num_outputs = 3 + rng.below(3);
    for k in 0..num_outputs {
        let node = pool[pool.len() - 1 - k * 2 % pool.len()];
        nl.mark_output(node, format!("y{k}"));
    }
    nl
}

/// Rebuild `nl` with one randomly chosen 2-input gate swapped for a
/// different kind. Returns `None` if the netlist has no 2-input gate.
fn mutate_one_gate(nl: &Netlist, rng: &mut Rng) -> Option<Netlist> {
    let candidates: Vec<usize> = nl
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.inputs().len() == 2)
        .map(|(i, _)| i)
        .collect();
    let victim = *candidates.get(rng.below(candidates.len().max(1)))?;
    let old_kind = nl.nodes()[victim].kind();
    let new_kind = loop {
        let k = TWO_INPUT_KINDS[rng.below(TWO_INPUT_KINDS.len())];
        if k != old_kind {
            break k;
        }
    };
    let mut out = Netlist::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(nl.len());
    for (idx, node) in nl.nodes().iter().enumerate() {
        let kind = if idx == victim { new_kind } else { node.kind() };
        let get = |i: usize| remap[node.inputs()[i].index()];
        let id = match kind {
            GateKind::Input => out.input(node.name().unwrap_or("in").to_owned()),
            GateKind::Const0 => out.constant(false),
            GateKind::Const1 => out.constant(true),
            GateKind::Buf => out.buf(get(0)),
            GateKind::Not => out.not(get(0)),
            GateKind::And2 => out.and2(get(0), get(1)),
            GateKind::Or2 => out.or2(get(0), get(1)),
            GateKind::Xor2 => out.xor2(get(0), get(1)),
            GateKind::Nand2 => out.nand2(get(0), get(1)),
            GateKind::Nor2 => out.nor2(get(0), get(1)),
            GateKind::Xnor2 => out.xnor2(get(0), get(1)),
            GateKind::Mux2 => out.mux2(get(0), get(1), get(2)),
            GateKind::Maj3 => out.maj3(get(0), get(1), get(2)),
        };
        remap.push(id);
    }
    for (id, name) in nl.primary_outputs() {
        out.mark_output(remap[id.index()], name.clone());
    }
    Some(out)
}

fn assert_counterexample_reproduces(left: &Netlist, right: &Netlist, verdict: &Equivalence) {
    if let Equivalence::Counterexample {
        inputs,
        left: lo,
        right: ro,
    } = verdict
    {
        let got_l = Simulator::new(left).evaluate(inputs).unwrap();
        let got_r = Simulator::new(right).evaluate(inputs).unwrap();
        assert_eq!(&got_l, lo, "left outputs must reproduce");
        assert_eq!(&got_r, ro, "right outputs must reproduce");
        assert_ne!(lo, ro, "counterexample must actually differ");
    }
}

#[test]
fn prove_matches_exhaustive_simulation_on_random_netlists() {
    let mut rng = Rng(0xA5A5_0001_D00D_F00D);
    for round in 0..40 {
        let num_inputs = 6 + rng.below(5); // 6..=10
        let num_gates = 15 + rng.below(25);
        let nl = random_netlist(&mut rng, num_inputs, num_gates);
        nl.validate().expect("generated netlists are valid");

        // The optimizer must preserve the function — and prove() must
        // agree with the exhaustive ground truth.
        let optimized = optimize::optimize(&nl).netlist;
        let proved = equiv::prove(&nl, &optimized);
        let swept = equiv::check(&nl, &optimized, 24, 1);
        assert_eq!(
            proved,
            Equivalence::Proven,
            "round {round}: optimizer must be exact"
        );
        assert_eq!(swept, Equivalence::Proven, "round {round}");

        // A mutated circuit: both engines must reach the same verdict.
        let Some(mutated) = mutate_one_gate(&nl, &mut rng) else {
            continue;
        };
        let proved = equiv::prove(&nl, &mutated);
        let swept = equiv::check(&nl, &mutated, 24, 1);
        match (&proved, &swept) {
            (Equivalence::Proven, Equivalence::Proven) => {
                // The mutated gate was dead or redundant — legitimate.
            }
            (Equivalence::Counterexample { .. }, Equivalence::Counterexample { .. }) => {
                assert_counterexample_reproduces(&nl, &mutated, &proved);
            }
            other => panic!("round {round}: verdicts disagree: {other:?}"),
        }
    }
}

#[test]
fn prove_is_deterministic() {
    let mut rng = Rng(0xDEAD_BEEF_0BAD_CAFE);
    let nl = random_netlist(&mut rng, 8, 30);
    let Some(mutated) = mutate_one_gate(&nl, &mut rng) else {
        panic!("expected a 2-input gate to mutate");
    };
    let first = equiv::prove(&nl, &mutated);
    let second = equiv::prove(&nl, &mutated);
    assert_eq!(first, second);
}
