//! Property-based tests: netlist adders agree with machine integer
//! arithmetic, energy accounting is internally consistent, and the
//! optimizer preserves behaviour on random circuits.
//!
//! Seed-driven and hermetic: random inputs come from a small in-file
//! SplitMix64 stream so the suite needs no external crates and is
//! bit-reproducible.

use gatesim::{builders, optimize, EnergyModel, Netlist, NodeId, Simulator};

/// Minimal deterministic generator (SplitMix64) for test-input streams.
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A random combinational netlist: `n_inputs` primary inputs, a few
/// constants, then `ops` random gates over earlier nodes, with the last
/// few nodes marked as outputs.
fn random_netlist(n_inputs: usize, ops: &[(u8, usize, usize, usize)]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nodes: Vec<NodeId> = (0..n_inputs).map(|i| nl.input(format!("in{i}"))).collect();
    nodes.push(nl.constant(false));
    nodes.push(nl.constant(true));
    for &(kind, a, b, c) in ops {
        let pick = |i: usize, len: usize| i % len;
        let x = nodes[pick(a, nodes.len())];
        let y = nodes[pick(b, nodes.len())];
        let z = nodes[pick(c, nodes.len())];
        let id = match kind % 10 {
            0 => nl.not(x),
            1 => nl.and2(x, y),
            2 => nl.or2(x, y),
            3 => nl.xor2(x, y),
            4 => nl.nand2(x, y),
            5 => nl.nor2(x, y),
            6 => nl.xnor2(x, y),
            7 => nl.mux2(x, y, z),
            8 => nl.maj3(x, y, z),
            _ => nl.buf(x),
        };
        nodes.push(id);
    }
    let outputs = nodes.len().min(4);
    for (i, id) in nodes.iter().rev().take(outputs).enumerate() {
        nl.mark_output(*id, format!("out{i}"));
    }
    nl
}

fn random_ops(rng: &mut TestRng, len: usize) -> Vec<(u8, usize, usize, usize)> {
    (0..len)
        .map(|_| {
            (
                rng.next_u64() as u8,
                rng.next_u64() as usize,
                rng.next_u64() as usize,
                rng.next_u64() as usize,
            )
        })
        .collect()
}

#[test]
fn ripple_carry_matches_u64() {
    let mut rng = TestRng(0x51CA);
    for _ in 0..64 {
        let width = 1 + rng.below(64) as usize;
        let (nl, ports) = builders::ripple_carry_adder(width);
        let mut sim = Simulator::new(&nl);
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let (a, b) = (rng.next_u64() & mask, rng.next_u64() & mask);
        let cin = rng.below(2) == 1;
        let out = sim.evaluate(&ports.pack_operands(a, b, cin)).unwrap();
        let (sum, cout) = ports.unpack_result(&out);
        let exact = u128::from(a) + u128::from(b) + u128::from(cin);
        assert_eq!(u128::from(sum), exact & u128::from(mask));
        assert_eq!(cout, exact > u128::from(mask));
    }
}

#[test]
fn toggles_are_zero_for_repeated_vectors() {
    let mut rng = TestRng(0x7055);
    let (nl, ports) = builders::ripple_carry_adder(32);
    for _ in 0..16 {
        let mut sim = Simulator::new(&nl);
        let (a, b) = (rng.next_u64() & 0xFFFF_FFFF, rng.next_u64() & 0xFFFF_FFFF);
        let v = ports.pack_operands(a, b, false);
        sim.evaluate(&v).unwrap();
        sim.evaluate(&v).unwrap();
        sim.evaluate(&v).unwrap();
        assert_eq!(sim.total_toggles(), 0);
    }
}

#[test]
fn dynamic_energy_is_monotone_in_activity() {
    // Simulating a prefix of a vector sequence can never cost more
    // dynamic energy than the whole sequence.
    let mut rng = TestRng(0xD9A);
    let (nl, ports) = builders::ripple_carry_adder(32);
    let model = EnergyModel::dynamic_only();
    for _ in 0..16 {
        let mut sim = Simulator::new(&nl);
        let n = 2 + rng.below(18) as usize;
        let mut energies = Vec::new();
        for _ in 0..n {
            let (a, b) = (rng.below(1 << 32), rng.below(1 << 32));
            sim.evaluate(&ports.pack_operands(a, b, false)).unwrap();
            energies.push(sim.energy(&model));
        }
        for w in energies.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}

#[test]
fn validate_accepts_builder_netlists() {
    for width in 1..=16 {
        let (nl, _) = builders::ripple_carry_adder(width);
        assert!(nl.validate().is_ok());
        let mux: Netlist = builders::word_mux(width);
        assert!(mux.validate().is_ok());
    }
}

#[test]
fn optimizer_preserves_behaviour_on_random_circuits() {
    let mut rng = TestRng(0x0971);
    for _ in 0..64 {
        let n_inputs = 1 + rng.below(6) as usize;
        let n_ops = 1 + rng.below(39) as usize;
        let ops = random_ops(&mut rng, n_ops);
        let original = random_netlist(n_inputs, &ops);
        let report = optimize::optimize(&original);
        let optimized = report.netlist;
        assert!(optimized.validate().is_ok());
        assert_eq!(optimized.num_inputs(), original.num_inputs());
        assert_eq!(optimized.num_outputs(), original.num_outputs());
        assert!(optimized.len() <= original.len());
        let mut sim_a = Simulator::new(&original);
        let mut sim_b = Simulator::new(&optimized);
        for pattern in 0..(1u32 << n_inputs) {
            let inputs: Vec<bool> = (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
            let a = sim_a.evaluate(&inputs).expect("valid inputs");
            let b = sim_b.evaluate(&inputs).expect("valid inputs");
            assert_eq!(a, b, "optimizer changed behaviour on {pattern:#b}");
        }
    }
}

#[test]
fn optimizer_is_idempotent() {
    let mut rng = TestRng(0x1DE9);
    for _ in 0..64 {
        let n_inputs = 1 + rng.below(5) as usize;
        let n_ops = 1 + rng.below(24) as usize;
        let ops = random_ops(&mut rng, n_ops);
        let original = random_netlist(n_inputs, &ops);
        let once = optimize::optimize(&original).netlist;
        let twice = optimize::optimize(&once).netlist;
        assert_eq!(once.len(), twice.len(), "second pass found more work");
    }
}
