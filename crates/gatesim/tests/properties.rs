//! Property-based tests: netlist adders agree with machine integer
//! arithmetic, energy accounting is internally consistent, and the
//! optimizer preserves behaviour on random circuits.

use gatesim::{builders, optimize, EnergyModel, Netlist, NodeId, Simulator};
use proptest::prelude::*;

/// A random combinational netlist: `n_inputs` primary inputs, a few
/// constants, then `ops` random gates over earlier nodes, with the last
/// few nodes marked as outputs.
fn random_netlist(n_inputs: usize, ops: &[(u8, usize, usize, usize)]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nodes: Vec<NodeId> = (0..n_inputs).map(|i| nl.input(format!("in{i}"))).collect();
    nodes.push(nl.constant(false));
    nodes.push(nl.constant(true));
    for &(kind, a, b, c) in ops {
        let pick = |i: usize, len: usize| i % len;
        let x = nodes[pick(a, nodes.len())];
        let y = nodes[pick(b, nodes.len())];
        let z = nodes[pick(c, nodes.len())];
        let id = match kind % 10 {
            0 => nl.not(x),
            1 => nl.and2(x, y),
            2 => nl.or2(x, y),
            3 => nl.xor2(x, y),
            4 => nl.nand2(x, y),
            5 => nl.nor2(x, y),
            6 => nl.xnor2(x, y),
            7 => nl.mux2(x, y, z),
            8 => nl.maj3(x, y, z),
            _ => nl.buf(x),
        };
        nodes.push(id);
    }
    let outputs = nodes.len().min(4);
    for (i, id) in nodes.iter().rev().take(outputs).enumerate() {
        nl.mark_output(*id, format!("out{i}"));
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ripple_carry_matches_u64(a: u64, b: u64, cin: bool, width in 1usize..=64) {
        let (nl, ports) = builders::ripple_carry_adder(width);
        let mut sim = Simulator::new(&nl);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let (a, b) = (a & mask, b & mask);
        let out = sim.evaluate(&ports.pack_operands(a, b, cin)).unwrap();
        let (sum, cout) = ports.unpack_result(&out);
        let exact = u128::from(a) + u128::from(b) + u128::from(cin);
        prop_assert_eq!(u128::from(sum), exact & u128::from(mask));
        prop_assert_eq!(cout, exact > u128::from(mask));
    }

    #[test]
    fn toggles_are_zero_for_repeated_vectors(a: u64, b: u64) {
        let (nl, ports) = builders::ripple_carry_adder(32);
        let mut sim = Simulator::new(&nl);
        let v = ports.pack_operands(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF, false);
        sim.evaluate(&v).unwrap();
        sim.evaluate(&v).unwrap();
        sim.evaluate(&v).unwrap();
        prop_assert_eq!(sim.total_toggles(), 0);
    }

    #[test]
    fn dynamic_energy_is_monotone_in_activity(pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 2..20)) {
        // Simulating a prefix of a vector sequence can never cost more
        // dynamic energy than the whole sequence.
        let (nl, ports) = builders::ripple_carry_adder(32);
        let model = EnergyModel::dynamic_only();
        let mut sim = Simulator::new(&nl);
        let mut energies = Vec::new();
        for (a, b) in &pairs {
            sim.evaluate(&ports.pack_operands(u64::from(*a), u64::from(*b), false)).unwrap();
            energies.push(sim.energy(&model));
        }
        for w in energies.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn validate_accepts_builder_netlists(width in 1usize..=16) {
        let (nl, _) = builders::ripple_carry_adder(width);
        prop_assert!(nl.validate().is_ok());
        let mux: Netlist = builders::word_mux(width);
        prop_assert!(mux.validate().is_ok());
    }

    #[test]
    fn optimizer_preserves_behaviour_on_random_circuits(
        n_inputs in 1usize..=6,
        ops in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>(), any::<usize>()),
            1..40,
        ),
    ) {
        let original = random_netlist(n_inputs, &ops);
        let report = optimize::optimize(&original);
        let optimized = report.netlist;
        prop_assert!(optimized.validate().is_ok());
        prop_assert_eq!(optimized.num_inputs(), original.num_inputs());
        prop_assert_eq!(optimized.num_outputs(), original.num_outputs());
        prop_assert!(optimized.len() <= original.len());
        let mut sim_a = Simulator::new(&original);
        let mut sim_b = Simulator::new(&optimized);
        for pattern in 0..(1u32 << n_inputs) {
            let inputs: Vec<bool> =
                (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
            let a = sim_a.evaluate(&inputs).expect("valid inputs");
            let b = sim_b.evaluate(&inputs).expect("valid inputs");
            prop_assert_eq!(a, b, "optimizer changed behaviour on {:#b}", pattern);
        }
    }

    #[test]
    fn optimizer_is_idempotent(
        n_inputs in 1usize..=5,
        ops in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>(), any::<usize>()),
            1..25,
        ),
    ) {
        let original = random_netlist(n_inputs, &ops);
        let once = optimize::optimize(&original).netlist;
        let twice = optimize::optimize(&once).netlist;
        prop_assert_eq!(once.len(), twice.len(), "second pass found more work");
    }
}
