//! Property tests pinning the packed simulator to the scalar one.
//!
//! The contract under test: for *any* netlist and *any* pattern
//! sequence, [`PackedSimulator`] produces the same outputs and the same
//! per-gate toggle counts as feeding the patterns one at a time to the
//! scalar [`Simulator`]. The netlists here are generated randomly from
//! a seeded stream (hand-rolled — the workspace is hermetic, no
//! proptest), so every gate kind, fanout shape, and output arrangement
//! gets exercised; failures print the generator seed for replay.

use gatesim::builders;
use gatesim::packed::{exhaustive_input_words, pack_vectors, trace_toggles, LANES};
use gatesim::par::Executor;
use gatesim::{EnergyModel, Netlist, PackedSimulator, Simulator};

/// SplitMix64 — deterministic stream for netlist and stimulus generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn chance(&mut self, p_percent: u64) -> bool {
        self.below(100) < p_percent
    }
}

/// Generate a random netlist: 1–8 inputs, optional constants, 5–60
/// random gates over already-created nodes, 1–6 marked outputs.
fn random_netlist(rng: &mut Rng) -> Netlist {
    let mut nl = Netlist::new();
    let num_inputs = 1 + rng.below(8) as usize;
    let mut nodes = Vec::new();
    for i in 0..num_inputs {
        nodes.push(nl.input(format!("in{i}")));
    }
    if rng.chance(30) {
        nodes.push(nl.constant(false));
    }
    if rng.chance(30) {
        nodes.push(nl.constant(true));
    }
    let gates = 5 + rng.below(56) as usize;
    for _ in 0..gates {
        let pick = |rng: &mut Rng, nodes: &[gatesim::NodeId]| {
            nodes[rng.below(nodes.len() as u64) as usize]
        };
        let a = pick(rng, &nodes);
        let b = pick(rng, &nodes);
        let c = pick(rng, &nodes);
        let node = match rng.below(10) {
            0 => nl.buf(a),
            1 => nl.not(a),
            2 => nl.and2(a, b),
            3 => nl.or2(a, b),
            4 => nl.xor2(a, b),
            5 => nl.nand2(a, b),
            6 => nl.nor2(a, b),
            7 => nl.xnor2(a, b),
            8 => nl.mux2(a, b, c),
            _ => nl.maj3(a, b, c),
        };
        nodes.push(node);
    }
    let outputs = 1 + rng.below(6) as usize;
    for o in 0..outputs {
        let node = nodes[rng.below(nodes.len() as u64) as usize];
        nl.mark_output(node, format!("out{o}"));
    }
    nl
}

/// Drive both simulators over `vectors` and assert identical outputs,
/// toggles, evaluation counts, and energy.
fn assert_packed_matches_scalar(nl: &Netlist, vectors: &[Vec<bool>], seed: u64) {
    let mut scalar = Simulator::new(nl);
    let scalar_outs: Vec<Vec<bool>> = vectors
        .iter()
        .map(|v| scalar.evaluate(v).expect("generated vectors fit"))
        .collect();

    let mut packed = PackedSimulator::new(nl);
    let mut packed_outs: Vec<Vec<bool>> = Vec::with_capacity(vectors.len());
    let mut pos = 0;
    while pos < vectors.len() {
        let lanes = (vectors.len() - pos).min(LANES);
        let words = pack_vectors(&vectors[pos..pos + lanes], nl.num_inputs());
        let out = packed
            .evaluate_packed(&words, lanes)
            .expect("same interface");
        for lane in 0..lanes {
            packed_outs.push(
                (0..nl.num_outputs())
                    .map(|o| (out[o] >> lane) & 1 == 1)
                    .collect(),
            );
        }
        pos += lanes;
    }

    assert_eq!(packed_outs, scalar_outs, "outputs diverged (seed {seed})");
    assert_eq!(
        packed.toggles(),
        scalar.toggles(),
        "toggles diverged (seed {seed})"
    );
    assert_eq!(packed.evaluations(), scalar.evaluations());
    let model = EnergyModel::default();
    assert_eq!(
        packed.energy(&model).to_bits(),
        scalar.energy(&model).to_bits(),
        "energy diverged (seed {seed})"
    );
}

#[test]
fn random_netlists_match_on_random_stimulus() {
    for seed in 0..40u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        let nl = random_netlist(&mut rng);
        let n = nl.num_inputs();
        let num_vectors = 1 + rng.below(300) as usize;
        let vectors: Vec<Vec<bool>> = (0..num_vectors)
            .map(|_| (0..n).map(|_| rng.chance(50)).collect())
            .collect();
        assert_packed_matches_scalar(&nl, &vectors, seed);
    }
}

#[test]
fn random_netlists_match_exhaustively() {
    for seed in 100..120u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        let nl = random_netlist(&mut rng);
        let n = nl.num_inputs();
        let total = 1u64 << n;
        let vectors: Vec<Vec<bool>> = (0..total)
            .map(|p| (0..n).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        assert_packed_matches_scalar(&nl, &vectors, seed);
    }
}

#[test]
fn every_builder_netlist_matches_exhaustively() {
    let mut fixtures: Vec<(String, Netlist)> = Vec::new();
    for width in [1usize, 2, 4, 8] {
        let (nl, _) = builders::ripple_carry_adder(width);
        fixtures.push((format!("ripple_carry_adder({width})"), nl));
        let (nl, _) = builders::modular_adder(width);
        fixtures.push((format!("modular_adder({width})"), nl));
        fixtures.push((format!("word_mux({width})"), builders::word_mux(width)));
    }
    let mut fa = Netlist::new();
    let a = fa.input("a");
    let b = fa.input("b");
    let cin = fa.input("cin");
    let (sum, cout) = builders::full_adder(&mut fa, a, b, cin);
    fa.mark_output(sum, "sum");
    fa.mark_output(cout, "cout");
    fixtures.push(("full_adder".into(), fa));
    let mut ha = Netlist::new();
    let a = ha.input("a");
    let b = ha.input("b");
    let (sum, carry) = builders::half_adder(&mut ha, a, b);
    ha.mark_output(sum, "sum");
    ha.mark_output(carry, "carry");
    fixtures.push(("half_adder".into(), ha));

    for (name, nl) in &fixtures {
        let n = nl.num_inputs();
        let total = 1u64 << n;
        let vectors: Vec<Vec<bool>> = (0..total)
            .map(|p| (0..n).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let mut scalar = Simulator::new(nl);
        for v in &vectors {
            scalar.evaluate(v).unwrap();
        }
        let mut packed = PackedSimulator::new(nl);
        let mut base = 0;
        while base < total {
            let lanes = (total - base).min(LANES as u64) as usize;
            packed
                .evaluate_packed(&exhaustive_input_words(n, base), lanes)
                .unwrap();
            base += lanes as u64;
        }
        assert_eq!(packed.toggles(), scalar.toggles(), "{name}");
        assert_eq!(packed.evaluations(), scalar.evaluations(), "{name}");
    }
}

#[test]
fn parallel_trace_toggles_match_scalar_on_random_netlists() {
    for seed in 200..210u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        let nl = random_netlist(&mut rng);
        let n = nl.num_inputs();
        let vectors: Vec<Vec<bool>> = (0..500)
            .map(|_| (0..n).map(|_| rng.chance(50)).collect())
            .collect();
        let mut scalar = Simulator::new(&nl);
        for v in &vectors {
            scalar.evaluate(v).unwrap();
        }
        for threads in [1usize, 4] {
            let toggles = trace_toggles(&nl, &vectors, &Executor::with_threads(threads)).unwrap();
            assert_eq!(toggles, scalar.toggles(), "seed {seed}, threads {threads}");
        }
    }
}
