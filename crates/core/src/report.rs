//! Run reports: the telemetry every experiment table is built from.

use approx_arith::range::RangeConfig;
use approx_arith::{AccuracyLevel, OpCounts};
use iter_solvers::RangeModel;

use crate::watchdog::RecoveryTelemetry;

/// Outcome of the static fixed-point range analysis performed before a
/// run, when the workload has a range model and the context models a
/// bounded-error datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeProofSummary {
    /// Whether every datapath expression was proven overflow-free.
    pub proven: bool,
    /// Rendered verdict (e.g. `"proven: no overflow or saturation"`).
    pub verdict: String,
    /// Declared assumptions the proof is conditioned on.
    pub assumptions: Vec<String>,
}

impl RangeProofSummary {
    /// Analyze a solver's range model under a per-operation error
    /// configuration and summarize the outcome for reporting.
    #[must_use]
    pub fn from_model(model: &RangeModel, config: &RangeConfig) -> Self {
        let report = model.analyze(config);
        Self {
            proven: report.proven(),
            verdict: report.verdict.to_string(),
            assumptions: model.notes().to_vec(),
        }
    }
}

impl std::fmt::Display for RangeProofSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.verdict)?;
        for note in &self.assumptions {
            write!(f, "; {note}")?;
        }
        Ok(())
    }
}

/// Final classification of a run or service request — the single
/// outcome vocabulary shared by single-run telemetry ([`RunReport`])
/// and the solver service ([`crate::service`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Converged within budget with no robustness intervention: first
    /// attempt, requested level, no watchdog recovery events.
    Completed,
    /// Converged and met its quality floor, but only after the
    /// robustness envelope intervened — a retry, an escalated or
    /// rerouted level, or watchdog recovery during the run.
    Degraded,
    /// Rejected at admission by the service's load-shedding policy;
    /// never executed.
    Shed,
    /// Did not converge (deadline exhausted, divergence, or a quality
    /// floor violation) within the bounded attempt budget.
    Failed,
}

impl Outcome {
    /// All outcome classes, in severity order.
    pub const ALL: [Outcome; 4] = [
        Outcome::Completed,
        Outcome::Degraded,
        Outcome::Shed,
        Outcome::Failed,
    ];

    /// Whether the request produced a usable result (completed or
    /// degraded — both meet their quality floor by construction).
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(self, Outcome::Completed | Outcome::Degraded)
    }

    /// Classify a single (non-service) run from its telemetry: converged
    /// cleanly → `Completed`, converged with recovery interventions →
    /// `Degraded`, otherwise `Failed`. `Shed` only arises at the
    /// service's admission queue.
    #[must_use]
    pub fn classify_run(converged: bool, recovery: &RecoveryTelemetry) -> Self {
        if !converged {
            Outcome::Failed
        } else if recovery.degrading() {
            Outcome::Degraded
        } else {
            Outcome::Completed
        }
    }

    /// Stable lower-case label used in Display and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Degraded => "degraded",
            Outcome::Shed => "shed",
            Outcome::Failed => "failed",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything recorded about one run of an iterative method under a
/// reconfiguration strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Method name (e.g. `"gmm-em"`).
    pub method: String,
    /// Strategy name (e.g. `"incremental"`).
    pub strategy: String,
    /// Total iterations executed, including rolled-back ones.
    pub iterations: usize,
    /// Whether the run stopped on the method's convergence criterion
    /// (as opposed to exhausting `MAX_ITER`).
    pub converged: bool,
    /// Iterations spent at each accuracy level (the paper's "Steps on
    /// Single Components" columns), indexed by [`AccuracyLevel::index`].
    pub steps_per_level: [usize; 5],
    /// Number of rollbacks performed by the function scheme.
    pub rollbacks: usize,
    /// Energy of the approximate part (the paper's "Energy" column,
    /// before normalization against Truth).
    pub approx_energy: f64,
    /// Total energy including the exact multiplier/divider datapath.
    pub total_energy: f64,
    /// Approximate-part energy of each iteration, in order.
    pub energy_per_iteration: Vec<f64>,
    /// The accuracy level each iteration ran at, in order.
    pub level_schedule: Vec<AccuracyLevel>,
    /// Exact objective of the final state.
    pub final_objective: f64,
    /// Operation counters of the run.
    pub op_counts: OpCounts,
    /// Watchdog recovery events (guard trips, checkpoints, restores,
    /// escalations) — all zero for runs without active protection.
    pub recovery: RecoveryTelemetry,
    /// Which attempt this report describes (1 for a plain single run;
    /// the solver service stamps the retry count of the final attempt,
    /// so service and single-run telemetry share one schema).
    pub attempts: usize,
    /// Final outcome classification (see [`Outcome`]). A plain runner
    /// invocation classifies itself via [`Outcome::classify_run`]; the
    /// service overrides it with the request-level verdict.
    pub outcome: Outcome,
    /// Static range-analysis outcome for the workload's datapath, when
    /// one was computed (`None` for runs without a range model).
    pub range_proof: Option<RangeProofSummary>,
}

impl RunReport {
    /// Sum of the per-level step counts (equals
    /// [`RunReport::iterations`]).
    #[must_use]
    pub fn total_steps(&self) -> usize {
        self.steps_per_level.iter().sum()
    }

    /// Steps spent at one level.
    #[must_use]
    pub fn steps_at(&self, level: AccuracyLevel) -> usize {
        self.steps_per_level[level.index()]
    }

    /// Mean approximate-part energy per iteration.
    #[must_use]
    pub fn energy_per_iteration_mean(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.approx_energy / self.iterations as f64
        }
    }

    /// This run's approximate-part energy normalized by a baseline's
    /// (the paper's tables normalize against the `Truth` run).
    ///
    /// # Panics
    /// Panics if the baseline consumed no energy.
    #[must_use]
    pub fn normalized_energy(&self, baseline: &RunReport) -> f64 {
        assert!(
            baseline.approx_energy > 0.0,
            "baseline run consumed no energy"
        );
        self.approx_energy / baseline.approx_energy
    }

    /// Header line for [`RunReport::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> &'static str {
        "method,strategy,iterations,converged,steps_level1,steps_level2,\
         steps_level3,steps_level4,steps_acc,rollbacks,approx_energy,\
         total_energy,final_objective,adds,muls,divs,guard_trips,\
         divergence_trips,checkpoints,restores,escalations"
    }

    /// One CSV row with the run's summary statistics, for spreadsheet or
    /// pandas-style post-processing of experiment sweeps.
    ///
    /// # Example
    ///
    /// ```
    /// use approxit::RunReport;
    ///
    /// let header = RunReport::csv_header();
    /// assert_eq!(header.split(',').count(), 21);
    /// ```
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.method,
            self.strategy,
            self.iterations,
            self.converged,
            self.steps_per_level[0],
            self.steps_per_level[1],
            self.steps_per_level[2],
            self.steps_per_level[3],
            self.steps_per_level[4],
            self.rollbacks,
            self.approx_energy,
            self.total_energy,
            self.final_objective,
            self.op_counts.adds,
            self.op_counts.muls,
            self.op_counts.divs,
            self.recovery.guard_trips,
            self.recovery.divergence_trips,
            self.recovery.checkpoints_taken,
            self.recovery.restores,
            self.recovery.escalations,
        )
    }

    /// The report as a self-contained JSON object (hand-emitted — the
    /// crate builds offline with no serialization dependency).
    ///
    /// Numbers use Rust's `f64` Display (round-trippable); strings are
    /// escaped per RFC 8259; non-finite values are emitted as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                // JSON has no Inf/NaN; emit null like most tooling does.
                "null".to_owned()
            }
        }
        let energy_list = self
            .energy_per_iteration
            .iter()
            .map(|&e| num(e))
            .collect::<Vec<_>>()
            .join(",");
        let schedule = self
            .level_schedule
            .iter()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>()
            .join(",");
        let range_proof = match &self.range_proof {
            None => "null".to_owned(),
            Some(rp) => {
                let assumptions = rp
                    .assumptions
                    .iter()
                    .map(|a| format!("\"{}\"", esc(a)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"proven\":{},\"verdict\":\"{}\",\"assumptions\":[{}]}}",
                    rp.proven,
                    esc(&rp.verdict),
                    assumptions
                )
            }
        };
        format!(
            "{{\"method\":\"{}\",\"strategy\":\"{}\",\"iterations\":{},\
             \"converged\":{},\"attempts\":{},\"outcome\":\"{}\",\
             \"steps_per_level\":[{},{},{},{},{}],\
             \"rollbacks\":{},\"approx_energy\":{},\"total_energy\":{},\
             \"final_objective\":{},\
             \"op_counts\":{{\"adds\":{},\"muls\":{},\"divs\":{}}},\
             \"recovery\":{{\"guard_trips\":{},\"divergence_trips\":{},\
             \"checkpoints_taken\":{},\"checkpoints_evicted\":{},\
             \"restores\":{},\"escalations\":{}}},\
             \"range_proof\":{},\
             \"energy_per_iteration\":[{}],\"level_schedule\":[{}]}}",
            esc(&self.method),
            esc(&self.strategy),
            self.iterations,
            self.converged,
            self.attempts,
            self.outcome,
            self.steps_per_level[0],
            self.steps_per_level[1],
            self.steps_per_level[2],
            self.steps_per_level[3],
            self.steps_per_level[4],
            self.rollbacks,
            num(self.approx_energy),
            num(self.total_energy),
            num(self.final_objective),
            self.op_counts.adds,
            self.op_counts.muls,
            self.op_counts.divs,
            self.recovery.guard_trips,
            self.recovery.divergence_trips,
            self.recovery.checkpoints_taken,
            self.recovery.checkpoints_evicted,
            self.recovery.restores,
            self.recovery.escalations,
            range_proof,
            energy_list,
            schedule,
        )
    }

    /// The level schedule as a compact run-length string, e.g.
    /// `"1x level1, 40x level3, 2x level4"`.
    #[must_use]
    pub fn schedule_summary(&self) -> String {
        let mut runs: Vec<(AccuracyLevel, usize)> = Vec::new();
        for &level in &self.level_schedule {
            match runs.last_mut() {
                Some((l, count)) if *l == level => *count += 1,
                _ => runs.push((level, 1)),
            }
        }
        runs.iter()
            .map(|(l, c)| format!("{c}x {l}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} / {}: {} iterations ({}), {} rollbacks, {} after {} attempt{}",
            self.method,
            self.strategy,
            self.iterations,
            if self.converged {
                "converged"
            } else {
                "MAX_ITER"
            },
            self.rollbacks,
            self.outcome,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
        )?;
        write!(f, "  steps:")?;
        for level in AccuracyLevel::ALL {
            write!(f, " {}={}", level, self.steps_at(level))?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  energy: approx {:.4}, total {:.4}; final f = {:.6e}",
            self.approx_energy, self.total_energy, self.final_objective
        )?;
        if self.recovery.any() {
            writeln!(f, "  recovery: {}", self.recovery)?;
        }
        if let Some(rp) = &self.range_proof {
            writeln!(f, "  range: {}", rp.verdict)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            method: "m".into(),
            strategy: "s".into(),
            iterations: 10,
            converged: true,
            steps_per_level: [3, 2, 2, 2, 1],
            rollbacks: 1,
            approx_energy: 50.0,
            total_energy: 80.0,
            energy_per_iteration: vec![5.0; 10],
            level_schedule: vec![AccuracyLevel::Level1; 10],
            final_objective: 0.5,
            op_counts: OpCounts::default(),
            recovery: RecoveryTelemetry::default(),
            attempts: 1,
            outcome: Outcome::Completed,
            range_proof: None,
        }
    }

    #[test]
    fn totals_are_consistent() {
        let r = sample();
        assert_eq!(r.total_steps(), 10);
        assert_eq!(r.steps_at(AccuracyLevel::Accurate), 1);
        assert!((r.energy_per_iteration_mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_against_baseline() {
        let r = sample();
        let mut truth = sample();
        truth.approx_energy = 100.0;
        assert!((r.normalized_energy(&truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_fields() {
        let text = sample().to_string();
        assert!(text.contains("converged"));
        assert!(text.contains("level1=3"));
        assert!(text.contains("acc=1"));
    }

    #[test]
    #[should_panic(expected = "baseline run consumed no energy")]
    fn zero_baseline_panics() {
        let r = sample();
        let mut zero = sample();
        zero.approx_energy = 0.0;
        let _ = r.normalized_energy(&zero);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = sample();
        let row = r.to_csv_row();
        assert_eq!(
            row.split(',').count(),
            RunReport::csv_header().split(',').count()
        );
        assert!(row.starts_with("m,s,10,true,3,2,2,2,1,1,"));
    }

    #[test]
    fn schedule_summary_run_length_encodes() {
        let mut r = sample();
        r.level_schedule = vec![
            AccuracyLevel::Level1,
            AccuracyLevel::Level1,
            AccuracyLevel::Level3,
            AccuracyLevel::Accurate,
            AccuracyLevel::Accurate,
            AccuracyLevel::Accurate,
        ];
        assert_eq!(r.schedule_summary(), "2x level1, 1x level3, 3x acc");
    }

    #[test]
    fn empty_schedule_summary_is_empty() {
        let mut r = sample();
        r.level_schedule.clear();
        assert_eq!(r.schedule_summary(), "");
    }

    #[test]
    fn json_contains_all_top_level_keys() {
        let mut r = sample();
        r.recovery.restores = 2;
        r.recovery.escalations = 1;
        let json = r.to_json();
        for key in [
            "\"method\":\"m\"",
            "\"strategy\":\"s\"",
            "\"iterations\":10",
            "\"converged\":true",
            "\"steps_per_level\":[3,2,2,2,1]",
            "\"rollbacks\":1",
            "\"attempts\":1",
            "\"outcome\":\"completed\"",
            "\"recovery\":{\"guard_trips\":0,\"divergence_trips\":0,\
             \"checkpoints_taken\":0,\"checkpoints_evicted\":0,\
             \"restores\":2,\"escalations\":1}",
            "\"level_schedule\":[\"level1\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_and_display_carry_the_range_proof() {
        let mut r = sample();
        assert!(r.to_json().contains("\"range_proof\":null"));
        r.range_proof = Some(RangeProofSummary {
            proven: true,
            verdict: "proven: no overflow or saturation".into(),
            assumptions: vec!["assumes iterate bound 8".into()],
        });
        let json = r.to_json();
        assert!(json.contains("\"range_proof\":{\"proven\":true"));
        assert!(json.contains("assumes iterate bound 8"));
        assert!(r.to_string().contains("range: proven"));
        // The CSV schema is frozen: the proof travels in JSON/Display only.
        assert_eq!(r.to_csv_row().split(',').count(), 21);
    }

    #[test]
    fn range_proof_summary_from_model_records_assumptions() {
        use approx_arith::QFormat;
        use approx_linalg::Matrix;
        use iter_solvers::{cg_range_model, CgRangeSpec, ConjugateGradient};

        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let cg = ConjugateGradient::new(a, vec![1.0, 2.0], 1e-10, 50);
        let model = cg_range_model(&cg, &CgRangeSpec::default());
        let summary = RangeProofSummary::from_model(&model, &RangeConfig::exact(QFormat::Q15_16));
        assert!(summary.proven, "{}", summary.verdict);
        assert_eq!(summary.assumptions.len(), 2);
        assert!(summary.to_string().contains("alpha"));
    }

    #[test]
    fn json_escapes_strings_and_nulls_non_finite() {
        let mut r = sample();
        r.method = "m\"with\\quotes".into();
        r.final_objective = f64::NAN;
        let json = r.to_json();
        assert!(json.contains("m\\\"with\\\\quotes"));
        assert!(json.contains("\"final_objective\":null"));
    }

    #[test]
    fn display_mentions_recovery_only_when_active() {
        let mut r = sample();
        assert!(!r.to_string().contains("recovery"));
        r.recovery.guard_trips = 3;
        assert!(r.to_string().contains("recovery: guards 3"));
    }

    #[test]
    fn outcome_classification_from_run_telemetry() {
        let clean = RecoveryTelemetry::default();
        assert_eq!(Outcome::classify_run(true, &clean), Outcome::Completed);
        assert_eq!(Outcome::classify_run(false, &clean), Outcome::Failed);
        let checkpointing = RecoveryTelemetry {
            checkpoints_taken: 5,
            checkpoints_evicted: 1,
            ..RecoveryTelemetry::default()
        };
        assert_eq!(
            Outcome::classify_run(true, &checkpointing),
            Outcome::Completed,
            "routine checkpointing must not degrade a clean run"
        );
        let rescued = RecoveryTelemetry {
            restores: 1,
            ..checkpointing
        };
        assert_eq!(Outcome::classify_run(true, &rescued), Outcome::Degraded);
        assert!(Outcome::Degraded.is_success());
        assert!(!Outcome::Shed.is_success());
    }

    #[test]
    fn display_and_json_carry_attempts_and_outcome() {
        let mut r = sample();
        r.attempts = 3;
        r.outcome = Outcome::Degraded;
        let text = r.to_string();
        assert!(text.contains("degraded after 3 attempts"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"attempts\":3"));
        assert!(json.contains("\"outcome\":\"degraded\""));
        // The CSV schema stays frozen at 21 columns.
        assert_eq!(r.to_csv_row().split(',').count(), 21);
    }
}
