//! The reconfiguration-strategy abstraction and the single-mode
//! baseline.

use approx_arith::AccuracyLevel;

/// Everything a strategy may inspect after one iteration — all quantities
/// that are "already available along with conducting IMs" (paper §4.1),
/// so observing them adds negligible overhead.
#[derive(Debug, Clone, Copy)]
pub struct IterationObservation<'a> {
    /// 1-based iteration index.
    pub iteration: usize,
    /// The level the iteration just ran at.
    pub level: AccuracyLevel,
    /// Exact objective before the iteration, `f(xᵏ⁻¹)`.
    pub objective_prev: f64,
    /// Exact objective after the iteration, `f(xᵏ)`.
    pub objective_curr: f64,
    /// Parameter vector before the iteration, `xᵏ⁻¹`.
    pub params_prev: &'a [f64],
    /// Parameter vector after the iteration, `xᵏ`.
    pub params_curr: &'a [f64],
    /// Exact gradient at the previous iterate, `∇f(xᵏ⁻¹)`, if the method
    /// provides one.
    pub gradient_prev: Option<&'a [f64]>,
    /// Exact gradient at the current iterate, `∇f(xᵏ)`, if available.
    pub gradient_curr: Option<&'a [f64]>,
    /// ‖∇f(x⁰)‖₂ of this run (0 if the method has no gradient) — the
    /// normalization reference for the adaptive strategy's angle.
    pub initial_gradient_norm: f64,
}

/// What the controller should do before the next iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current mode.
    Keep,
    /// Reconfigure to the given mode for the next iteration.
    SwitchTo(AccuracyLevel),
    /// Discard the iteration just performed (restore `xᵏ⁻¹`) and
    /// reconfigure — the recovery action of the function scheme.
    RollbackAndSwitch(AccuracyLevel),
}

/// An online reconfiguration strategy (paper §4).
///
/// Strategies are stateful (`decide` takes `&mut self`): the adaptive
/// strategy updates its lookup table at runtime, and the PID baseline
/// integrates its error signal. Construct a fresh strategy per run.
pub trait ReconfigStrategy {
    /// Strategy name for reports.
    fn name(&self) -> &str;

    /// The mode the first iteration runs at.
    fn initial_level(&self) -> AccuracyLevel;

    /// Inspect the completed iteration and decide how to proceed.
    fn decide(&mut self, observation: &IterationObservation<'_>) -> Decision;

    /// Called when the method's own convergence criterion fired on the
    /// just-completed iteration. Returning `Some(decision)` *vetoes*
    /// acceptance (the paper's protection against being "falsely stopped
    /// … caused by approximation"): the decision is applied and the run
    /// continues. Returning `None` accepts the converged iterate.
    ///
    /// The default accepts every convergence — the single-mode
    /// configurations stop exactly like raw hardware would, wrong
    /// results included.
    fn convergence_veto(&mut self, observation: &IterationObservation<'_>) -> Option<Decision> {
        let _ = observation;
        None
    }
}

/// The trivial strategy: one fixed mode for the whole run — the paper's
/// single-mode configurations (Tables 3(a) and 4(a)) and the `Truth`
/// baseline (`SingleMode::accurate()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleMode {
    level: AccuracyLevel,
    name: &'static str,
}

impl SingleMode {
    /// Run everything at the given level.
    #[must_use]
    pub fn new(level: AccuracyLevel) -> Self {
        let name = match level {
            AccuracyLevel::Level1 => "single/level1",
            AccuracyLevel::Level2 => "single/level2",
            AccuracyLevel::Level3 => "single/level3",
            AccuracyLevel::Level4 => "single/level4",
            AccuracyLevel::Accurate => "truth",
        };
        Self { level, name }
    }

    /// The fully accurate baseline (`Truth`).
    #[must_use]
    pub fn accurate() -> Self {
        Self::new(AccuracyLevel::Accurate)
    }
}

impl ReconfigStrategy for SingleMode {
    fn name(&self) -> &str {
        self.name
    }

    fn initial_level(&self) -> AccuracyLevel {
        self.level
    }

    fn decide(&mut self, _observation: &IterationObservation<'_>) -> Decision {
        Decision::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_observation<'a>(params: &'a [f64]) -> IterationObservation<'a> {
        IterationObservation {
            iteration: 1,
            level: AccuracyLevel::Level1,
            objective_prev: 1.0,
            objective_curr: 0.5,
            params_prev: params,
            params_curr: params,
            gradient_prev: None,
            gradient_curr: None,
            initial_gradient_norm: 0.0,
        }
    }

    #[test]
    fn single_mode_never_switches() {
        let mut s = SingleMode::new(AccuracyLevel::Level2);
        let params = [1.0, 2.0];
        assert_eq!(s.initial_level(), AccuracyLevel::Level2);
        for _ in 0..10 {
            assert_eq!(s.decide(&dummy_observation(&params)), Decision::Keep);
        }
    }

    #[test]
    fn truth_baseline_is_accurate() {
        let s = SingleMode::accurate();
        assert_eq!(s.initial_level(), AccuracyLevel::Accurate);
        assert_eq!(s.name(), "truth");
    }

    #[test]
    fn strategies_are_object_safe() {
        let mut s = SingleMode::new(AccuracyLevel::Level1);
        let dynamic: &mut dyn ReconfigStrategy = &mut s;
        assert_eq!(dynamic.name(), "single/level1");
    }
}
