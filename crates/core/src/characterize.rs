//! Offline characterization stage (paper §3.1).
//!
//! "The quality errors of different approximation modes are
//! pre-characterized at offline stage by simulating several iterations on
//! representative workloads": for each mode, a few iterations are
//! replayed from the exact trajectory's states and the iteration-level
//! quality error (Definition 1) is averaged. The same pass records the
//! per-iteration objective drop of the exact run, which seeds the
//! adaptive strategy's error budget `E = f(x¹) − f(x⁰)`.

use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, QcsContext};
use iter_solvers::IterativeMethod;
use parx::Executor;

use crate::quality::quality_error;

/// The offline characterization of one application on one hardware
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationTable {
    /// Mean iteration-level quality error `ε` per mode (Definition 1,
    /// objective space); the accurate mode's entry is 0 by construction.
    pub quality_errors: [f64; 5],
    /// Mean iteration-level *update error* per mode in parameter space:
    /// `‖x'_approx − x'_exact‖₂ / ‖x'_exact‖₂` for one step from the
    /// same state — the `εᵏ` of the paper's §2.1 update-error criterion,
    /// which the incremental strategy's quality scheme compares against
    /// the inter-iterate distance.
    pub update_errors: [f64; 5],
    /// Per-add energy of each mode relative to the accurate mode — the
    /// `J` vector of Equation (5).
    pub relative_energies: [f64; 5],
    /// `|f(x¹) − f(x⁰)| / |f(x¹)|` of the exact run — the initial error
    /// budget for the adaptive lookup table, normalized like the quality
    /// errors (Definition 1) so the two are comparable in Equation (5).
    pub initial_objective_drop: f64,
    /// Number of characterization iterations used.
    pub iterations: usize,
}

impl CharacterizationTable {
    /// Quality error of a mode.
    #[must_use]
    pub fn quality_error(&self, level: AccuracyLevel) -> f64 {
        self.quality_errors[level.index()]
    }

    /// Relative per-add energy of a mode.
    #[must_use]
    pub fn relative_energy(&self, level: AccuracyLevel) -> f64 {
        self.relative_energies[level.index()]
    }

    /// Parameter-space update error of a mode.
    #[must_use]
    pub fn update_error(&self, level: AccuracyLevel) -> f64 {
        self.update_errors[level.index()]
    }
}

impl std::fmt::Display for CharacterizationTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "offline characterization ({} iterations, initial budget {:.3e}):",
            self.iterations, self.initial_objective_drop
        )?;
        writeln!(
            f,
            "  {:>8} {:>12} {:>12} {:>8}",
            "mode", "quality ε", "update ε", "energy"
        )?;
        for level in AccuracyLevel::ALL {
            writeln!(
                f,
                "  {:>8} {:>12.3e} {:>12.3e} {:>8.3}",
                level.to_string(),
                self.quality_error(level),
                self.update_error(level),
                self.relative_energy(level),
            )?;
        }
        Ok(())
    }
}

/// Run the offline characterization on the paper-default datapath:
/// simulate `iterations` exact steps and, from every visited state, one
/// step per approximate mode; average the per-iteration quality errors.
///
/// # Panics
/// Panics if `iterations` is 0.
pub fn characterize<M>(
    method: &M,
    profile: &EnergyProfile,
    iterations: usize,
) -> CharacterizationTable
where
    M: IterativeMethod + Sync,
    M::State: Sync,
{
    characterize_on(
        method,
        &QcsContext::with_profile(profile.clone()),
        iterations,
    )
}

/// Like [`characterize`], but on an explicit datapath (adder, format and
/// profile taken from `template`) — used by the width-sweep ablation.
///
/// # Panics
/// Panics if `iterations` is 0.
pub fn characterize_on<M>(
    method: &M,
    template: &QcsContext,
    iterations: usize,
) -> CharacterizationTable
where
    M: IterativeMethod + Sync,
    M::State: Sync,
{
    characterize_on_with(method, template, iterations, &Executor::new())
}

/// Like [`characterize_on`], but with an explicit [`Executor`]: the four
/// approximate modes are characterized concurrently (they replay from
/// the same read-only exact trajectory and never observe each other), so
/// the table is bit-identical for every thread count.
///
/// # Panics
/// Panics if `iterations` is 0.
pub fn characterize_on_with<M>(
    method: &M,
    template: &QcsContext,
    iterations: usize,
    exec: &Executor,
) -> CharacterizationTable
where
    M: IterativeMethod + Sync,
    M::State: Sync,
{
    assert!(iterations > 0, "at least one characterization iteration");
    let profile = template.profile();
    let mut exact_ctx = template.clone();
    exact_ctx.reset_counters();
    exact_ctx.set_level(AccuracyLevel::Accurate);
    // Exact trajectory.
    let mut states = vec![method.initial_state()];
    for _ in 0..iterations {
        let next = method.step(states.last().expect("non-empty"), &mut exact_ctx);
        states.push(next);
    }
    let objectives: Vec<f64> = states.iter().map(|s| method.objective(s)).collect();
    let initial_objective_drop =
        (objectives[0] - objectives[1]).abs() / objectives[1].abs().max(1e-300);

    let exact_params: Vec<Vec<f64>> = states.iter().map(|s| method.params(s)).collect();

    let mut quality_errors = [0.0f64; 5];
    let mut update_errors = [0.0f64; 5];
    // The four approximate modes replay from the same (read-only) exact
    // trajectory and never observe each other, so they fan out across
    // cores; each mode's arithmetic is untouched, making the table
    // bit-identical for every thread count.
    let per_level = exec.run_indexed(AccuracyLevel::APPROXIMATE.len(), |i| {
        let level = AccuracyLevel::APPROXIMATE[i];
        let mut ctx = template.clone();
        ctx.reset_counters();
        ctx.set_level(level);
        let mut total = 0.0;
        let mut total_update = 0.0;
        for (t, state) in states[..iterations].iter().enumerate() {
            let approx_next = method.step(state, &mut ctx);
            let f_exact = objectives[t + 1];
            let f_approx = method.objective(&approx_next);
            total += quality_error(f_exact, f_approx);
            let p_approx = method.params(&approx_next);
            let p_exact = &exact_params[t + 1];
            let norm = approx_linalg::vector::norm2_exact(p_exact).max(1e-300);
            total_update += approx_linalg::vector::dist2_exact(&p_approx, p_exact) / norm;
        }
        (total / iterations as f64, total_update / iterations as f64)
    });
    for (level, (quality, update)) in AccuracyLevel::APPROXIMATE.iter().zip(per_level) {
        quality_errors[level.index()] = quality;
        update_errors[level.index()] = update;
    }

    CharacterizationTable {
        quality_errors,
        update_errors,
        relative_energies: profile.relative_add_energies(),
        initial_objective_drop,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::EnergyProfile;
    use iter_solvers::datasets::gaussian_blobs;
    use iter_solvers::GaussianMixture;

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn method() -> GaussianMixture {
        let data = gaussian_blobs(
            "char",
            &[40, 40],
            &[vec![0.0, 0.0], vec![6.0, 5.0]],
            &[1.0, 1.0],
            19,
        );
        GaussianMixture::from_dataset(&data, 1e-8, 50, 3)
    }

    #[test]
    fn accurate_mode_has_zero_quality_error() {
        let table = characterize(&method(), &profile(), 5);
        assert_eq!(table.quality_error(AccuracyLevel::Accurate), 0.0);
    }

    #[test]
    fn quality_errors_shrink_with_accuracy() {
        let table = characterize(&method(), &profile(), 5);
        let e = table.quality_errors;
        assert!(
            e[0] >= e[3],
            "level1 error {} should dominate level4 error {}",
            e[0],
            e[3]
        );
        assert!(e[0] > 0.0, "level1 must show some quality error");
    }

    #[test]
    fn energies_come_from_profile() {
        let table = characterize(&method(), &profile(), 3);
        assert_eq!(table.relative_energies, profile().relative_add_energies());
        assert!((table.relative_energy(AccuracyLevel::Accurate) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn initial_drop_is_positive_for_a_descending_method() {
        let table = characterize(&method(), &profile(), 3);
        assert!(table.initial_objective_drop > 0.0);
    }

    #[test]
    fn display_lists_every_mode() {
        let table = characterize(&method(), &profile(), 3);
        let text = table.to_string();
        assert!(text.contains("level1"));
        assert!(text.contains("acc"));
        assert!(text.contains("quality"));
    }

    #[test]
    fn characterization_is_deterministic() {
        let a = characterize(&method(), &profile(), 4);
        let b = characterize(&method(), &profile(), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_characterization_is_bit_identical_to_serial() {
        let m = method();
        let template = QcsContext::with_profile(profile());
        let serial = characterize_on_with(&m, &template, 5, &Executor::with_threads(1));
        for threads in [2usize, 4, 16] {
            let parallel = characterize_on_with(&m, &template, 5, &Executor::with_threads(threads));
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }
}
