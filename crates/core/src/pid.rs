//! PID-controller baseline after Chippa et al. (TECS 2013).
//!
//! The paper's motivation section (§2.3) contrasts ApproxIt with the
//! dynamic-effort-scaling design of [3]: an algorithm-level *sensor*
//! (e.g. the relative per-iteration progress, or k-means' mean centroid
//! distance) feeds a proportional–integral–derivative controller that
//! nudges the effort knob. The design has no notion of the application's
//! convergence structure and therefore no final-quality guarantee —
//! which the ablation bench demonstrates empirically.

use approx_arith::AccuracyLevel;

use crate::strategy::{Decision, IterationObservation, ReconfigStrategy};

/// PID gains and setpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Target relative objective improvement per iteration.
    pub setpoint: f64,
}

impl Default for PidConfig {
    fn default() -> Self {
        Self {
            kp: 2.0,
            ki: 0.5,
            kd: 0.5,
            setpoint: 0.01,
        }
    }
}

/// The PID baseline strategy.
///
/// The sensor is the relative per-iteration improvement
/// `s = (f(xᵏ⁻¹) − f(xᵏ)) / |f(xᵏ⁻¹)|`; the control error is
/// `setpoint − s` (positive when progress is too slow). The control
/// output is quantized to a level *change*: the controller raises
/// accuracy when it is positive, lowers it when clearly negative.
#[derive(Debug, Clone)]
pub struct PidStrategy {
    config: PidConfig,
    integral: f64,
    previous_error: Option<f64>,
}

impl PidStrategy {
    /// Create a baseline controller with the given gains.
    #[must_use]
    pub fn new(config: PidConfig) -> Self {
        Self {
            config,
            integral: 0.0,
            previous_error: None,
        }
    }
}

impl Default for PidStrategy {
    fn default() -> Self {
        Self::new(PidConfig::default())
    }
}

impl ReconfigStrategy for PidStrategy {
    fn name(&self) -> &str {
        "pid-baseline"
    }

    fn initial_level(&self) -> AccuracyLevel {
        AccuracyLevel::Level1
    }

    fn decide(&mut self, obs: &IterationObservation<'_>) -> Decision {
        let sensor =
            (obs.objective_prev - obs.objective_curr) / obs.objective_prev.abs().max(1e-300);
        let error = self.config.setpoint - sensor;
        self.integral += error;
        // Basic anti-windup clamp.
        self.integral = self.integral.clamp(-10.0, 10.0);
        let derivative = self.previous_error.map_or(0.0, |prev| error - prev);
        self.previous_error = Some(error);
        let control =
            self.config.kp * error + self.config.ki * self.integral + self.config.kd * derivative;

        let current = obs.level.index() as i64;
        let target = if control > 0.5 {
            current + 1
        } else if control < -0.5 {
            current - 1
        } else {
            current
        };
        let target = target.clamp(0, 4) as usize;
        let target_level = AccuracyLevel::from_index(target).expect("clamped to 0..=4");
        if target_level == obs.level {
            Decision::Keep
        } else {
            Decision::SwitchTo(target_level)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(
        level: AccuracyLevel,
        f_prev: f64,
        f_curr: f64,
        p: &'a [f64],
    ) -> IterationObservation<'a> {
        IterationObservation {
            iteration: 1,
            level,
            objective_prev: f_prev,
            objective_curr: f_curr,
            params_prev: p,
            params_curr: p,
            gradient_prev: None,
            gradient_curr: None,
            initial_gradient_norm: 0.0,
        }
    }

    #[test]
    fn slow_progress_raises_accuracy() {
        // Sustained zero progress: integral pressure must escalate
        // within a few iterations.
        let mut pid = PidStrategy::default();
        let p = [1.0];
        let mut level = AccuracyLevel::Level2;
        for _ in 0..400 {
            if let Decision::SwitchTo(next) = pid.decide(&obs(level, 1.0, 1.0, &p)) {
                level = next;
                break;
            }
        }
        assert_eq!(level, AccuracyLevel::Level3);
    }

    #[test]
    fn fast_progress_lowers_accuracy() {
        let mut pid = PidStrategy::default();
        let p = [1.0];
        // Huge progress: sensor 0.5 >> setpoint → negative control.
        let d = pid.decide(&obs(AccuracyLevel::Level3, 1.0, 0.5, &p));
        assert_eq!(d, Decision::SwitchTo(AccuracyLevel::Level2));
    }

    #[test]
    fn control_saturates_at_extreme_levels() {
        let mut pid = PidStrategy::default();
        let p = [1.0];
        let d = pid.decide(&obs(AccuracyLevel::Accurate, 1.0, 1.0, &p));
        assert_eq!(d, Decision::Keep); // cannot go above accurate
        let mut pid = PidStrategy::default();
        let d = pid.decide(&obs(AccuracyLevel::Level1, 1.0, 0.2, &p));
        assert_eq!(d, Decision::Keep); // cannot go below level1
    }

    #[test]
    fn integral_accumulates_pressure() {
        // Progress slightly below setpoint: each step adds integral
        // pressure until the controller escalates.
        let config = PidConfig {
            kp: 0.1,
            ki: 0.3,
            kd: 0.0,
            setpoint: 0.01,
        };
        let mut pid = PidStrategy::new(config);
        let p = [1.0];
        let mut switched = false;
        for _ in 0..400 {
            if pid.decide(&obs(AccuracyLevel::Level1, 1.0, 0.999, &p)) != Decision::Keep {
                switched = true;
                break;
            }
        }
        assert!(switched, "integral action never escalated");
    }

    #[test]
    fn pid_never_rolls_back() {
        let mut pid = PidStrategy::default();
        let p = [1.0];
        // Even on an objective increase (which ApproxIt would roll back).
        let d = pid.decide(&obs(AccuracyLevel::Level2, 1.0, 2.0, &p));
        assert!(!matches!(d, Decision::RollbackAndSwitch(_)));
    }
}
