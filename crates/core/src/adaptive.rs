//! The adaptive angle-based reconfiguration strategy (paper §4.2).
//!
//! The strategy watches the *steepness* of the objective landscape at
//! the current iterate — the angle α between the parameter manifold's
//! tangent plane and the base plane. A steep manifold (large α) tolerates
//! approximation error, so a low-accuracy mode is selected; as α
//! approaches zero near convergence, higher-accuracy modes take over.
//!
//! The α-ranges assigned to each mode come from a lookup table
//! initialized offline by solving the effort-allocation LP (Equation 5)
//! and re-solved online every `f` iterations with the freshly observed
//! error budget `E = |f(xᵏ) − f(xᵏ⁻¹)|` (normalized; see
//! [`AdaptiveAngleStrategy::new`]).

use approx_arith::AccuracyLevel;
use approx_linalg::vector;

use crate::characterize::CharacterizationTable;
use crate::lp::solve_effort_allocation;
use crate::strategy::{Decision, IterationObservation, ReconfigStrategy};

/// The adaptive angle-based strategy.
///
/// # Example
///
/// ```
/// use approxit::{AdaptiveAngleStrategy, ReconfigStrategy};
///
/// let strategy = AdaptiveAngleStrategy::new(
///     [0.5, 0.2, 0.05, 0.01, 0.0], // offline quality errors ε
///     [0.55, 0.68, 0.8, 0.9, 1.0], // relative energies J
///     0.5,                         // initial (relative) error budget
///     1,                           // f = 1: update the LUT every step
/// );
/// // A generous budget makes the cheapest mode the opening move.
/// assert!(!strategy.initial_level().is_accurate());
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveAngleStrategy {
    quality_errors: [f64; 5],
    relative_energies: [f64; 5],
    update_period: usize,
    /// Cap on the online budget: a recovery iteration's huge apparent
    /// improvement is damage repair, not real headroom, so the budget
    /// never exceeds the characterized first-iteration improvement.
    budget_cap: f64,
    /// Upper α-edge (degrees) of each mode, indexed from the accurate
    /// mode outward: `edges[0]` bounds `Accurate`, `edges[4]` is 90°.
    edges: [f64; 5],
    /// Reference slope for angle normalization (set on first decide).
    reference_slope: Option<f64>,
    /// Lowest mode index still eligible. A mode that *increased* the
    /// objective is retired for the rest of the run (the realized
    /// per-iteration progress of a convergent method only shrinks, so a
    /// mode whose noise already exceeds it can never become useful
    /// again). This runtime learning keeps the adaptive loop from
    /// oscillating between a damaging cheap mode and accurate repair.
    floor: usize,
}

impl AdaptiveAngleStrategy {
    /// Create the strategy.
    ///
    /// `initial_budget` is the tolerable *relative* per-iteration error
    /// used to initialize the lookup table. The paper initializes with
    /// `E = f(x¹) − f(x⁰)` from the offline characterization; because our
    /// quality errors ε are relative (Definition 1), the budget is
    /// likewise normalized by the objective magnitude —
    /// [`AdaptiveAngleStrategy::from_characterization`] does this for
    /// you.
    ///
    /// # Panics
    /// Panics if the errors/energies are negative or non-finite, the
    /// accurate mode's error is non-zero, or `update_period` is 0.
    #[must_use]
    pub fn new(
        quality_errors: [f64; 5],
        relative_energies: [f64; 5],
        initial_budget: f64,
        update_period: usize,
    ) -> Self {
        assert!(
            quality_errors.iter().all(|e| e.is_finite() && *e >= 0.0),
            "quality errors must be non-negative"
        );
        assert!(
            relative_energies.iter().all(|j| j.is_finite() && *j > 0.0),
            "energies must be positive"
        );
        assert!(
            quality_errors[AccuracyLevel::Accurate.index()] == 0.0,
            "the accurate mode must have zero quality error"
        );
        assert!(update_period > 0, "update period f must be positive");
        let mut strategy = Self {
            quality_errors,
            relative_energies,
            update_period,
            budget_cap: initial_budget.max(0.0),
            edges: [0.0; 5],
            reference_slope: None,
            floor: 0,
        };
        strategy.rebuild_lut(initial_budget);
        strategy
    }

    /// Create the strategy from an offline characterization with the
    /// paper's default `f = 1` update period.
    ///
    /// The characterized quality errors are halved before entering the
    /// lookup-table LP, for the same reason the incremental strategy's
    /// quality scheme uses a 0.5 margin: the online budget is measured
    /// on an already-quantized trajectory, so comparing it against the
    /// full characterized error (bias *plus* quantization) double-counts
    /// the quantization component.
    #[must_use]
    pub fn from_characterization(table: &CharacterizationTable, update_period: usize) -> Self {
        let mut errors = table.quality_errors;
        for e in &mut errors {
            *e *= 0.5;
        }
        Self::new(
            errors,
            table.relative_energies,
            table.initial_objective_drop,
            update_period,
        )
    }

    /// The current lookup table as `(level, α_low, α_high)` rows, from
    /// the accurate mode outward. Exposed for inspection and the
    /// ablation benches.
    #[must_use]
    pub fn lookup_table(&self) -> [(AccuracyLevel, f64, f64); 5] {
        let mut rows = [(AccuracyLevel::Accurate, 0.0, 0.0); 5];
        let mut low = 0.0;
        for (slot, row) in rows.iter_mut().enumerate() {
            // slot 0 = Accurate (index 4), slot 4 = Level1 (index 0).
            let level = AccuracyLevel::from_index(4 - slot).expect("slot in 0..5");
            *row = (level, low, self.edges[slot]);
            low = self.edges[slot];
        }
        rows
    }

    /// Re-solve Equation (5) with the given budget and re-partition
    /// `[0°, 90°]` into per-mode ranges: the accurate mode owns the
    /// flattest angles, level 1 the steepest, each with an α-share equal
    /// to its LP weight. Retired modes (below the floor) get no share.
    fn rebuild_lut(&mut self, budget: f64) {
        let eligible_energies = &self.relative_energies[self.floor..];
        let eligible_errors = &self.quality_errors[self.floor..];
        let partial = solve_effort_allocation(eligible_energies, eligible_errors, budget);
        let mut weights = [0.0; 5];
        weights[self.floor..].copy_from_slice(&partial);
        let mut cumulative = 0.0;
        for slot in 0..5 {
            let level_index = 4 - slot;
            cumulative += weights[level_index];
            self.edges[slot] = 90.0 * cumulative.min(1.0);
        }
        // Guard against rounding: the steepest eligible mode must cover
        // up to 90°.
        self.edges[4] = 90.0;
    }

    /// The mode owning angle `alpha` (degrees).
    fn mode_for_angle(&self, alpha: f64) -> AccuracyLevel {
        for slot in 0..5 {
            if alpha <= self.edges[slot] && self.edges[slot] > 0.0 {
                return AccuracyLevel::from_index(4 - slot).expect("slot in 0..5");
            }
        }
        AccuracyLevel::from_index(self.floor).expect("floor in 0..5")
    }

    /// Manifold steepness angle α ∈ \[0°, 90°\] at the current iterate:
    /// `α = (180/π)·atan(3·s/s₀)` where `s` is the slope signal
    /// (gradient norm when available, per-iteration objective progress
    /// otherwise) and `s₀` its value at the start of the run.
    fn angle(&mut self, obs: &IterationObservation<'_>) -> f64 {
        let slope = match obs.gradient_curr {
            Some(g) => vector::norm2_exact(g),
            None => (obs.objective_curr - obs.objective_prev).abs(),
        };
        let reference = *self.reference_slope.get_or_insert_with(|| {
            if obs.initial_gradient_norm > 0.0 {
                obs.initial_gradient_norm
            } else {
                slope.max(1e-12)
            }
        });
        (3.0 * slope / reference.max(1e-300)).atan().to_degrees()
    }
}

impl ReconfigStrategy for AdaptiveAngleStrategy {
    fn name(&self) -> &str {
        "adaptive"
    }

    /// The opening mode is the steepest-angle entry of the initial
    /// lookup table (iterative methods start far from the optimum, where
    /// α ≈ 90°).
    fn initial_level(&self) -> AccuracyLevel {
        self.mode_for_angle(90.0)
    }

    fn decide(&mut self, obs: &IterationObservation<'_>) -> Decision {
        // Online f-step fixed update of the lookup table (§4.2.2): the
        // fresh budget is the relative objective progress of the last
        // iteration.
        // A mode that damaged the objective is retired for good, and the
        // damaged iterate is rolled back (the framework's recovery
        // mechanism, shared with the incremental function scheme) so a
        // single bad step cannot displace the trajectory into a
        // different basin of attraction. The accurate mode is exempt:
        // rolling back a deterministic exact step would replay it
        // forever, and exact dynamics (e.g. damped oscillation of
        // gradient descent) are allowed their transient ups.
        if obs.objective_curr > obs.objective_prev && !obs.level.is_accurate() {
            if obs.level.index() >= self.floor {
                self.floor = (obs.level.index() + 1).min(4);
            }
            self.rebuild_lut(0.0);
            return Decision::RollbackAndSwitch(
                AccuracyLevel::from_index(self.floor).expect("floor in 0..5"),
            );
        }
        if obs.iteration.is_multiple_of(self.update_period) {
            // The tolerable error is the *realized* improvement: when
            // progress stalls the budget shrinks and the lookup table
            // tightens toward the accurate mode.
            let progress = (obs.objective_prev - obs.objective_curr).max(0.0);
            let budget = (progress / obs.objective_curr.abs().max(1e-300)).min(self.budget_cap);
            self.rebuild_lut(budget);
        }
        let alpha = self.angle(obs);
        let target = self.mode_for_angle(alpha);
        if target == obs.level {
            Decision::Keep
        } else {
            Decision::SwitchTo(target)
        }
    }

    /// Same protection as the incremental strategy: a frozen iterate at
    /// an approximate level is only trusted when the exact gradient has
    /// collapsed (relative norm below 0.05); otherwise the level is
    /// retired and the run continues one level up.
    fn convergence_veto(&mut self, obs: &IterationObservation<'_>) -> Option<Decision> {
        if obs.level.is_accurate() {
            return None;
        }
        let grad = obs.gradient_curr?;
        let ratio = vector::norm2_exact(grad) / obs.initial_gradient_norm.max(1e-300);
        if ratio > 0.05 {
            if obs.level.index() >= self.floor {
                self.floor = (obs.level.index() + 1).min(4);
                self.rebuild_lut(0.0);
            }
            Some(Decision::SwitchTo(
                AccuracyLevel::from_index(self.floor).expect("floor in 0..5"),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: [f64; 5] = [0.5, 0.2, 0.05, 0.01, 0.0];
    const J: [f64; 5] = [0.55, 0.68, 0.8, 0.9, 1.0];

    fn obs<'a>(
        iteration: usize,
        level: AccuracyLevel,
        f_prev: f64,
        f_curr: f64,
        grad_curr: Option<&'a [f64]>,
        g0: f64,
        params: &'a [f64],
    ) -> IterationObservation<'a> {
        IterationObservation {
            iteration,
            level,
            objective_prev: f_prev,
            objective_curr: f_curr,
            params_prev: params,
            params_curr: params,
            gradient_prev: grad_curr,
            gradient_curr: grad_curr,
            initial_gradient_norm: g0,
        }
    }

    #[test]
    fn generous_budget_starts_cheap() {
        let s = AdaptiveAngleStrategy::new(EPS, J, 1.0, 1);
        assert_eq!(s.initial_level(), AccuracyLevel::Level1);
    }

    #[test]
    fn zero_budget_starts_accurate() {
        let s = AdaptiveAngleStrategy::new(EPS, J, 0.0, 1);
        assert_eq!(s.initial_level(), AccuracyLevel::Accurate);
    }

    #[test]
    fn lookup_table_partitions_0_to_90() {
        let s = AdaptiveAngleStrategy::new(EPS, J, 0.1, 1);
        let lut = s.lookup_table();
        assert_eq!(lut[0].0, AccuracyLevel::Accurate);
        assert_eq!(lut[4].0, AccuracyLevel::Level1);
        assert_eq!(lut[0].1, 0.0);
        assert!((lut[4].2 - 90.0).abs() < 1e-12);
        for w in lut.windows(2) {
            assert!((w[0].2 - w[1].1).abs() < 1e-12, "ranges must be contiguous");
        }
    }

    #[test]
    fn shrinking_gradient_raises_accuracy() {
        let mut s = AdaptiveAngleStrategy::new(EPS, J, 0.4, 1000); // no online update
        let params = [1.0, 1.0];
        let g_big = [10.0, 0.0];
        let g_tiny = [1e-6, 0.0];
        let d_big = s.decide(&obs(
            1,
            AccuracyLevel::Level1,
            10.0,
            9.0,
            Some(&g_big),
            10.0,
            &params,
        ));
        // Steep: stays cheap (or switches among cheap modes).
        match d_big {
            Decision::Keep => {}
            Decision::SwitchTo(l) => assert!(l < AccuracyLevel::Level4),
            Decision::RollbackAndSwitch(_) => panic!("adaptive never rolls back"),
        }
        // With a budget of 0.4 the initial LUT contains only levels 1–2,
        // so a vanishing gradient selects the most accurate mode the
        // table offers.
        let d_tiny = s.decide(&obs(
            2,
            AccuracyLevel::Level1,
            9.0,
            8.9,
            Some(&g_tiny),
            10.0,
            &params,
        ));
        assert_eq!(d_tiny, Decision::SwitchTo(AccuracyLevel::Level2));
    }

    #[test]
    fn online_update_reacts_to_stalled_progress() {
        let mut s = AdaptiveAngleStrategy::new(EPS, J, 1.0, 1);
        let params = [1.0];
        // Progress stalls: |Δf|/|f| tiny → budget tiny → LUT collapses
        // toward accurate; combined with a small gradient this selects
        // the accurate mode.
        let g = [1e-9];
        let d = s.decide(&obs(
            1,
            AccuracyLevel::Level1,
            1.0,
            0.999_999_999,
            Some(&g),
            1.0,
            &params,
        ));
        assert_eq!(d, Decision::SwitchTo(AccuracyLevel::Accurate));
    }

    #[test]
    fn update_period_gates_lut_refresh() {
        let mut s = AdaptiveAngleStrategy::new(EPS, J, 1.0, 1000);
        let edges_before = s.edges;
        let params = [1.0];
        let g = [5.0];
        // iteration 1 with period 1000: no refresh.
        let _ = s.decide(&obs(
            1,
            AccuracyLevel::Level1,
            1.0,
            0.99,
            Some(&g),
            5.0,
            &params,
        ));
        assert_eq!(s.edges, edges_before);
    }

    #[test]
    fn works_without_gradients() {
        let mut s = AdaptiveAngleStrategy::new(EPS, J, 0.5, 1);
        let params = [1.0];
        // Slope falls back to |Δf|; first call sets the reference.
        let d1 = s.decide(&obs(
            1,
            AccuracyLevel::Level1,
            10.0,
            8.0,
            None,
            0.0,
            &params,
        ));
        assert!(matches!(d1, Decision::Keep | Decision::SwitchTo(_)));
        // Stalled progress then reads as a flat manifold.
        let d2 = s.decide(&obs(
            2,
            AccuracyLevel::Level1,
            8.0,
            7.999_999_9,
            None,
            0.0,
            &params,
        ));
        assert_eq!(d2, Decision::SwitchTo(AccuracyLevel::Accurate));
    }

    #[test]
    #[should_panic(expected = "accurate mode must have zero")]
    fn nonzero_accurate_error_panics() {
        let _ = AdaptiveAngleStrategy::new([0.5, 0.2, 0.05, 0.01, 0.1], J, 0.5, 1);
    }
}
