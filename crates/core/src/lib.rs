//! **ApproxIt** — a quality-guaranteed approximate-computing framework
//! for iterative methods, reproducing Zhang, Yuan, Ye & Xu (DAC 2014).
//!
//! Iterative methods refine a solution over many steps whose accuracy
//! requirements vary at runtime: early iterations tolerate large errors,
//! late iterations near convergence do not. ApproxIt exploits this by
//! running each iteration on a quality-configurable approximate adder
//! ([`approx_arith::QcsAdder`]) and *reconfiguring* the accuracy level
//! online, guided by monitoring quantities that the iterative method
//! produces anyway.
//!
//! The crate provides:
//!
//! * the iteration-level [`quality_error`] metric (Definition 1) and the
//!   offline [`characterize`] stage that measures it per mode;
//! * the [`IncrementalStrategy`] (§4.1) with its gradient / quality /
//!   function schemes, including rollback recovery;
//! * the [`AdaptiveAngleStrategy`] (§4.2) with its LP-initialized,
//!   online-updated lookup table (see [`lp`]);
//! * a PID-controller baseline ([`PidStrategy`]) after Chippa et al.,
//!   the design the paper argues against;
//! * the [`RunConfig`] controller that drives any
//!   [`iter_solvers::IterativeMethod`] under any [`ReconfigStrategy`]
//!   with full energy/quality telemetry ([`RunReport`]);
//! * a runner watchdog ([`WatchdogConfig`], attached via
//!   [`RunConfig::with_watchdog`]) with NaN/Inf/overflow guards,
//!   divergence detection, checkpointed recovery, and level escalation
//!   for fault-tolerant execution under soft errors;
//! * a controller [`modelcheck`]er that statically proves the
//!   reconfiguration policies livelock-free and monotone over their
//!   full reachable state spaces, with replayable counterexamples for
//!   anything it cannot prove;
//! * a resilient multi-request [`service`] ([`SolverService`]) that fans
//!   independent solves across [`parx::Executor`] under
//!   per-request deadlines, retry-with-escalation, bounded-queue load
//!   shedding, and per-level circuit breakers — deterministic for any
//!   thread count.
//!
//! # Quickstart
//!
//! ```
//! use approxit::prelude::*;
//! use iter_solvers::datasets::gaussian_blobs;
//! use iter_solvers::GaussianMixture;
//!
//! // A small clustering workload.
//! let data = gaussian_blobs("demo", &[40, 40],
//!     &[vec![0.0, 0.0], vec![7.0, 7.0]], &[0.8, 0.8], 1);
//! let gmm = GaussianMixture::from_dataset(&data, 1e-8, 200, 3);
//!
//! // Offline stage: characterize per-mode quality errors.
//! let profile = EnergyProfile::from_constants(
//!     [1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
//! let table = characterize(&gmm, &profile, 4);
//!
//! // Online stage: run under the incremental strategy and compare with
//! // the fully accurate baseline.
//! let mut ctx = QcsContext::with_profile(profile);
//! let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
//! let mut strategy = IncrementalStrategy::from_characterization(&table);
//! let scaled = RunConfig::new(&gmm, &mut ctx).execute(&mut strategy);
//! assert!(scaled.report.normalized_energy(&truth.report) < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod characterize;
mod incremental;
mod pid;
mod quality;
mod report;
mod runner;
mod strategy;
mod watchdog;

pub mod lp;
pub mod modelcheck;
pub mod service;

pub use adaptive::AdaptiveAngleStrategy;
pub use characterize::{
    characterize, characterize_on, characterize_on_with, CharacterizationTable,
};
pub use incremental::{IncrementalConfig, IncrementalStrategy, QualitySchemeVariant};
pub use modelcheck::{
    check as model_check, symbolic_cross_check, ControllerSpec, Counterexample, ModelCheckReport,
    SymbolicCrossCheck,
};
pub use pid::{PidConfig, PidStrategy};
pub use quality::{quality_error, QUALITY_EPS};
pub use report::{Outcome, RangeProofSummary, RunReport};
pub use runner::{RunConfig, RunOutcome};
pub use service::{
    BreakerConfig, BreakerTelemetry, Request, RequestResult, RequestTelemetry, ServiceConfig,
    ServiceReport, SolverService, Submission,
};
pub use strategy::{Decision, IterationObservation, ReconfigStrategy, SingleMode};
pub use watchdog::{RecoveryTelemetry, WatchdogConfig};

// Re-export the vocabulary types downstream code always needs together
// with this crate.
pub use approx_arith::{AccuracyLevel, EnergyProfile, QcsContext};

/// One-stop import for applications: `use approxit::prelude::*;`.
///
/// Re-exports the framework vocabulary — the [`RunConfig`] controller
/// and its telemetry, the reconfiguration strategies, the offline
/// characterization stage, and the arithmetic-context types from
/// [`approx_arith`] — plus the [`IterativeMethod`](iter_solvers::IterativeMethod)
/// trait every workload implements. Concrete solvers, datasets, and
/// metrics stay behind explicit `iter_solvers::…` imports: they are
/// workload choices, not framework vocabulary.
pub mod prelude {
    pub use crate::adaptive::AdaptiveAngleStrategy;
    pub use crate::characterize::{
        characterize, characterize_on, characterize_on_with, CharacterizationTable,
    };
    pub use crate::incremental::{IncrementalConfig, IncrementalStrategy};
    pub use crate::quality::quality_error;
    pub use crate::report::{Outcome, RunReport};
    pub use crate::runner::{RunConfig, RunOutcome};
    pub use crate::service::{Request, ServiceConfig, ServiceReport, SolverService, Submission};
    pub use crate::strategy::{Decision, IterationObservation, ReconfigStrategy, SingleMode};
    pub use crate::watchdog::{RecoveryTelemetry, WatchdogConfig};

    pub use approx_arith::{AccuracyLevel, ArithContext, EnergyProfile, FaultInjector, QcsContext};
    pub use approx_linalg::{CsrMatrix, LinearOperator, Matrix};
    pub use iter_solvers::{IterativeMethod, PersonalizedPageRank};
}
