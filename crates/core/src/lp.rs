//! The small linear program behind the adaptive strategy's lookup table
//! (paper Equation 5).
//!
//! ```text
//! min  Ωᵀ J          (expected energy per iteration)
//! s.t. Σ ωᵢ = 1, ωᵢ ≥ 0
//!      Ωᵀ ε ≤ E      (expected per-iteration error within budget)
//! ```
//!
//! With one equality and one inequality over `n = 5` variables, every
//! vertex of the feasible polytope has at most two non-zero weights, so
//! the exact optimum is found by enumerating single modes and mode pairs —
//! no external solver needed (the paper resorts to Lagrange multipliers;
//! vertex enumeration gives the same optimum exactly).

/// Solve the effort-allocation LP; returns the weight vector `Ω`.
///
/// `energies` is the per-mode cost vector `J`, `errors` the per-mode
/// quality-error vector `ε` (the accurate mode must have error 0), and
/// `budget` the tolerable per-iteration error `E`.
///
/// The accurate mode (last entry, `ε = 0`) guarantees feasibility for
/// every non-negative budget.
///
/// # Panics
/// Panics if the vectors are empty or of different lengths, if any entry
/// is negative or non-finite, or if no mode has zero error while the
/// budget is 0 (infeasible).
///
/// # Example
///
/// ```
/// use approxit::lp::solve_effort_allocation;
///
/// let j = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let eps = [0.8, 0.4, 0.2, 0.1, 0.0];
/// // A generous budget lets the cheapest mode run alone...
/// let w = solve_effort_allocation(&j, &eps, 1.0);
/// assert!((w[0] - 1.0).abs() < 1e-12);
/// // ...a zero budget forces the accurate mode...
/// let w = solve_effort_allocation(&j, &eps, 0.0);
/// assert!((w[4] - 1.0).abs() < 1e-12);
/// // ...and an intermediate budget mixes two adjacent-cost modes.
/// let w = solve_effort_allocation(&j, &eps, 0.3);
/// let cost: f64 = w.iter().zip(&j).map(|(a, b)| a * b).sum();
/// assert!(cost > 1.0 && cost < 5.0);
/// ```
#[must_use]
pub fn solve_effort_allocation(energies: &[f64], errors: &[f64], budget: f64) -> Vec<f64> {
    let n = energies.len();
    assert!(n > 0, "at least one mode is required");
    assert_eq!(n, errors.len(), "one error per mode required");
    for (&j, &e) in energies.iter().zip(errors) {
        assert!(j.is_finite() && j >= 0.0, "energies must be non-negative");
        assert!(e.is_finite() && e >= 0.0, "errors must be non-negative");
    }
    let budget = budget.max(0.0);

    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut consider = |cost: f64, w: Vec<f64>| {
        if best.as_ref().is_none_or(|(c, _)| cost < *c - 1e-15) {
            best = Some((cost, w));
        }
    };

    // Single-mode vertices.
    for i in 0..n {
        if errors[i] <= budget + 1e-15 {
            let mut w = vec![0.0; n];
            w[i] = 1.0;
            consider(energies[i], w);
        }
    }
    // Two-mode vertices where the error budget is tight:
    // ωᵢ εᵢ + (1−ωᵢ) εⱼ = E with ωᵢ ∈ (0, 1).
    for i in 0..n {
        for j in 0..n {
            if i == j || (errors[i] - errors[j]).abs() < 1e-15 {
                continue;
            }
            let wi = (budget - errors[j]) / (errors[i] - errors[j]);
            if !(1e-12..=1.0 - 1e-12).contains(&wi) {
                continue;
            }
            let mut w = vec![0.0; n];
            w[i] = wi;
            w[j] = 1.0 - wi;
            let cost = wi * energies[i] + (1.0 - wi) * energies[j];
            consider(cost, w);
        }
    }

    best.map(|(_, w)| w)
        .expect("infeasible: no mode satisfies the error budget (is the accurate mode's error 0?)")
}

#[cfg(test)]
mod tests {
    use super::*;

    const J: [f64; 5] = [0.55, 0.68, 0.80, 0.90, 1.0];
    const EPS: [f64; 5] = [0.5, 0.2, 0.05, 0.01, 0.0];

    fn cost(w: &[f64]) -> f64 {
        w.iter().zip(&J).map(|(a, b)| a * b).sum()
    }

    fn err(w: &[f64]) -> f64 {
        w.iter().zip(&EPS).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn weights_are_a_distribution() {
        for budget in [0.0, 0.005, 0.03, 0.1, 0.3, 0.7] {
            let w = solve_effort_allocation(&J, &EPS, budget);
            let total: f64 = w.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "budget {budget}: sum {total}");
            assert!(w.iter().all(|&x| x >= 0.0));
            assert!(
                err(&w) <= budget + 1e-9,
                "budget {budget} violated: {}",
                err(&w)
            );
        }
    }

    #[test]
    fn cost_is_monotone_in_budget() {
        let budgets = [0.0, 0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0];
        let costs: Vec<f64> = budgets
            .iter()
            .map(|&b| cost(&solve_effort_allocation(&J, &EPS, b)))
            .collect();
        for pair in costs.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12, "costs {costs:?}");
        }
    }

    #[test]
    fn zero_budget_forces_accurate() {
        let w = solve_effort_allocation(&J, &EPS, 0.0);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huge_budget_frees_cheapest_mode() {
        let w = solve_effort_allocation(&J, &EPS, 10.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_budget_mixes_exactly_two_modes() {
        let w = solve_effort_allocation(&J, &EPS, 0.1);
        let nonzero = w.iter().filter(|&&x| x > 1e-9).count();
        assert!(nonzero <= 2, "weights {w:?}");
        // The budget should be fully used (tight) at the optimum.
        assert!((err(&w) - 0.1).abs() < 1e-9, "slack budget: {}", err(&w));
    }

    #[test]
    fn optimum_beats_any_single_feasible_mode() {
        let budget = 0.08;
        let w = solve_effort_allocation(&J, &EPS, budget);
        let best_single = J
            .iter()
            .zip(&EPS)
            .filter(|(_, &e)| e <= budget)
            .map(|(&j, _)| j)
            .fold(f64::INFINITY, f64::min);
        assert!(cost(&w) <= best_single + 1e-12);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_without_exact_mode_panics() {
        let _ = solve_effort_allocation(&[1.0, 2.0], &[0.5, 0.3], 0.1);
    }

    #[test]
    #[should_panic(expected = "one error per mode")]
    fn mismatched_lengths_panic() {
        let _ = solve_effort_allocation(&[1.0], &[0.1, 0.2], 0.5);
    }
}
