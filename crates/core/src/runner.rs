//! The online reconfiguration controller: drives any
//! [`IterativeMethod`] under a [`ReconfigStrategy`] with full telemetry.

use approx_arith::ArithContext;
use approx_linalg::vector;
use iter_solvers::IterativeMethod;

use crate::report::RunReport;
use crate::strategy::{Decision, IterationObservation, ReconfigStrategy};

/// Result of a run: the final state plus its report.
#[derive(Debug, Clone)]
pub struct RunOutcome<S> {
    /// The final iterate.
    pub state: S,
    /// Telemetry of the run.
    pub report: RunReport,
}

/// Drive `method` to convergence (or `MAX_ITER`) under `strategy` on the
/// datapath `ctx`.
///
/// Control flow per iteration (paper Figure 1's online stage):
///
/// 1. run one step at the current level, metering its energy;
/// 2. compute the exact monitoring quantities (objective, parameters,
///    gradient — all available "for free" alongside the method);
/// 3. check the method's own convergence criterion. A converged iterate
///    is accepted if the final step did not increase the objective *and*
///    the strategy’s [`ReconfigStrategy::convergence_veto`] allows it — the veto is how a
///    reconfiguration strategy rejects being "falsely stopped" at an
///    approximate level (single-mode baselines never veto and stop like
///    raw hardware would). A vetoed or ascending freeze falls through to
///    reconfiguration;
/// 4. otherwise ask the strategy for a decision:
///    * `Keep` — commit the iterate;
///    * `SwitchTo` — commit the iterate and reconfigure;
///    * `RollbackAndSwitch` — discard the iterate, restore `xᵏ⁻¹`, and
///      reconfigure (the function scheme's recovery; the discarded
///      iteration's energy remains charged, as it would be in
///      hardware).
///
/// The context's counters are reset at the start so the report reflects
/// this run only; the context's level is managed by the runner.
///
/// The context is any [`ArithContext`] — the
/// [`approx_arith::QcsContext`] hardware model in normal use, or a
/// decorated one (e.g.
/// [`approx_arith::FaultInjector`]) for failure-injection studies.
pub fn run<M: IterativeMethod, C: ArithContext>(
    method: &M,
    strategy: &mut dyn ReconfigStrategy,
    ctx: &mut C,
) -> RunOutcome<M::State> {
    ctx.reset_counters();
    ctx.set_level(strategy.initial_level());

    let mut state = method.initial_state();
    let mut objective_prev = method.objective(&state);
    let mut params_prev = method.params(&state);
    let mut gradient_prev = method.gradient(&state);
    let initial_gradient_norm = gradient_prev.as_deref().map_or(0.0, vector::norm2_exact);

    let mut steps_per_level = [0usize; 5];
    let mut rollbacks = 0usize;
    let mut energy_per_iteration = Vec::new();
    let mut level_schedule = Vec::new();
    let mut converged = false;
    let mut iterations = 0usize;

    while iterations < method.max_iterations() {
        let level = ctx.level();
        let energy_before = ctx.approx_energy();
        let next = method.step(&state, ctx);
        iterations += 1;
        steps_per_level[level.index()] += 1;
        energy_per_iteration.push(ctx.approx_energy() - energy_before);
        level_schedule.push(level);

        let objective_curr = method.objective(&next);
        let params_curr = method.params(&next);
        let gradient_curr = method.gradient(&next);

        let observation = IterationObservation {
            iteration: iterations,
            level,
            objective_prev,
            objective_curr,
            params_prev: &params_prev,
            params_curr: &params_curr,
            gradient_prev: gradient_prev.as_deref(),
            gradient_curr: gradient_curr.as_deref(),
            initial_gradient_norm,
        };

        let decision = if method.converged(&state, &next) && objective_curr <= objective_prev {
            match strategy.convergence_veto(&observation) {
                None => {
                    state = next;
                    converged = true;
                    break;
                }
                Some(veto) => veto,
            }
        } else {
            strategy.decide(&observation)
        };

        match decision {
            Decision::Keep => {
                state = next;
                objective_prev = objective_curr;
                params_prev = params_curr;
                gradient_prev = gradient_curr;
            }
            Decision::SwitchTo(new_level) => {
                ctx.set_level(new_level);
                state = next;
                objective_prev = objective_curr;
                params_prev = params_curr;
                gradient_prev = gradient_curr;
            }
            Decision::RollbackAndSwitch(new_level) => {
                ctx.set_level(new_level);
                rollbacks += 1;
                // `state`, `objective_prev`, `params_prev`,
                // `gradient_prev` all stay at xᵏ⁻¹.
            }
        }
    }

    let report = RunReport {
        method: method.name().to_owned(),
        strategy: strategy.name().to_owned(),
        iterations,
        converged,
        steps_per_level,
        rollbacks,
        approx_energy: ctx.approx_energy(),
        total_energy: ctx.total_energy(),
        energy_per_iteration,
        level_schedule,
        final_objective: method.objective(&state),
        op_counts: ctx.counts(),
    };
    RunOutcome { state, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveAngleStrategy;
    use crate::characterize::characterize;
    use crate::incremental::IncrementalStrategy;
    use crate::strategy::SingleMode;
    use approx_arith::{AccuracyLevel, EnergyProfile, QcsContext};
    use iter_solvers::datasets::gaussian_blobs;
    use iter_solvers::metrics::hamming_distance;
    use iter_solvers::GaussianMixture;

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    /// Moderately separated clusters: EM needs ~45 iterations, giving
    /// effort scaling room to act while the ground truth stays
    /// recoverable.
    fn data() -> iter_solvers::datasets::ClusterDataset {
        gaussian_blobs(
            "runner",
            &[70, 70, 70],
            &[vec![0.0, 0.0], vec![4.8, 0.8], vec![1.8, 4.4]],
            &[1.1, 1.1, 1.1],
            23,
        )
    }

    #[test]
    fn truth_run_converges_at_accurate() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let outcome = run(&gmm, &mut SingleMode::accurate(), &mut ctx);
        assert!(outcome.report.converged);
        assert_eq!(
            outcome.report.steps_at(AccuracyLevel::Accurate),
            outcome.report.iterations
        );
        assert_eq!(outcome.report.rollbacks, 0);
        // The clusters overlap, so ground-truth labels are not exactly
        // recoverable — but a converged fit must be far better than
        // chance.
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &d.labels, 3);
        assert!(qem < d.points.len() / 4, "truth qem {qem}");
    }

    #[test]
    fn single_mode_level1_is_cheap_and_wrong() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = run(&gmm, &mut SingleMode::accurate(), &mut ctx);
        let l1 = run(&gmm, &mut SingleMode::new(AccuracyLevel::Level1), &mut ctx);
        // Cheap per iteration...
        assert!(l1.report.energy_per_iteration_mean() < truth.report.energy_per_iteration_mean());
        // ...but a degraded clustering.
        let qem = hamming_distance(&gmm.assignments(&l1.state), &d.labels, 3);
        assert!(qem > 0, "level1 accidentally produced a perfect result");
    }

    #[test]
    fn incremental_reaches_truth_quality() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let table = characterize(&gmm, &profile(), 5);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = run(&gmm, &mut SingleMode::accurate(), &mut ctx);
        let truth_labels = gmm.assignments(&truth.state);
        let mut strategy = IncrementalStrategy::from_characterization(&table);
        let outcome = run(&gmm, &mut strategy, &mut ctx);
        assert!(outcome.report.converged, "incremental did not converge");
        // The paper's quality guarantee: reconfiguration matches the
        // Truth run's output (zero Hamming distance against it).
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        assert_eq!(qem, 0, "incremental must match Truth quality");
        // Energy stays in Truth's ballpark on this fast-converging
        // dataset (the savings headline is measured on the full
        // benchmark datasets); it must never blow up like single-mode
        // over-approximation does.
        assert!(
            outcome.report.normalized_energy(&truth.report) < 1.2,
            "energy blow-up: {}",
            outcome.report.normalized_energy(&truth.report)
        );
        // The level schedule must be monotone (incremental never lowers
        // accuracy).
        for w in outcome.report.level_schedule.windows(2) {
            assert!(w[0] <= w[1], "incremental lowered accuracy");
        }
    }

    #[test]
    fn adaptive_reaches_truth_quality() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let table = characterize(&gmm, &profile(), 5);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = run(&gmm, &mut SingleMode::accurate(), &mut ctx);
        let truth_labels = gmm.assignments(&truth.state);
        let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
        let outcome = run(&gmm, &mut strategy, &mut ctx);
        assert!(outcome.report.converged, "adaptive did not converge");
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        assert_eq!(qem, 0, "adaptive must match Truth quality");
        assert!(outcome.report.normalized_energy(&truth.report) < 1.3);
    }

    #[test]
    fn strategies_save_energy_on_slow_workloads() {
        // Heavily overlapping clusters: EM converges slowly, so the
        // cheap mid-run phases dominate and both strategies beat Truth.
        let d = gaussian_blobs(
            "slow",
            &[70, 70, 70],
            &[vec![0.0, 0.0], vec![3.6, 0.6], vec![1.4, 3.2]],
            &[1.2, 1.2, 1.2],
            23,
        );
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let table = characterize(&gmm, &profile(), 5);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = run(&gmm, &mut SingleMode::accurate(), &mut ctx);
        let truth_labels = gmm.assignments(&truth.state);
        for (name, strategy) in [
            (
                "incremental",
                &mut IncrementalStrategy::from_characterization(&table)
                    as &mut dyn crate::strategy::ReconfigStrategy,
            ),
            (
                "adaptive",
                &mut AdaptiveAngleStrategy::from_characterization(&table, 1),
            ),
        ] {
            let outcome = run(&gmm, strategy, &mut ctx);
            assert!(outcome.report.converged, "{name} did not converge");
            let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
            assert_eq!(qem, 0, "{name} must match Truth quality");
            let energy = outcome.report.normalized_energy(&truth.report);
            assert!(energy < 1.0, "{name} saved no energy: {energy}");
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let outcome = run(&gmm, &mut SingleMode::accurate(), &mut ctx);
        let r = &outcome.report;
        assert_eq!(r.total_steps(), r.iterations);
        assert_eq!(r.energy_per_iteration.len(), r.iterations);
        assert_eq!(r.level_schedule.len(), r.iterations);
        let energy_sum: f64 = r.energy_per_iteration.iter().sum();
        assert!((energy_sum - r.approx_energy).abs() < 1e-6 * r.approx_energy);
    }
}
