//! The online reconfiguration controller: drives any
//! [`IterativeMethod`] under a [`ReconfigStrategy`] with full telemetry.

use std::collections::VecDeque;

use approx_arith::{AccuracyLevel, ArithContext};
use approx_linalg::vector;
use iter_solvers::IterativeMethod;

use crate::report::RunReport;
use crate::strategy::{Decision, IterationObservation, ReconfigStrategy};
use crate::watchdog::{RecoveryTelemetry, WatchdogConfig};

/// A committed state snapshot the watchdog can restore after a hard
/// failure.
struct Checkpoint<S> {
    state: S,
    objective: f64,
    params: Vec<f64>,
    gradient: Option<Vec<f64>>,
}

/// Result of a run: the final state plus its report.
#[derive(Debug, Clone)]
pub struct RunOutcome<S> {
    /// The final iterate.
    pub state: S,
    /// Telemetry of the run.
    pub report: RunReport,
}

/// Builder configuring one controller run — the single entry point for
/// driving a method under a reconfiguration strategy.
///
/// # Example
///
/// ```
/// use approxit::{RunConfig, SingleMode, WatchdogConfig};
/// use approx_arith::{EnergyProfile, QcsContext};
/// use iter_solvers::datasets::gaussian_blobs;
/// use iter_solvers::GaussianMixture;
///
/// let data = gaussian_blobs("demo", &[30, 30],
///     &[vec![0.0, 0.0], vec![6.0, 6.0]], &[0.7, 0.7], 1);
/// let gmm = GaussianMixture::from_dataset(&data, 1e-8, 100, 3);
/// let mut ctx = QcsContext::with_profile(EnergyProfile::from_constants(
///     [1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0));
///
/// let outcome = RunConfig::new(&gmm, &mut ctx)
///     .with_watchdog(WatchdogConfig::resilient())
///     .with_checkpoint_every(3)
///     .execute(&mut SingleMode::accurate());
/// assert!(outcome.report.converged);
/// ```
#[derive(Debug)]
pub struct RunConfig<'a, M, C> {
    method: &'a M,
    ctx: &'a mut C,
    watchdog: WatchdogConfig,
}

impl<'a, M: IterativeMethod, C: ArithContext> RunConfig<'a, M, C> {
    /// Configure a run of `method` on the datapath `ctx`, with the
    /// default (guards-only) watchdog.
    #[must_use]
    pub fn new(method: &'a M, ctx: &'a mut C) -> Self {
        Self {
            method,
            ctx,
            watchdog: WatchdogConfig::default(),
        }
    }

    /// Replace the watchdog configuration (see [`crate::watchdog`]).
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Take a recovery checkpoint every `k` committed iterations
    /// (0 disables checkpointing). Adjusts the current watchdog
    /// configuration, so order it after [`with_watchdog`](Self::with_watchdog).
    #[must_use]
    pub fn with_checkpoint_every(mut self, k: usize) -> Self {
        self.watchdog.checkpoint_interval = k;
        self
    }

    /// Stop after at most `iterations`, even if the method's own
    /// `MAX_ITER` is larger — the per-request deadline of the solver
    /// service. Adjusts the current watchdog configuration, so order it
    /// after [`with_watchdog`](Self::with_watchdog).
    #[must_use]
    pub fn with_deadline(mut self, iterations: usize) -> Self {
        self.watchdog.iteration_budget = Some(iterations);
        self
    }

    /// Drive the method to convergence (or `MAX_ITER`) under `strategy`.
    ///
    /// Control flow per iteration (paper Figure 1's online stage):
    ///
    /// 1. run one step at the current level, metering its energy;
    /// 2. compute the exact monitoring quantities (objective, parameters,
    ///    gradient — all available "for free" alongside the method);
    /// 3. check the method's own convergence criterion. A converged iterate
    ///    is accepted if the final step did not increase the objective *and*
    ///    the strategy’s [`ReconfigStrategy::convergence_veto`] allows it — the veto is how a
    ///    reconfiguration strategy rejects being "falsely stopped" at an
    ///    approximate level (single-mode baselines never veto and stop like
    ///    raw hardware would). A vetoed or ascending freeze falls through to
    ///    reconfiguration;
    /// 4. otherwise ask the strategy for a decision:
    ///    * `Keep` — commit the iterate;
    ///    * `SwitchTo` — commit the iterate and reconfigure;
    ///    * `RollbackAndSwitch` — discard the iterate, restore `xᵏ⁻¹`, and
    ///      reconfigure (the function scheme's recovery; the discarded
    ///      iteration's energy remains charged, as it would be in
    ///      hardware).
    ///
    /// The watchdog inspects every candidate iterate *before* the normal
    /// convergence/strategy flow. A hard failure — non-finite or overflowing
    /// objective/parameters, or an objective that rose for the configured
    /// number of consecutive iterations — discards the iterate, restores the
    /// most recent checkpoint if one exists, and counts as a rollback for
    /// the escalation policy. After the configured number of consecutive
    /// rollbacks (from the strategy or the watchdog), the accuracy level is
    /// forced one step toward exact and becomes a floor the strategy cannot
    /// go below. With [`WatchdogConfig::default`] (NaN/Inf guards only), a
    /// fault-free run is bit-identical to an unguarded loop, and discarded
    /// iterations' energy remains charged, as it would be in hardware.
    ///
    /// The context's counters are reset at the start so the report reflects
    /// this run only; the context's level is managed by the runner. The
    /// context is any [`ArithContext`] — the [`approx_arith::QcsContext`]
    /// hardware model in normal use, or a decorated one (e.g.
    /// [`approx_arith::FaultInjector`]) for failure-injection studies.
    pub fn execute(self, strategy: &mut dyn ReconfigStrategy) -> RunOutcome<M::State> {
        run_loop(self.method, strategy, self.ctx, &self.watchdog)
    }
}

/// The controller loop backing [`RunConfig::execute`].
fn run_loop<M: IterativeMethod, C: ArithContext>(
    method: &M,
    strategy: &mut dyn ReconfigStrategy,
    ctx: &mut C,
    watchdog: &WatchdogConfig,
) -> RunOutcome<M::State> {
    ctx.reset_counters();
    ctx.set_level(strategy.initial_level());

    let mut state = method.initial_state();
    let mut objective_prev = method.objective(&state);
    let mut params_prev = method.params(&state);
    let mut gradient_prev = method.gradient(&state);
    let initial_gradient_norm = gradient_prev.as_deref().map_or(0.0, vector::norm2_exact);

    let mut steps_per_level = [0usize; 5];
    let mut rollbacks = 0usize;
    let mut energy_per_iteration = Vec::new();
    let mut level_schedule = Vec::new();
    let mut converged = false;
    let mut iterations = 0usize;

    let mut recovery = RecoveryTelemetry::default();
    let mut checkpoints: VecDeque<Checkpoint<M::State>> = VecDeque::new();
    let mut rising_streak = 0usize;
    let mut consecutive_rollbacks = 0usize;
    let mut committed_since_checkpoint = 0usize;
    // Escalation ratchet: the strategy may not select a level below this.
    let mut level_floor = 0usize;

    let clamp_to_floor = |level: AccuracyLevel, floor: usize| -> AccuracyLevel {
        if level.index() < floor {
            // The floor only ever ratchets along the ladder; fail safe
            // to the dependable mode rather than aborting a request.
            AccuracyLevel::from_index(floor).unwrap_or(AccuracyLevel::Accurate)
        } else {
            level
        }
    };

    // The effective iteration budget: the method's own MAX_ITER, capped
    // by the watchdog's deadline when one is set.
    let budget = watchdog
        .iteration_budget
        .map_or(method.max_iterations(), |b| b.min(method.max_iterations()));

    while iterations < budget {
        let level = ctx.level();
        let energy_before = ctx.approx_energy();
        // The controller *measures* the approximate iterate to decide
        // its fate — this is the one sanctioned exact/approx crossing
        // in the runner, made explicit for the taint audit.
        let next = crate::quality::endorse(method.step(&state, ctx));
        iterations += 1;
        steps_per_level[level.index()] += 1;
        energy_per_iteration.push(ctx.approx_energy() - energy_before);
        level_schedule.push(level);

        let objective_curr = method.objective(&next);
        let params_curr = method.params(&next);

        // --- Watchdog: guards and divergence detection -----------------
        let non_finite = watchdog.guard_non_finite
            && (!objective_curr.is_finite() || params_curr.iter().any(|p| !p.is_finite()));
        let overflow = !non_finite
            && watchdog.overflow_threshold.is_some_and(|bound| {
                objective_curr.abs() > bound || params_curr.iter().any(|p| p.abs() > bound)
            });
        let mut diverging = false;
        if let Some(window) = watchdog.divergence_window {
            if !non_finite && !overflow {
                if objective_curr > objective_prev {
                    rising_streak += 1;
                } else {
                    rising_streak = 0;
                }
                diverging = rising_streak >= window;
            }
        }

        if non_finite || overflow || diverging {
            if diverging {
                recovery.divergence_trips += 1;
            } else {
                recovery.guard_trips += 1;
            }
            rising_streak = 0;
            // Hard failure: discard the iterate. Restore the most recent
            // checkpoint when one exists; otherwise xᵏ⁻¹ stands.
            if let Some(cp) = checkpoints.pop_back() {
                state = cp.state;
                objective_prev = cp.objective;
                params_prev = cp.params;
                gradient_prev = cp.gradient;
                recovery.restores += 1;
            }
            rollbacks += 1;
            consecutive_rollbacks += 1;
            if watchdog
                .escalation_threshold
                .is_some_and(|r| consecutive_rollbacks >= r)
            {
                if let Some(higher) = ctx.level().next_higher() {
                    level_floor = level_floor.max(higher.index());
                    ctx.set_level(higher);
                    recovery.escalations += 1;
                }
                consecutive_rollbacks = 0;
            }
            continue;
        }

        let gradient_curr = method.gradient(&next);

        let observation = IterationObservation {
            iteration: iterations,
            level,
            objective_prev,
            objective_curr,
            params_prev: &params_prev,
            params_curr: &params_curr,
            gradient_prev: gradient_prev.as_deref(),
            gradient_curr: gradient_curr.as_deref(),
            initial_gradient_norm,
        };

        let decision = if method.converged(&state, &next) && objective_curr <= objective_prev {
            match strategy.convergence_veto(&observation) {
                None => {
                    state = next;
                    converged = true;
                    break;
                }
                Some(veto) => veto,
            }
        } else {
            strategy.decide(&observation)
        };

        let mut committed = false;
        match decision {
            Decision::Keep => {
                state = next;
                objective_prev = objective_curr;
                params_prev = params_curr;
                gradient_prev = gradient_curr;
                committed = true;
            }
            Decision::SwitchTo(new_level) => {
                ctx.set_level(clamp_to_floor(new_level, level_floor));
                state = next;
                objective_prev = objective_curr;
                params_prev = params_curr;
                gradient_prev = gradient_curr;
                committed = true;
            }
            Decision::RollbackAndSwitch(new_level) => {
                ctx.set_level(clamp_to_floor(new_level, level_floor));
                rollbacks += 1;
                consecutive_rollbacks += 1;
                if watchdog
                    .escalation_threshold
                    .is_some_and(|r| consecutive_rollbacks >= r)
                {
                    if let Some(higher) = ctx.level().next_higher() {
                        level_floor = level_floor.max(higher.index());
                        ctx.set_level(higher);
                        recovery.escalations += 1;
                    }
                    consecutive_rollbacks = 0;
                }
                // `state`, `objective_prev`, `params_prev`,
                // `gradient_prev` all stay at xᵏ⁻¹.
            }
        }

        if committed {
            consecutive_rollbacks = 0;
            committed_since_checkpoint += 1;
            if watchdog.checkpoint_interval > 0
                && watchdog.checkpoint_capacity > 0
                && committed_since_checkpoint >= watchdog.checkpoint_interval
            {
                if checkpoints.len() >= watchdog.checkpoint_capacity {
                    checkpoints.pop_front();
                    recovery.checkpoints_evicted += 1;
                }
                checkpoints.push_back(Checkpoint {
                    state: state.clone(),
                    objective: objective_prev,
                    params: params_prev.clone(),
                    gradient: gradient_prev.clone(),
                });
                recovery.checkpoints_taken += 1;
                committed_since_checkpoint = 0;
            }
        }
    }

    let report = RunReport {
        method: method.name().to_owned(),
        strategy: strategy.name().to_owned(),
        iterations,
        converged,
        steps_per_level,
        rollbacks,
        approx_energy: ctx.approx_energy(),
        total_energy: ctx.total_energy(),
        energy_per_iteration,
        level_schedule,
        final_objective: method.objective(&state),
        op_counts: ctx.counts(),
        attempts: 1,
        outcome: crate::report::Outcome::classify_run(converged, &recovery),
        recovery,
        range_proof: None,
    };
    RunOutcome { state, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveAngleStrategy;
    use crate::characterize::characterize;
    use crate::incremental::IncrementalStrategy;
    use crate::strategy::SingleMode;
    use approx_arith::{AccuracyLevel, EnergyProfile, QcsContext};
    use iter_solvers::datasets::gaussian_blobs;
    use iter_solvers::metrics::hamming_distance;
    use iter_solvers::GaussianMixture;

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    /// Moderately separated clusters: EM needs ~45 iterations, giving
    /// effort scaling room to act while the ground truth stays
    /// recoverable.
    fn data() -> iter_solvers::datasets::ClusterDataset {
        gaussian_blobs(
            "runner",
            &[70, 70, 70],
            &[vec![0.0, 0.0], vec![4.8, 0.8], vec![1.8, 4.4]],
            &[1.1, 1.1, 1.1],
            23,
        )
    }

    #[test]
    fn truth_run_converges_at_accurate() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        assert!(outcome.report.converged);
        assert_eq!(
            outcome.report.steps_at(AccuracyLevel::Accurate),
            outcome.report.iterations
        );
        assert_eq!(outcome.report.rollbacks, 0);
        // The clusters overlap, so ground-truth labels are not exactly
        // recoverable — but a converged fit must be far better than
        // chance.
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &d.labels, 3);
        assert!(qem < d.points.len() / 4, "truth qem {qem}");
    }

    #[test]
    fn single_mode_level1_is_cheap_and_wrong() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        let l1 =
            RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::new(AccuracyLevel::Level1));
        // Cheap per iteration...
        assert!(l1.report.energy_per_iteration_mean() < truth.report.energy_per_iteration_mean());
        // ...but a degraded clustering.
        let qem = hamming_distance(&gmm.assignments(&l1.state), &d.labels, 3);
        assert!(qem > 0, "level1 accidentally produced a perfect result");
    }

    #[test]
    fn incremental_reaches_truth_quality() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let table = characterize(&gmm, &profile(), 5);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        let truth_labels = gmm.assignments(&truth.state);
        let mut strategy = IncrementalStrategy::from_characterization(&table);
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut strategy);
        assert!(outcome.report.converged, "incremental did not converge");
        // The paper's quality guarantee: reconfiguration matches the
        // Truth run's output (zero Hamming distance against it).
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        assert_eq!(qem, 0, "incremental must match Truth quality");
        // Energy stays in Truth's ballpark on this fast-converging
        // dataset (the savings headline is measured on the full
        // benchmark datasets); it must never blow up like single-mode
        // over-approximation does.
        assert!(
            outcome.report.normalized_energy(&truth.report) < 1.2,
            "energy blow-up: {}",
            outcome.report.normalized_energy(&truth.report)
        );
        // The level schedule must be monotone (incremental never lowers
        // accuracy).
        for w in outcome.report.level_schedule.windows(2) {
            assert!(w[0] <= w[1], "incremental lowered accuracy");
        }
    }

    #[test]
    fn adaptive_reaches_truth_quality() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let table = characterize(&gmm, &profile(), 5);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        let truth_labels = gmm.assignments(&truth.state);
        let mut strategy = AdaptiveAngleStrategy::from_characterization(&table, 1);
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut strategy);
        assert!(outcome.report.converged, "adaptive did not converge");
        let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
        assert_eq!(qem, 0, "adaptive must match Truth quality");
        assert!(outcome.report.normalized_energy(&truth.report) < 1.3);
    }

    #[test]
    fn strategies_save_energy_on_slow_workloads() {
        // Heavily overlapping clusters: EM converges slowly, so the
        // cheap mid-run phases dominate and both strategies beat Truth.
        let d = gaussian_blobs(
            "slow",
            &[70, 70, 70],
            &[vec![0.0, 0.0], vec![3.6, 0.6], vec![1.4, 3.2]],
            &[1.2, 1.2, 1.2],
            23,
        );
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let table = characterize(&gmm, &profile(), 5);
        let mut ctx = QcsContext::with_profile(profile());
        let truth = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        let truth_labels = gmm.assignments(&truth.state);
        for (name, strategy) in [
            (
                "incremental",
                &mut IncrementalStrategy::from_characterization(&table)
                    as &mut dyn crate::strategy::ReconfigStrategy,
            ),
            (
                "adaptive",
                &mut AdaptiveAngleStrategy::from_characterization(&table, 1),
            ),
        ] {
            let outcome = RunConfig::new(&gmm, &mut ctx).execute(strategy);
            assert!(outcome.report.converged, "{name} did not converge");
            let qem = hamming_distance(&gmm.assignments(&outcome.state), &truth_labels, 3);
            assert_eq!(qem, 0, "{name} must match Truth quality");
            let energy = outcome.report.normalized_energy(&truth.report);
            assert!(energy < 1.0, "{name} saved no energy: {energy}");
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let outcome = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        let r = &outcome.report;
        assert_eq!(r.total_steps(), r.iterations);
        assert_eq!(r.energy_per_iteration.len(), r.iterations);
        assert_eq!(r.level_schedule.len(), r.iterations);
        let energy_sum: f64 = r.energy_per_iteration.iter().sum();
        assert!((energy_sum - r.approx_energy).abs() < 1e-6 * r.approx_energy);
    }

    #[test]
    fn clean_runs_are_identical_with_and_without_the_watchdog() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let plain = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        let guarded = RunConfig::new(&gmm, &mut ctx)
            .with_watchdog(WatchdogConfig::resilient())
            .execute(&mut SingleMode::accurate());
        // Same trajectory: the watchdog only takes checkpoints.
        assert_eq!(plain.report.iterations, guarded.report.iterations);
        assert_eq!(plain.report.level_schedule, guarded.report.level_schedule);
        assert_eq!(plain.report.final_objective, guarded.report.final_objective);
        assert_eq!(plain.report.rollbacks, guarded.report.rollbacks);
        assert!(!plain.report.recovery.any());
        assert!(guarded.report.recovery.checkpoints_taken > 0);
        assert_eq!(guarded.report.recovery.guard_trips, 0);
        assert_eq!(guarded.report.recovery.restores, 0);
        assert_eq!(guarded.report.recovery.escalations, 0);
    }

    /// A deliberately sabotaged method: descends cleanly for a while,
    /// then every step at an approximate level corrupts the state so the
    /// objective explodes — only the watchdog can recover it.
    struct Sabotaged {
        explode_after: usize,
        max_iterations: usize,
    }

    impl iter_solvers::IterativeMethod for Sabotaged {
        type State = (usize, f64);

        fn name(&self) -> &str {
            "sabotaged"
        }

        fn initial_state(&self) -> Self::State {
            (0, 100.0)
        }

        fn step(
            &self,
            state: &Self::State,
            ctx: &mut dyn approx_arith::ArithContext,
        ) -> Self::State {
            let (k, x) = *state;
            let accurate = ctx.level().is_accurate();
            let next = ctx.mul(x, 0.5);
            if k + 1 > self.explode_after && !accurate {
                // Fault-like corruption: the iterate leaves the basin.
                (k + 1, f64::NAN)
            } else {
                (k + 1, next)
            }
        }

        fn objective(&self, state: &Self::State) -> f64 {
            state.1.abs()
        }

        fn params(&self, state: &Self::State) -> Vec<f64> {
            vec![state.1]
        }

        fn converged(&self, prev: &Self::State, next: &Self::State) -> bool {
            (prev.1 - next.1).abs() < 1e-6 && next.1.is_finite()
        }

        fn max_iterations(&self) -> usize {
            self.max_iterations
        }
    }

    #[test]
    fn watchdog_restores_checkpoints_and_escalates_out_of_a_hard_failure() {
        let method = Sabotaged {
            explode_after: 12,
            max_iterations: 200,
        };
        let mut ctx = QcsContext::with_profile(profile());
        let config = WatchdogConfig {
            checkpoint_interval: 2,
            escalation_threshold: Some(2),
            ..WatchdogConfig::resilient()
        };
        let outcome = RunConfig::new(&method, &mut ctx)
            .with_watchdog(config)
            .execute(&mut SingleMode::new(AccuracyLevel::Level2));
        let r = &outcome.report.recovery;
        assert!(r.guard_trips > 0, "NaN guard never fired");
        assert!(r.checkpoints_taken > 0, "no checkpoints were taken");
        assert!(r.restores > 0, "hard failure did not restore");
        assert!(r.escalations > 0, "escalation never fired");
        // Escalation ratchets to Accurate, where steps are clean again —
        // the run must converge to the true fixed point.
        assert!(outcome.report.converged, "watchdog failed to rescue");
        assert!(outcome.state.1.is_finite());
        assert!(outcome.report.final_objective < 1e-3);
        // Recovery shows up in the committed level schedule too.
        assert!(outcome
            .report
            .level_schedule
            .iter()
            .any(|l| l.is_accurate()));
    }

    #[test]
    fn deadline_caps_iterations_and_classifies_failed() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let full = RunConfig::new(&gmm, &mut ctx).execute(&mut SingleMode::accurate());
        assert!(full.report.iterations > 5, "workload too easy for the test");
        let cut = RunConfig::new(&gmm, &mut ctx)
            .with_deadline(5)
            .execute(&mut SingleMode::accurate());
        assert_eq!(cut.report.iterations, 5);
        assert!(!cut.report.converged);
        assert_eq!(cut.report.outcome, crate::report::Outcome::Failed);
        // A deadline beyond MAX_ITER defers to the method.
        let slack = RunConfig::new(&gmm, &mut ctx)
            .with_deadline(10_000)
            .execute(&mut SingleMode::accurate());
        assert_eq!(slack.report.iterations, full.report.iterations);
        assert_eq!(slack.report.outcome, crate::report::Outcome::Completed);
        assert_eq!(slack.report.attempts, 1);
    }

    #[test]
    fn checkpoint_ring_is_bounded_and_counts_evictions() {
        let d = data();
        let gmm = GaussianMixture::from_dataset(&d, 1e-7, 500, 7);
        let mut ctx = QcsContext::with_profile(profile());
        let config = WatchdogConfig {
            checkpoint_interval: 1,
            checkpoint_capacity: 2,
            ..WatchdogConfig::resilient()
        };
        let outcome = RunConfig::new(&gmm, &mut ctx)
            .with_watchdog(config)
            .execute(&mut SingleMode::accurate());
        let r = &outcome.report.recovery;
        assert!(outcome.report.converged);
        assert!(
            r.checkpoints_taken > 2,
            "need enough iterations to fill the ring"
        );
        // Every checkpoint beyond the capacity evicted the oldest: the
        // live ring never held more than 2 entries.
        assert_eq!(r.checkpoints_evicted, r.checkpoints_taken - 2);
        // Eviction is routine bookkeeping, not degradation.
        assert_eq!(outcome.report.outcome, crate::report::Outcome::Completed);
    }

    #[test]
    fn without_watchdog_the_sabotaged_run_never_converges() {
        let method = Sabotaged {
            explode_after: 12,
            max_iterations: 60,
        };
        let mut ctx = QcsContext::with_profile(profile());
        let outcome = RunConfig::new(&method, &mut ctx)
            .with_watchdog(WatchdogConfig {
                guard_non_finite: false,
                ..WatchdogConfig::default()
            })
            .execute(&mut SingleMode::new(AccuracyLevel::Level2));
        assert!(!outcome.report.converged);
        assert!(!outcome.state.1.is_finite());
    }

    #[test]
    fn divergence_window_trips_on_a_rising_objective() {
        /// Objective rises forever at approximate levels, falls at
        /// Accurate.
        struct Riser;
        impl iter_solvers::IterativeMethod for Riser {
            type State = f64;
            fn name(&self) -> &str {
                "riser"
            }
            fn initial_state(&self) -> f64 {
                1.0
            }
            fn step(&self, state: &f64, ctx: &mut dyn approx_arith::ArithContext) -> f64 {
                if ctx.level().is_accurate() {
                    ctx.mul(*state, 0.5)
                } else {
                    ctx.mul(*state, 1.5)
                }
            }
            fn objective(&self, state: &f64) -> f64 {
                state.abs()
            }
            fn params(&self, state: &f64) -> Vec<f64> {
                vec![*state]
            }
            fn converged(&self, prev: &f64, next: &f64) -> bool {
                (prev - next).abs() < 1e-9
            }
            fn max_iterations(&self) -> usize {
                300
            }
        }
        let mut ctx = QcsContext::with_profile(profile());
        let config = WatchdogConfig {
            divergence_window: Some(4),
            escalation_threshold: Some(1),
            ..WatchdogConfig::resilient()
        };
        let outcome = RunConfig::new(&Riser, &mut ctx)
            .with_watchdog(config)
            .execute(&mut SingleMode::new(AccuracyLevel::Level1));
        let r = &outcome.report.recovery;
        assert!(r.divergence_trips > 0, "divergence detector never fired");
        assert!(r.escalations > 0);
        assert!(outcome.report.converged, "escalation failed to rescue");
    }
}
