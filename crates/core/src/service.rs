//! The resilient solver service: deterministic multi-request execution
//! with deadlines, retry-with-escalation, load shedding, and per-level
//! circuit breakers.
//!
//! The [`RunConfig`] controller protects *one* solve; a deployed system
//! serves many independent solves under failure modes no single-run
//! watchdog can absorb: a request whose deadline is blown, an instance
//! that diverges at every approximate level, a faulty level poisoning
//! every solve routed through it, or an arrival burst that would grow
//! the queue without bound. [`SolverService`] wraps each admitted
//! request in a *robustness envelope* with four layers:
//!
//! 1. **Deadlines** — every attempt runs under the watchdog's
//!    [`iteration_budget`](WatchdogConfig::iteration_budget), resolved
//!    from the request's own deadline, the service default, or the
//!    method's [`deadline_hint`](IterativeMethod::deadline_hint).
//! 2. **Retry with escalation** — a failed or timed-out attempt is
//!    re-enqueued at a higher accuracy level (the escalation step
//!    doubles per attempt: +1, +2, +4 … levels, capped at `Accurate`)
//!    after an exponentially growing backoff in scheduling rounds, up
//!    to a bounded attempt count.
//! 3. **Load shedding** — the admission queue is bounded; a submission
//!    beyond [`queue_capacity`](ServiceConfig::queue_capacity) is
//!    rejected *with telemetry* ([`Outcome::Shed`]) rather than queued
//!    indefinitely. Reject-newest keeps admission deterministic and
//!    favors requests already waiting. Retries never re-enter
//!    admission, so in-flight work cannot be shed.
//! 4. **Per-level circuit breakers** — consecutive failures at an
//!    approximate level trip a breaker that quarantines the level;
//!    subsequent requests are routed around it (toward exact) until a
//!    cooldown expires and a single *probe* request is let through. A
//!    clean probe heals the level; a failed probe re-trips it. Breaker
//!    state and the scheduling-round clock persist across
//!    [`run`](SolverService::run) calls, so a level quarantined by one
//!    drain's traffic stays quarantined for the next drain until a
//!    probe clears it.
//!
//! # Determinism
//!
//! The service inherits the [`Executor`] determinism contract: requests
//! are *indexed* work, every attempt derives its RNG stream from
//! [`request_seed`]`(base, id, attempt)`, and all control-flow decisions
//! (admission, routing, breaker updates, retry scheduling) happen
//! serially in request-id order between parallel rounds. A campaign
//! replayed with the same seed is bit-identical — outcomes, telemetry,
//! final states — for **any** thread count; `with_threads(1)` is the
//! executable reference.
//!
//! # Example
//!
//! ```
//! use approxit::prelude::*;
//! use approxit::service::{Request, ServiceConfig, SolverService};
//! use parx::Executor;
//! use approx_linalg::Matrix;
//! use iter_solvers::ConjugateGradient;
//!
//! let mut service = SolverService::new(ServiceConfig::default());
//! for scale in 1..=3 {
//!     let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//!     let b = vec![1.0 * f64::from(scale), 2.0];
//!     let cg = ConjugateGradient::new(a, b, 1e-8, 50);
//!     service.submit(Request::new(cg).at_level(AccuracyLevel::Level3));
//! }
//! let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
//! let report = service.run(&Executor::with_threads(2), |spec| {
//!     let mut ctx = QcsContext::with_profile(profile.clone());
//!     ctx.set_level(spec.level);
//!     ctx
//! });
//! assert_eq!(report.requests.len(), 3);
//! assert!(report.counts().all_succeeded());
//! ```

use std::collections::VecDeque;

use approx_arith::{AccuracyLevel, ArithContext};
use iter_solvers::IterativeMethod;
use parx::{request_seed, Executor};

use crate::report::{Outcome, RunReport};
use crate::runner::RunConfig;
use crate::strategy::{ReconfigStrategy, SingleMode};
use crate::watchdog::WatchdogConfig;

/// Circuit-breaker policy for the approximate levels (the accurate
/// level is never quarantined — it is the routing target of last
/// resort).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures at a level that trip its breaker
    /// (0 disables the breakers entirely).
    pub failure_threshold: usize,
    /// Scheduling rounds a tripped level stays quarantined before one
    /// probe request is allowed through.
    pub cooldown_rounds: usize,
}

impl Default for BreakerConfig {
    /// Trip after 3 consecutive failures, probe after 2 quiet rounds.
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_rounds: 2,
        }
    }
}

/// Configuration of the [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission-queue bound: a submission arriving while this many
    /// requests are already waiting is shed (reject-newest).
    pub queue_capacity: usize,
    /// Maximum attempts per request (first run + retries).
    pub max_attempts: usize,
    /// Default per-attempt iteration deadline for requests that carry
    /// none of their own (the method's
    /// [`deadline_hint`](IterativeMethod::deadline_hint) still takes
    /// precedence over `None` here).
    pub default_deadline: Option<usize>,
    /// Default quality floor: a converged attempt whose exact final
    /// objective exceeds this bound counts as a failure (per-request
    /// floors override it).
    pub quality_floor: Option<f64>,
    /// Watchdog template every attempt runs under (its
    /// `iteration_budget` is overridden by the resolved deadline).
    pub watchdog: WatchdogConfig,
    /// Circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Base seed of the campaign; every attempt derives its stream via
    /// [`request_seed`].
    pub base_seed: u64,
}

impl Default for ServiceConfig {
    /// A resilient default: 64-deep queue, 3 attempts, resilient
    /// watchdog, default breakers.
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_attempts: 3,
            default_deadline: None,
            quality_floor: None,
            watchdog: WatchdogConfig::resilient(),
            breaker: BreakerConfig::default(),
            base_seed: 0x5EED,
        }
    }
}

/// One solve submitted to the service.
#[derive(Debug, Clone)]
pub struct Request<M> {
    method: M,
    level: AccuracyLevel,
    deadline: Option<usize>,
    quality_floor: Option<f64>,
}

impl<M: IterativeMethod> Request<M> {
    /// A request starting at the cheapest level (the escalation ladder
    /// climbs from there on failure).
    #[must_use]
    pub fn new(method: M) -> Self {
        Self {
            method,
            level: AccuracyLevel::Level1,
            deadline: None,
            quality_floor: None,
        }
    }

    /// Start at an explicit accuracy level.
    #[must_use]
    pub fn at_level(mut self, level: AccuracyLevel) -> Self {
        self.level = level;
        self
    }

    /// Per-attempt iteration deadline for this request.
    #[must_use]
    pub fn with_deadline(mut self, iterations: usize) -> Self {
        self.deadline = Some(iterations);
        self
    }

    /// Quality floor for this request: a converged attempt with a final
    /// objective above `bound` counts as a failure and is retried.
    #[must_use]
    pub fn with_quality_floor(mut self, bound: f64) -> Self {
        self.quality_floor = Some(bound);
        self
    }
}

/// Admission verdict for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// Queued for execution under the returned request id.
    Accepted {
        /// The id the service assigned to this request.
        id: u64,
    },
    /// Rejected by the load shedder; the id still appears in the next
    /// [`ServiceReport`] with [`Outcome::Shed`] — no submission is lost.
    Shed {
        /// The id the service assigned to this request.
        id: u64,
    },
}

impl Submission {
    /// The request id assigned to this submission.
    #[must_use]
    pub fn id(&self) -> u64 {
        match *self {
            Submission::Accepted { id } | Submission::Shed { id } => id,
        }
    }

    /// Whether the submission was admitted to the queue.
    #[must_use]
    pub fn accepted(&self) -> bool {
        matches!(self, Submission::Accepted { .. })
    }
}

/// Everything an attempt's context/strategy factories may condition on.
///
/// Factories must be pure functions of this spec (plus campaign-level
/// constants) — that is what keeps the service deterministic across
/// thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptSpec {
    /// Id of the request this attempt serves.
    pub request_id: u64,
    /// 1-based attempt number.
    pub attempt: usize,
    /// Effective accuracy level (after escalation and breaker routing).
    pub level: AccuracyLevel,
    /// Deterministic seed for this attempt
    /// ([`request_seed`]`(base, id, attempt)`).
    pub seed: u64,
    /// Resolved per-attempt iteration deadline, if any.
    pub deadline: Option<usize>,
    /// Whether this attempt probes a quarantined level.
    pub probe: bool,
}

/// Telemetry of one submission, shed or executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTelemetry {
    /// The id assigned at submission.
    pub id: u64,
    /// The level the request asked for.
    pub requested_level: AccuracyLevel,
    /// Final outcome classification.
    pub outcome: Outcome,
    /// Attempts executed (0 for shed requests).
    pub attempts: usize,
    /// Level of the final attempt (`None` for shed requests).
    pub final_level: Option<AccuracyLevel>,
    /// Attempts the breaker routed off their scheduled level.
    pub reroutes: usize,
    /// The final attempt's full run report (`None` for shed requests).
    /// Its `attempts`/`outcome` fields are stamped with the
    /// request-level verdict, so service and single-run telemetry share
    /// one schema.
    pub report: Option<RunReport>,
}

/// Telemetry plus the final state of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestResult<S> {
    /// The request's telemetry.
    pub telemetry: RequestTelemetry,
    /// Final iterate of the last attempt (`None` for shed requests).
    pub state: Option<S>,
}

/// Aggregate circuit-breaker telemetry, cumulative since the service
/// was created (breaker state persists across drains).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerTelemetry {
    /// Breakers tripped (including probe failures re-tripping).
    pub trips: usize,
    /// Attempts routed around a quarantined level.
    pub reroutes: usize,
    /// Probe attempts dispatched into quarantined levels.
    pub probes: usize,
    /// Levels healed by a clean probe.
    pub heals: usize,
}

impl std::fmt::Display for BreakerTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trips {}, reroutes {}, probes {}, heals {}",
            self.trips, self.reroutes, self.probes, self.heals
        )
    }
}

/// Outcome histogram of a [`ServiceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Requests that completed without intervention.
    pub completed: usize,
    /// Requests that succeeded after intervention.
    pub degraded: usize,
    /// Submissions rejected at admission.
    pub shed: usize,
    /// Requests that exhausted their attempt budget.
    pub failed: usize,
}

impl OutcomeCounts {
    /// Total submissions accounted for.
    #[must_use]
    pub fn total(&self) -> usize {
        self.completed + self.degraded + self.shed + self.failed
    }

    /// Whether every executed request succeeded (shed requests never
    /// executed, so they do not count against this).
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        self.failed == 0
    }
}

/// The result of draining the service queue: one entry per submission
/// (in id order), plus breaker and scheduling telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport<S> {
    /// Per-request results, sorted by request id.
    pub requests: Vec<RequestResult<S>>,
    /// Cumulative circuit-breaker activity (all drains so far).
    pub breaker: BreakerTelemetry,
    /// Scheduling rounds this drain took.
    pub rounds: usize,
}

impl<S> ServiceReport<S> {
    /// Outcome histogram.
    #[must_use]
    pub fn counts(&self) -> OutcomeCounts {
        let mut c = OutcomeCounts::default();
        for r in &self.requests {
            match r.telemetry.outcome {
                Outcome::Completed => c.completed += 1,
                Outcome::Degraded => c.degraded += 1,
                Outcome::Shed => c.shed += 1,
                Outcome::Failed => c.failed += 1,
            }
        }
        c
    }

    /// The *no-request-lost* invariant: exactly `submitted` results,
    /// one per id, each with a terminal outcome (shed entries carry no
    /// report, executed entries carry one).
    #[must_use]
    pub fn accounts_for(&self, submitted: &[u64]) -> bool {
        if self.requests.len() != submitted.len() {
            return false;
        }
        self.requests.iter().zip(submitted).all(|(r, &id)| {
            r.telemetry.id == id
                && (r.telemetry.outcome == Outcome::Shed) == r.telemetry.report.is_none()
        })
    }

    /// Total energy metered across all executed attempts' final runs.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.requests
            .iter()
            .filter_map(|r| r.telemetry.report.as_ref())
            .map(|rep| rep.total_energy)
            .sum()
    }

    /// The report as a self-contained JSON object (hand-emitted; the
    /// workspace builds offline with no serialization dependency).
    /// Per-request entries carry summary fields, not the full
    /// per-iteration traces.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_owned()
            }
        }
        let counts = self.counts();
        let entries = self
            .requests
            .iter()
            .map(|r| {
                let t = &r.telemetry;
                let (converged, iterations, objective, energy, recovery) = match &t.report {
                    Some(rep) => (
                        rep.converged.to_string(),
                        rep.iterations.to_string(),
                        num(rep.final_objective),
                        num(rep.total_energy),
                        format!(
                            "{{\"guard_trips\":{},\"divergence_trips\":{},\
                             \"checkpoints_taken\":{},\"checkpoints_evicted\":{},\
                             \"restores\":{},\"escalations\":{}}}",
                            rep.recovery.guard_trips,
                            rep.recovery.divergence_trips,
                            rep.recovery.checkpoints_taken,
                            rep.recovery.checkpoints_evicted,
                            rep.recovery.restores,
                            rep.recovery.escalations,
                        ),
                    ),
                    None => (
                        "null".to_owned(),
                        "null".to_owned(),
                        "null".to_owned(),
                        "null".to_owned(),
                        "null".to_owned(),
                    ),
                };
                format!(
                    "{{\"id\":{},\"outcome\":\"{}\",\"attempts\":{},\
                     \"requested_level\":\"{}\",\"final_level\":{},\
                     \"reroutes\":{},\"converged\":{converged},\
                     \"iterations\":{iterations},\"final_objective\":{objective},\
                     \"total_energy\":{energy},\"recovery\":{recovery}}}",
                    t.id,
                    t.outcome,
                    t.attempts,
                    t.requested_level,
                    t.final_level
                        .map_or("null".to_owned(), |l| format!("\"{l}\"")),
                    t.reroutes,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"submitted\":{},\"completed\":{},\"degraded\":{},\
             \"shed\":{},\"failed\":{},\"rounds\":{},\
             \"breaker\":{{\"trips\":{},\"reroutes\":{},\"probes\":{},\
             \"heals\":{}}},\"total_energy\":{},\"requests\":[{}]}}",
            counts.total(),
            counts.completed,
            counts.degraded,
            counts.shed,
            counts.failed,
            self.rounds,
            self.breaker.trips,
            self.breaker.reroutes,
            self.breaker.probes,
            self.breaker.heals,
            num(self.total_energy()),
            entries,
        )
    }
}

/// Per-level breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: usize },
    /// Quarantined since the given round; requests are routed around.
    Open { since_round: usize },
    /// A probe is in flight; everyone else is still routed around.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct CircuitBreakers {
    config: BreakerConfig,
    states: [BreakerState; 5],
    telemetry: BreakerTelemetry,
}

impl CircuitBreakers {
    fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            states: [BreakerState::Closed { failures: 0 }; 5],
            telemetry: BreakerTelemetry::default(),
        }
    }

    /// Resolve the level an attempt scheduled at `level` actually runs
    /// at this `round`: the first non-quarantined level at or above it.
    /// May dispatch a probe (returned flag) into a cooled-down level.
    fn route(&mut self, level: AccuracyLevel, round: usize) -> (AccuracyLevel, bool) {
        if self.config.failure_threshold == 0 {
            return (level, false);
        }
        // Walk the approximate rungs at or above `level`; falling off
        // the ladder lands on `Accurate` structurally, so this routine
        // is panic-free by construction (request-path requirement).
        let start = level.index().min(AccuracyLevel::APPROXIMATE.len());
        for &candidate in &AccuracyLevel::APPROXIMATE[start..] {
            let index = candidate.index();
            match self.states[index] {
                BreakerState::Closed { .. } => {
                    if index != level.index() {
                        self.telemetry.reroutes += 1;
                    }
                    return (candidate, false);
                }
                BreakerState::Open { since_round }
                    if round >= since_round + self.config.cooldown_rounds =>
                {
                    self.states[index] = BreakerState::HalfOpen;
                    self.telemetry.probes += 1;
                    if index != level.index() {
                        self.telemetry.reroutes += 1;
                    }
                    return (candidate, true);
                }
                // Still cooling down, or a probe already in flight:
                // keep climbing.
                BreakerState::Open { .. } | BreakerState::HalfOpen => {}
            }
        }
        // The dependable mode: always available.
        if !level.is_accurate() {
            self.telemetry.reroutes += 1;
        }
        (AccuracyLevel::Accurate, false)
    }

    /// Feed one attempt's verdict back into the level's breaker.
    fn record(&mut self, level: AccuracyLevel, round: usize, success: bool, probe: bool) {
        if self.config.failure_threshold == 0 || level.is_accurate() {
            return;
        }
        let index = level.index();
        if success {
            if probe || self.states[index] == BreakerState::HalfOpen {
                self.telemetry.heals += 1;
            }
            self.states[index] = BreakerState::Closed { failures: 0 };
        } else if probe || self.states[index] == BreakerState::HalfOpen {
            // Failed probe: back to quarantine, cooldown restarts.
            self.states[index] = BreakerState::Open { since_round: round };
            self.telemetry.trips += 1;
        } else if let BreakerState::Closed { failures } = self.states[index] {
            let failures = failures + 1;
            if failures >= self.config.failure_threshold {
                self.states[index] = BreakerState::Open { since_round: round };
                self.telemetry.trips += 1;
            } else {
                self.states[index] = BreakerState::Closed { failures };
            }
        }
    }

    fn is_quarantined(&self, level: AccuracyLevel) -> bool {
        !matches!(self.states[level.index()], BreakerState::Closed { .. })
    }
}

/// An admitted request waiting for (re-)execution.
#[derive(Debug)]
struct Entry<M> {
    id: u64,
    method: M,
    requested_level: AccuracyLevel,
    level: AccuracyLevel,
    deadline: Option<usize>,
    quality_floor: Option<f64>,
    attempts_used: usize,
    not_before_round: usize,
    reroutes: usize,
}

/// The deterministic multi-request solver service (see the module docs).
#[derive(Debug)]
pub struct SolverService<M> {
    config: ServiceConfig,
    queue: VecDeque<Entry<M>>,
    shed: Vec<RequestTelemetry>,
    breakers: CircuitBreakers,
    round: usize,
    next_id: u64,
}

impl<M> SolverService<M>
where
    M: IterativeMethod + Sync,
    M::State: Send,
{
    /// An empty service under `config`.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_attempts > 0, "at least one attempt is required");
        let breakers = CircuitBreakers::new(config.breaker.clone());
        Self {
            config,
            queue: VecDeque::new(),
            shed: Vec::new(),
            breakers,
            round: 0,
            next_id: 0,
        }
    }

    /// Whether `level` is currently quarantined by its circuit breaker.
    #[must_use]
    pub fn is_quarantined(&self, level: AccuracyLevel) -> bool {
        self.breakers.is_quarantined(level)
    }

    /// Requests currently waiting in the admission queue.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submit one request. Admission is bounded: a submission arriving
    /// at a full queue is shed — it still receives an id and appears in
    /// the next [`run`](Self::run)'s report with [`Outcome::Shed`].
    pub fn submit(&mut self, request: Request<M>) -> Submission {
        let id = self.next_id;
        self.next_id += 1;
        if self.queue.len() >= self.config.queue_capacity {
            self.shed.push(RequestTelemetry {
                id,
                requested_level: request.level,
                outcome: Outcome::Shed,
                attempts: 0,
                final_level: None,
                reroutes: 0,
                report: None,
            });
            return Submission::Shed { id };
        }
        let deadline = request
            .deadline
            .or(self.config.default_deadline)
            .or_else(|| request.method.deadline_hint());
        self.queue.push_back(Entry {
            id,
            requested_level: request.level,
            level: request.level,
            method: request.method,
            deadline,
            quality_floor: request.quality_floor.or(self.config.quality_floor),
            attempts_used: 0,
            not_before_round: 0,
            reroutes: 0,
        });
        Submission::Accepted { id }
    }

    /// Drain the queue with the default per-attempt strategy
    /// ([`SingleMode`] at the attempt's effective level; the watchdog
    /// still escalates within a run).
    pub fn run<C, CF>(&mut self, exec: &Executor, ctx_factory: CF) -> ServiceReport<M::State>
    where
        C: ArithContext,
        CF: Fn(&AttemptSpec) -> C + Sync,
    {
        self.run_with(exec, ctx_factory, |spec| {
            Box::new(SingleMode::new(spec.level)) as Box<dyn ReconfigStrategy>
        })
    }

    /// Drain the queue: execute every admitted request (with retries)
    /// to a terminal outcome and report on all of them plus any
    /// submissions shed since the last drain.
    ///
    /// `ctx_factory` builds each attempt's arithmetic context and
    /// `strategy_factory` its reconfiguration strategy; both must be
    /// pure functions of the [`AttemptSpec`] (see its docs) for the
    /// determinism contract to hold.
    pub fn run_with<C, CF, SF>(
        &mut self,
        exec: &Executor,
        ctx_factory: CF,
        strategy_factory: SF,
    ) -> ServiceReport<M::State>
    where
        C: ArithContext,
        CF: Fn(&AttemptSpec) -> C + Sync,
        SF: Fn(&AttemptSpec) -> Box<dyn ReconfigStrategy> + Sync,
    {
        let mut finished: Vec<RequestResult<M::State>> = self
            .shed
            .drain(..)
            .map(|telemetry| RequestResult {
                telemetry,
                state: None,
            })
            .collect();
        let watchdog_template = self.config.watchdog.clone();
        let base_seed = self.config.base_seed;
        let max_attempts = self.config.max_attempts;

        let drain_start = self.round;
        let mut round = self.round;
        while !self.queue.is_empty() {
            // Idle rounds (everyone backing off) are skipped
            // deterministically.
            let Some(earliest) = self.queue.iter().map(|e| e.not_before_round).min() else {
                break;
            };
            round = round.max(earliest);

            // Split ready vs. still backing off, preserving id order.
            let mut ready: Vec<Entry<M>> = Vec::new();
            let mut waiting: VecDeque<Entry<M>> = VecDeque::new();
            for entry in self.queue.drain(..) {
                if entry.not_before_round <= round {
                    ready.push(entry);
                } else {
                    waiting.push_back(entry);
                }
            }
            self.queue = waiting;

            // Serial pre-pass in id order: breaker routing + specs.
            let specs: Vec<AttemptSpec> = ready
                .iter_mut()
                .map(|entry| {
                    let (level, probe) = self.breakers.route(entry.level, round);
                    if level != entry.level {
                        entry.reroutes += 1;
                    }
                    let attempt = entry.attempts_used + 1;
                    AttemptSpec {
                        request_id: entry.id,
                        attempt,
                        level,
                        seed: request_seed(base_seed, entry.id, attempt as u64),
                        deadline: entry.deadline,
                        probe,
                    }
                })
                .collect();

            // Parallel attempts (indexed work; in-order results).
            let outcomes = exec.run_indexed(ready.len(), |i| {
                let spec = &specs[i];
                let mut watchdog = watchdog_template.clone();
                watchdog.iteration_budget = match (watchdog.iteration_budget, spec.deadline) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (budget, deadline) => budget.or(deadline),
                };
                let mut ctx = ctx_factory(spec);
                let mut strategy = strategy_factory(spec);
                RunConfig::new(&ready[i].method, &mut ctx)
                    .with_watchdog(watchdog)
                    .execute(strategy.as_mut())
            });

            // Serial post-pass in id order: verdicts, breaker feedback,
            // retry scheduling.
            for ((mut entry, spec), mut outcome) in ready.into_iter().zip(&specs).zip(outcomes) {
                entry.attempts_used = spec.attempt;
                let floor_ok = entry.quality_floor.is_none_or(|floor| {
                    outcome.report.final_objective.is_finite()
                        && outcome.report.final_objective <= floor
                });
                let success = outcome.report.converged && floor_ok;
                self.breakers.record(spec.level, round, success, spec.probe);

                if success {
                    let intervened = spec.attempt > 1
                        || spec.level != entry.requested_level
                        || outcome.report.recovery.degrading();
                    let verdict = if intervened {
                        Outcome::Degraded
                    } else {
                        Outcome::Completed
                    };
                    outcome.report.attempts = spec.attempt;
                    outcome.report.outcome = verdict;
                    finished.push(RequestResult {
                        telemetry: RequestTelemetry {
                            id: entry.id,
                            requested_level: entry.requested_level,
                            outcome: verdict,
                            attempts: spec.attempt,
                            final_level: Some(spec.level),
                            reroutes: entry.reroutes,
                            report: Some(outcome.report),
                        },
                        state: Some(outcome.state),
                    });
                } else if spec.attempt < max_attempts {
                    // Retry with escalation: the level step and the
                    // backoff both double per attempt.
                    let step = 1usize << (spec.attempt - 1);
                    let escalated =
                        (spec.level.index() + step).min(AccuracyLevel::Accurate.index());
                    // `escalated` is clamped to the ladder above; the
                    // fail-safe lands on the dependable mode anyway.
                    entry.level =
                        AccuracyLevel::from_index(escalated).unwrap_or(AccuracyLevel::Accurate);
                    entry.not_before_round = round + (1usize << (spec.attempt - 1));
                    self.queue.push_back(entry);
                } else {
                    outcome.report.attempts = spec.attempt;
                    outcome.report.outcome = Outcome::Failed;
                    finished.push(RequestResult {
                        telemetry: RequestTelemetry {
                            id: entry.id,
                            requested_level: entry.requested_level,
                            outcome: Outcome::Failed,
                            attempts: spec.attempt,
                            final_level: Some(spec.level),
                            reroutes: entry.reroutes,
                            report: Some(outcome.report),
                        },
                        state: Some(outcome.state),
                    });
                }
            }
            round += 1;
        }

        self.round = round;
        finished.sort_by_key(|r| r.telemetry.id);
        ServiceReport {
            requests: finished,
            breaker: self.breakers.telemetry,
            rounds: round - drain_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_arith::{EnergyProfile, FaultInjector, QcsContext};
    use approx_linalg::Matrix;
    use iter_solvers::ConjugateGradient;

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn tridiag_tol(n: usize, scale: f64, tol: f64) -> ConjugateGradient {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 4.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| scale * (1.0 + i as f64 * 0.3)).collect();
        ConjugateGradient::new(a, b, tol, 200)
    }

    fn tridiag(n: usize, scale: f64) -> ConjugateGradient {
        tridiag_tol(n, scale, 1e-8)
    }

    fn clean_factory(spec: &AttemptSpec) -> QcsContext {
        let mut ctx = QcsContext::with_profile(profile());
        ctx.set_level(spec.level);
        ctx
    }

    #[test]
    fn clean_requests_complete_on_first_attempt() {
        let mut service = SolverService::new(ServiceConfig::default());
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                service
                    .submit(
                        Request::new(tridiag(6, 1.0 + i as f64)).at_level(AccuracyLevel::Accurate),
                    )
                    .id()
            })
            .collect();
        let report = service.run(&Executor::with_threads(2), clean_factory);
        assert!(report.accounts_for(&ids));
        let counts = report.counts();
        assert_eq!(counts.completed, 4);
        assert_eq!(counts.total(), 4);
        for r in &report.requests {
            assert_eq!(r.telemetry.attempts, 1);
            let rep = r.telemetry.report.as_ref().unwrap();
            assert_eq!(rep.outcome, Outcome::Completed);
            assert_eq!(rep.attempts, 1);
        }
    }

    #[test]
    fn shed_requests_get_telemetry_not_silence() {
        let config = ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        };
        let mut service = SolverService::new(config);
        let subs: Vec<Submission> = (0..5)
            .map(|_| {
                service.submit(Request::new(tridiag(4, 1.0)).at_level(AccuracyLevel::Accurate))
            })
            .collect();
        assert!(subs[0].accepted() && subs[1].accepted());
        assert!(!subs[2].accepted() && !subs[3].accepted() && !subs[4].accepted());
        let ids: Vec<u64> = subs.iter().map(Submission::id).collect();
        let report = service.run(&Executor::with_threads(1), clean_factory);
        assert!(report.accounts_for(&ids));
        let counts = report.counts();
        assert_eq!(counts.shed, 3);
        assert_eq!(counts.completed, 2);
        let shed = &report.requests[2];
        assert_eq!(shed.telemetry.outcome, Outcome::Shed);
        assert_eq!(shed.telemetry.attempts, 0);
        assert!(shed.telemetry.report.is_none());
        assert!(shed.state.is_none());
    }

    #[test]
    fn deadline_failure_escalates_and_recovers() {
        // Faults at the two cheapest levels make attempts there time
        // out; escalation must carry the request to a clean level.
        let config = ServiceConfig {
            max_attempts: 4,
            breaker: BreakerConfig {
                failure_threshold: 0,
                cooldown_rounds: 0,
            },
            ..ServiceConfig::default()
        };
        let mut service = SolverService::new(config);
        let id = service
            .submit(
                Request::new(tridiag(8, 2.0))
                    .at_level(AccuracyLevel::Level1)
                    .with_deadline(40),
            )
            .id();
        let report = service.run(&Executor::with_threads(2), |spec| {
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(spec.level);
            FaultInjector::new(ctx, 0.9, 16, spec.seed)
                .striking_only(&[AccuracyLevel::Level1, AccuracyLevel::Level2])
        });
        assert!(report.accounts_for(&[id]));
        let r = &report.requests[0];
        assert_eq!(r.telemetry.outcome, Outcome::Degraded);
        assert!(r.telemetry.attempts > 1, "no retry happened");
        assert!(
            r.telemetry.final_level.unwrap() > AccuracyLevel::Level2,
            "escalation never left the faulty levels"
        );
    }

    #[test]
    fn breaker_trips_reroutes_probes_and_heals() {
        // Drain 1 runs on a faulty level-2 fabric: the breaker trips
        // and quarantine persists across drains. Drain 2 arrives after
        // the environment clears: the first request probes level 2, the
        // probe succeeds, and the level heals (the rest were rerouted
        // while the probe was in flight). Level 2 rather than 1 because
        // the probe must *honestly* re-solve its request on the healed
        // fabric: CG's residual replacement keeps the recurrence pinned
        // to b − Ax, and level 1's quantum is too coarse for this
        // problem's tolerance even fault-free.
        let config = ServiceConfig {
            max_attempts: 4,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_rounds: 1,
            },
            default_deadline: Some(40),
            ..ServiceConfig::default()
        };
        let mut service = SolverService::new(config);
        let mut ids = Vec::new();
        for i in 0..3 {
            ids.push(
                service
                    .submit(
                        Request::new(tridiag_tol(6, 1.0 + f64::from(i) * 0.2, 1e-3))
                            .at_level(AccuracyLevel::Level2),
                    )
                    .id(),
            );
        }
        let burst = service.run(&Executor::with_threads(3), |spec| {
            let mut ctx = QcsContext::with_profile(profile());
            ctx.set_level(spec.level);
            FaultInjector::new(ctx, 0.9, 16, spec.seed).striking_only(&[AccuracyLevel::Level2])
        });
        assert!(burst.accounts_for(&ids));
        assert!(burst.breaker.trips >= 1, "breaker never tripped");
        assert!(
            service.is_quarantined(AccuracyLevel::Level2),
            "quarantine must persist across drains"
        );
        assert!(burst.counts().all_succeeded());

        let mut clean_ids = Vec::new();
        for i in 0..3 {
            clean_ids.push(
                service
                    .submit(
                        Request::new(tridiag_tol(6, 2.0 + f64::from(i) * 0.2, 1e-3))
                            .at_level(AccuracyLevel::Level2),
                    )
                    .id(),
            );
        }
        let healed = service.run(&Executor::with_threads(3), clean_factory);
        assert!(healed.accounts_for(&clean_ids));
        assert!(healed.breaker.probes >= 1, "no probe was dispatched");
        assert!(healed.breaker.heals >= 1, "the level never healed");
        assert!(healed.breaker.reroutes >= 1, "no request was rerouted");
        assert!(
            !service.is_quarantined(AccuracyLevel::Level2),
            "a clean probe must heal the level"
        );
        assert!(healed.counts().all_succeeded());
    }

    #[test]
    fn quality_floor_violations_count_as_failures() {
        // An impossible floor: every attempt converges but misses it,
        // so the request exhausts its attempts and fails.
        let mut service = SolverService::new(ServiceConfig {
            max_attempts: 2,
            ..ServiceConfig::default()
        });
        let id = service
            .submit(
                Request::new(tridiag(4, 1.0))
                    .at_level(AccuracyLevel::Accurate)
                    .with_quality_floor(-1e12),
            )
            .id();
        let report = service.run(&Executor::with_threads(1), clean_factory);
        assert!(report.accounts_for(&[id]));
        assert_eq!(report.requests[0].telemetry.outcome, Outcome::Failed);
        assert_eq!(report.requests[0].telemetry.attempts, 2);
    }

    #[test]
    fn report_json_is_structurally_sound() {
        let mut service = SolverService::new(ServiceConfig {
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        service.submit(Request::new(tridiag(4, 1.0)).at_level(AccuracyLevel::Accurate));
        service.submit(Request::new(tridiag(4, 2.0)));
        let report = service.run(&Executor::with_threads(1), clean_factory);
        let json = report.to_json();
        assert!(json.contains("\"submitted\":2"));
        assert!(json.contains("\"shed\":1"));
        assert!(json.contains("\"outcome\":\"completed\""));
        assert!(json.contains("\"outcome\":\"shed\""));
        assert!(json.contains("\"breaker\":{\"trips\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn drains_are_deterministic_across_thread_counts() {
        let campaign = |threads: usize| {
            let mut service = SolverService::new(ServiceConfig {
                max_attempts: 3,
                default_deadline: Some(60),
                ..ServiceConfig::default()
            });
            let mut ids = Vec::new();
            for i in 0..8 {
                ids.push(
                    service
                        .submit(Request::new(tridiag(5 + i % 3, 1.0 + i as f64 * 0.5)))
                        .id(),
                );
            }
            let report = service.run(&Executor::with_threads(threads), |spec| {
                let mut ctx = QcsContext::with_profile(profile());
                ctx.set_level(spec.level);
                FaultInjector::new(ctx, 0.02, 12, spec.seed).sparing_accurate()
            });
            assert!(report.accounts_for(&ids));
            report
        };
        let serial = campaign(1);
        for threads in [2, 4, 8] {
            let parallel = campaign(threads);
            assert_eq!(serial, parallel, "divergence at {threads} threads");
        }
    }
}
