//! The iteration-level *quality error* metric (paper Definition 1).

/// Relative difference between the accurate and approximate results of
/// one iteration:
///
/// ```text
/// ε = |f(x) − f'(x)| / |f(x)|
/// ```
///
/// When the accurate value is (numerically) zero the absolute difference
/// is returned instead, so the metric stays finite.
///
/// # Example
///
/// ```
/// use approxit::quality_error;
///
/// assert!((quality_error(2.0, 2.1) - 0.05).abs() < 1e-12);
/// assert_eq!(quality_error(0.0, 0.3), 0.3); // absolute fallback
/// assert_eq!(quality_error(-4.0, -4.0), 0.0);
/// ```
#[must_use]
pub fn quality_error(accurate: f64, approximate: f64) -> f64 {
    let diff = (accurate - approximate).abs();
    if accurate.abs() < 1e-300 {
        diff
    } else {
        diff / accurate.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_result_has_zero_error() {
        assert_eq!(quality_error(3.5, 3.5), 0.0);
        assert_eq!(quality_error(-1e10, -1e10), 0.0);
    }

    #[test]
    fn error_is_relative() {
        assert!((quality_error(10.0, 11.0) - 0.1).abs() < 1e-12);
        assert!((quality_error(-10.0, -11.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_is_symmetric_in_sign_of_deviation() {
        assert_eq!(quality_error(10.0, 11.0), quality_error(10.0, 9.0));
    }

    #[test]
    fn zero_accurate_value_falls_back_to_absolute() {
        assert_eq!(quality_error(0.0, 0.25), 0.25);
    }
}
