//! The iteration-level *quality error* metric (paper Definition 1).

pub use approx_arith::endorse;

/// Threshold below which the reference value is treated as numerically
/// zero and [`quality_error`] falls back to the absolute difference.
///
/// The old cutoff (`1e-300`, essentially "exact IEEE zero") made the
/// metric explode on tiny references: a reference of `1e-308` with an
/// approximate value off by `1e-6` reported a relative error of `1e302`,
/// and a *subnormal* reference could even overflow to infinity. No
/// monitoring quantity in this codebase carries meaning at magnitudes
/// below `1e-12` — objectives, gradients, and residuals live many orders
/// of magnitude above it, and convergence tolerances bottom out around
/// `1e-10` — so below this threshold the relative metric is noise and
/// the absolute difference is the honest answer.
pub const QUALITY_EPS: f64 = 1e-12;

/// Relative difference between the accurate and approximate results of
/// one iteration:
///
/// ```text
/// ε = |f(x) − f'(x)| / |f(x)|
/// ```
///
/// When the accurate value is numerically zero (`|f(x)| <`
/// [`QUALITY_EPS`]) the absolute difference is returned instead, so the
/// metric stays finite and meaningful near zero, for subnormal
/// references, and across sign flips of a near-zero reference.
///
/// # Example
///
/// ```
/// use approxit::quality_error;
///
/// assert!((quality_error(2.0, 2.1) - 0.05).abs() < 1e-12);
/// assert_eq!(quality_error(0.0, 0.3), 0.3); // absolute fallback
/// assert_eq!(quality_error(-4.0, -4.0), 0.0);
/// ```
#[must_use]
pub fn quality_error(accurate: f64, approximate: f64) -> f64 {
    let diff = (accurate - approximate).abs();
    if accurate.abs() < QUALITY_EPS {
        diff
    } else {
        diff / accurate.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_result_has_zero_error() {
        assert_eq!(quality_error(3.5, 3.5), 0.0);
        assert_eq!(quality_error(-1e10, -1e10), 0.0);
    }

    #[test]
    fn error_is_relative() {
        assert!((quality_error(10.0, 11.0) - 0.1).abs() < 1e-12);
        assert!((quality_error(-10.0, -11.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_is_symmetric_in_sign_of_deviation() {
        assert_eq!(quality_error(10.0, 11.0), quality_error(10.0, 9.0));
    }

    #[test]
    fn zero_accurate_value_falls_back_to_absolute() {
        assert_eq!(quality_error(0.0, 0.25), 0.25);
        assert_eq!(quality_error(-0.0, 0.25), 0.25);
    }

    #[test]
    fn subnormal_reference_does_not_blow_up() {
        // The smallest positive subnormal. Under the old 1e-300 cutoff
        // this divided by ~5e-324 and overflowed to infinity.
        let tiny = f64::MIN_POSITIVE * f64::EPSILON;
        assert!(tiny > 0.0 && tiny < f64::MIN_POSITIVE, "subnormal");
        let err = quality_error(tiny, 0.25);
        assert!(err.is_finite());
        assert!((err - 0.25).abs() < 1e-12, "absolute fallback, got {err}");
        // Same for a denormal-range reference just above the old cutoff.
        let err = quality_error(1e-280, 1e-6);
        assert!(err.is_finite());
        assert!((err - 1e-6).abs() < 1e-18, "got {err}");
    }

    #[test]
    fn sign_flip_across_zero_stays_bounded() {
        // A monitored quantity crossing zero between iterations: the
        // reference is ±tiny and the approximation landed on the other
        // side. The metric must report the (small) absolute gap, not a
        // huge relative one.
        let err = quality_error(1e-15, -1e-15);
        assert!(err <= 2e-15, "got {err}");
        let err = quality_error(-1e-13, 1e-13);
        assert!(err <= 2e-13, "got {err}");
    }

    #[test]
    fn fallback_threshold_is_continuous_enough() {
        // Just above the threshold the relative metric applies and is
        // finite; just below, the absolute one. Neither side explodes.
        let above = quality_error(2e-12, 3e-12);
        assert!((above - 0.5).abs() < 1e-9, "relative above eps: {above}");
        let below = quality_error(5e-13, 3e-12);
        assert!(below < 1e-11, "absolute below eps: {below}");
    }

    #[test]
    fn nan_propagates_rather_than_masquerading_as_quality() {
        assert!(quality_error(f64::NAN, 1.0).is_nan());
        assert!(quality_error(1.0, f64::NAN).is_nan());
    }
}
