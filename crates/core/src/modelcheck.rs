//! Controller model checking: static proofs of the quality guarantee's
//! *control* side.
//!
//! The paper's guarantee rests on the online controller always steering
//! the solver back toward the accurate mode when approximation injects
//! too much error. The dynamic test suite exercises that claim on
//! particular trajectories; this module proves it for *every*
//! trajectory by modeling the controller as an explicit finite
//! transition system and checking the guarantee invariants exhaustively
//! (and, as a cross-check, symbolically on BDDs via [`gatesim::bdd`]).
//!
//! # The abstraction
//!
//! A controller state is `(accuracy level, level floor, stall counter)`
//! — [`CtrlState`]. The environment input is the *quantized
//! quality-error band* of the iteration just completed —
//! [`ErrorBand`]: how much error the monitoring quantities showed,
//! folded into four bands. This abstracts exactly the quantities the
//! real implementations branch on:
//!
//! * [`AdaptiveAngleStrategy`](crate::AdaptiveAngleStrategy) retires a
//!   mode and rolls back when the objective *increased*
//!   ([`ErrorBand::Damage`]); otherwise its angle/LUT machinery picks a
//!   target mode that moves toward accurate as the observed error band
//!   rises ([`ErrorBand::Low`] → cheapest eligible,
//!   [`ErrorBand::Medium`] → mid table, [`ErrorBand::High`] →
//!   accurate).
//! * [`SingleMode`](crate::SingleMode) never reacts; only the runner
//!   watchdog ([`WatchdogConfig`](crate::WatchdogConfig)) defends it:
//!   a damaged iterate is rolled back (restoring a checkpoint when
//!   enabled) and after `R` *consecutive* rollbacks the level is
//!   escalated one step toward exact and floored there.
//!
//! **Soundness assumptions**, in the same assume-guarantee style as the
//! range models: (1) the accurate mode injects zero approximation
//! error, so [`ErrorBand::Damage`] is not applicable at
//! [`AccuracyLevel::Accurate`] — matching the strategy code, which
//! exempts the accurate mode from rollback; (2) the band quantization
//! over-approximates the real-valued monitors — every concrete decision
//! corresponds to *some* band, so a property proved for all band
//! sequences holds for all concrete runs.
//!
//! # The properties
//!
//! [`check`] verifies four invariants and reports violations as
//! concrete replayable decision traces ([`Counterexample`]) — the same
//! philosophy as `gatesim::equiv::prove`, which never reports a
//! mismatch without an input that exhibits it:
//!
//! 1. **Liveness** — under sustained worst-case error, every reachable
//!    state reaches the accurate mode within `|states|` steps (no
//!    livelock below accurate).
//! 2. **No rollback livelock** — no reachable cycle consisting entirely
//!    of rollback edges: the controller cannot discard iterates forever
//!    without committing progress or escalating.
//! 3. **Monotone escalation** — the level floor never decreases, a
//!    rollback never lowers the accuracy level, escalations strictly
//!    raise it, and the level never sits below the floor.
//! 4. **Checkpoint discipline** — a checkpoint is only restored on a
//!    rollback edge, only when checkpointing is configured, and a
//!    restore stays at the level boundary: the restored state's level
//!    is the same level or its escalation successor, never lower and
//!    never skipping levels.

use std::collections::{HashMap, VecDeque};

use approx_arith::AccuracyLevel;
use gatesim::bdd::{Bdd, BddRef, NodeLimitExceeded};

/// Index of the accurate mode (`AccuracyLevel::Accurate.index()`).
const ACCURATE: u8 = 4;

/// One abstract controller state: everything the controller's future
/// behavior depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtrlState {
    /// Current accuracy level index (0 = Level1 … 4 = Accurate).
    pub level: u8,
    /// Ratchet floor: the lowest level index still eligible.
    pub floor: u8,
    /// Consecutive-rollback counter feeding watchdog escalation.
    pub stall: u8,
}

impl CtrlState {
    /// The [`AccuracyLevel`] of this state.
    #[must_use]
    pub fn accuracy_level(&self) -> AccuracyLevel {
        AccuracyLevel::from_index(self.level as usize).expect("level index in 0..5")
    }
}

impl std::fmt::Display for CtrlState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(level {}, floor {}, stall {})",
            self.level, self.floor, self.stall
        )
    }
}

/// Quantized per-iteration quality-error band — the controller's input
/// alphabet (see the module docs for the mapping onto the real
/// monitors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorBand {
    /// Error well inside the budget; steep manifold.
    Low,
    /// Error near the budget; mid-table angle.
    Medium,
    /// Error at the switching threshold; flat manifold or stalled
    /// progress.
    High,
    /// The iterate was damaged (objective increased / guard tripped).
    Damage,
}

impl ErrorBand {
    /// Every band, for exhaustive exploration.
    pub const ALL: [ErrorBand; 4] = [
        ErrorBand::Low,
        ErrorBand::Medium,
        ErrorBand::High,
        ErrorBand::Damage,
    ];

    /// Stable encoding for the symbolic backend (2 bits).
    #[must_use]
    fn code(self) -> u16 {
        match self {
            ErrorBand::Low => 0,
            ErrorBand::Medium => 1,
            ErrorBand::High => 2,
            ErrorBand::Damage => 3,
        }
    }
}

impl std::fmt::Display for ErrorBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorBand::Low => "low",
            ErrorBand::Medium => "medium",
            ErrorBand::High => "high",
            ErrorBand::Damage => "damage",
        };
        f.write_str(s)
    }
}

/// What happened on one transition, for the property checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionLabel {
    /// The iterate was committed.
    pub commit: bool,
    /// The iterate was discarded (strategy or watchdog rollback).
    pub rollback: bool,
    /// A checkpoint was restored.
    pub restore: bool,
    /// The level was forced up by the escalation policy or ratchet.
    pub escalation: bool,
}

/// Which controller the transition system models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ControllerKind {
    /// [`AdaptiveAngleStrategy`](crate::AdaptiveAngleStrategy) with its
    /// floor ratchet.
    Adaptive,
    /// [`SingleMode`](crate::SingleMode) at a fixed starting level.
    SingleMode(u8),
    /// Deliberately broken mutant: escalation order inverted — damage
    /// *lowers* the level and never ratchets the floor. Exists to
    /// demonstrate that the checker produces concrete counterexamples.
    InvertedEscalation,
}

/// A finite-state model of one controller configuration (strategy plus
/// watchdog escalation rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerSpec {
    kind: ControllerKind,
    /// Watchdog: escalate after this many consecutive rollbacks.
    escalation_threshold: Option<u8>,
    /// Watchdog: checkpoint restores are active.
    checkpointing: bool,
}

impl ControllerSpec {
    /// The shipped adaptive strategy (its own floor ratchet, no runner
    /// watchdog).
    #[must_use]
    pub fn adaptive() -> Self {
        Self {
            kind: ControllerKind::Adaptive,
            escalation_threshold: None,
            checkpointing: false,
        }
    }

    /// The adaptive strategy under the resilient runner watchdog.
    #[must_use]
    pub fn adaptive_with_watchdog(escalation_threshold: u8) -> Self {
        assert!(escalation_threshold > 0, "threshold must be positive");
        Self {
            kind: ControllerKind::Adaptive,
            escalation_threshold: Some(escalation_threshold),
            checkpointing: true,
        }
    }

    /// A single-mode baseline protected by the watchdog
    /// (checkpointed recovery plus escalation after `threshold`
    /// consecutive rollbacks — the `WatchdogConfig::resilient` shape).
    #[must_use]
    pub fn single_mode_with_watchdog(level: AccuracyLevel, escalation_threshold: u8) -> Self {
        assert!(escalation_threshold > 0, "threshold must be positive");
        Self {
            kind: ControllerKind::SingleMode(level.index() as u8),
            escalation_threshold: Some(escalation_threshold),
            checkpointing: true,
        }
    }

    /// A single-mode baseline with no watchdog escalation — raw
    /// hardware behavior. Kept constructible because its *failure* is
    /// informative: the checker shows exactly the livelock the watchdog
    /// exists to break.
    #[must_use]
    pub fn single_mode_unprotected(level: AccuracyLevel) -> Self {
        Self {
            kind: ControllerKind::SingleMode(level.index() as u8),
            escalation_threshold: None,
            checkpointing: false,
        }
    }

    /// The deliberately broken mutant with the escalation order
    /// inverted: damage lowers the level. Every check that holds for
    /// the shipped controllers must fail here with a concrete trace.
    #[must_use]
    pub fn inverted_escalation_mutant() -> Self {
        Self {
            kind: ControllerKind::InvertedEscalation,
            escalation_threshold: None,
            checkpointing: false,
        }
    }

    /// Human-readable name for reports.
    #[must_use]
    pub fn name(&self) -> String {
        let base = match self.kind {
            ControllerKind::Adaptive => "adaptive".to_owned(),
            ControllerKind::SingleMode(l) => format!("single-mode(level index {l})"),
            ControllerKind::InvertedEscalation => "mutant/inverted-escalation".to_owned(),
        };
        match self.escalation_threshold {
            Some(r) => format!("{base} + watchdog(R={r})"),
            None => base,
        }
    }

    /// Saturation cap for the stall counter (keeps the state space
    /// finite when no escalation threshold consumes the counter).
    fn stall_cap(&self) -> u8 {
        self.escalation_threshold.unwrap_or(3)
    }

    /// The initial controller state.
    #[must_use]
    pub fn initial_state(&self) -> CtrlState {
        let level = match self.kind {
            ControllerKind::Adaptive | ControllerKind::InvertedEscalation => 0,
            ControllerKind::SingleMode(l) => l,
        };
        CtrlState {
            level,
            floor: level,
            stall: 0,
        }
    }

    /// Whether `band` can occur in `state` under the model's soundness
    /// assumptions (damage cannot originate from the accurate mode).
    #[must_use]
    pub fn applicable(&self, state: CtrlState, band: ErrorBand) -> bool {
        !(band == ErrorBand::Damage && state.level == ACCURATE)
    }

    /// One controller reaction: the post-state and what happened.
    ///
    /// # Panics
    /// Panics if the band is not [`applicable`](Self::applicable) in
    /// `state`.
    #[must_use]
    pub fn step(&self, state: CtrlState, band: ErrorBand) -> (CtrlState, TransitionLabel) {
        assert!(
            self.applicable(state, band),
            "band {band} not applicable in {state}"
        );
        let mut label = TransitionLabel::default();
        let mut next = state;
        match self.kind {
            ControllerKind::Adaptive => match band {
                ErrorBand::Damage => {
                    // decide(): damaged mode retired (floor ratchet),
                    // RollbackAndSwitch(floor).
                    label.rollback = true;
                    next.floor = state.floor.max((state.level + 1).min(ACCURATE));
                    next.level = next.floor;
                    next.stall = self.bump_stall(state.stall);
                }
                ErrorBand::Low => {
                    // Steep manifold: the cheapest eligible mode.
                    label.commit = true;
                    next.level = state.floor;
                    next.stall = 0;
                }
                ErrorBand::Medium => {
                    // Mid-table angle.
                    label.commit = true;
                    next.level = state.floor.max(2);
                    next.stall = 0;
                }
                ErrorBand::High => {
                    // Flat manifold / stalled progress: accurate.
                    label.commit = true;
                    next.level = ACCURATE;
                    next.stall = 0;
                }
            },
            ControllerKind::SingleMode(_) => match band {
                ErrorBand::Damage => {
                    // The strategy keeps; only the watchdog reacts.
                    label.rollback = true;
                    label.restore = self.checkpointing;
                    next.stall = self.bump_stall(state.stall);
                }
                _ => {
                    // Keep, commit as-is.
                    label.commit = true;
                    next.stall = 0;
                }
            },
            ControllerKind::InvertedEscalation => match band {
                ErrorBand::Damage => {
                    // BROKEN: de-escalates on damage, no ratchet.
                    label.rollback = true;
                    next.level = state.level.saturating_sub(1);
                    next.stall = self.bump_stall(state.stall);
                }
                ErrorBand::Low => {
                    label.commit = true;
                    next.level = state.floor;
                    next.stall = 0;
                }
                ErrorBand::Medium => {
                    label.commit = true;
                    next.level = state.floor.max(2);
                    next.stall = 0;
                }
                ErrorBand::High => {
                    label.commit = true;
                    next.level = ACCURATE;
                    next.stall = 0;
                }
            },
        }
        // Runner watchdog escalation: after R consecutive rollbacks the
        // level is forced one step toward exact and floored there.
        if label.rollback {
            if let Some(r) = self.escalation_threshold {
                if next.stall >= r {
                    if next.level < ACCURATE {
                        next.level += 1;
                        next.floor = next.floor.max(next.level);
                        label.escalation = true;
                    }
                    next.stall = 0;
                }
            }
        }
        if next.level > state.level {
            label.escalation = true;
        }
        (next, label)
    }

    fn bump_stall(&self, stall: u8) -> u8 {
        (stall + 1).min(self.stall_cap())
    }
}

/// One edge of the explored transition system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Pre-state.
    pub from: CtrlState,
    /// Observed error band.
    pub band: ErrorBand,
    /// Post-state.
    pub to: CtrlState,
    /// What happened.
    pub label: TransitionLabel,
}

/// The reachable fragment of a controller's transition system.
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    spec: ControllerSpec,
    states: Vec<CtrlState>,
    edges: Vec<Transition>,
    /// BFS tree parent of each non-initial state, for building
    /// replayable prefixes to any reachable state.
    parents: HashMap<CtrlState, Transition>,
}

impl TransitionSystem {
    /// Explore every reachable state of `spec` by breadth-first search
    /// over all applicable error bands.
    #[must_use]
    pub fn explore(spec: &ControllerSpec) -> Self {
        let initial = spec.initial_state();
        let mut states = vec![initial];
        let mut seen: HashMap<CtrlState, ()> = HashMap::from([(initial, ())]);
        let mut parents = HashMap::new();
        let mut edges = Vec::new();
        let mut queue = VecDeque::from([initial]);
        while let Some(state) = queue.pop_front() {
            for band in ErrorBand::ALL {
                if !spec.applicable(state, band) {
                    continue;
                }
                let (to, label) = spec.step(state, band);
                let edge = Transition {
                    from: state,
                    band,
                    to,
                    label,
                };
                edges.push(edge);
                if seen.insert(to, ()).is_none() {
                    states.push(to);
                    parents.insert(to, edge);
                    queue.push_back(to);
                }
            }
        }
        Self {
            spec: *spec,
            states,
            edges,
            parents,
        }
    }

    /// All reachable states (initial state first).
    #[must_use]
    pub fn states(&self) -> &[CtrlState] {
        &self.states
    }

    /// All transitions between reachable states.
    #[must_use]
    pub fn edges(&self) -> &[Transition] {
        &self.edges
    }

    /// The modeled controller.
    #[must_use]
    pub fn spec(&self) -> &ControllerSpec {
        &self.spec
    }

    /// A replayable decision trace from the initial state to `target`
    /// (empty for the initial state itself).
    fn prefix_to(&self, target: CtrlState) -> Vec<Transition> {
        let mut path = Vec::new();
        let mut cursor = target;
        while let Some(edge) = self.parents.get(&cursor) {
            path.push(*edge);
            cursor = edge.from;
        }
        path.reverse();
        path
    }
}

/// A concrete, replayable violation trace: the sequence of observed
/// error bands that drives the controller from its initial state into
/// the violation. The same philosophy as `gatesim::equiv::prove`'s
/// `Counterexample`: no property failure is reported without an input
/// sequence that exhibits it, and [`Counterexample::replay`] re-executes
/// the trace against the spec to confirm it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which property was violated.
    pub property: String,
    /// What the final step violates.
    pub detail: String,
    /// The decision trace from the initial state into the violation.
    pub trace: Vec<Transition>,
}

impl Counterexample {
    /// Re-execute the trace against `spec`: every step's band must be
    /// applicable, reproduce the recorded post-state and label, and
    /// chain onto the previous step. Returns `false` if the trace does
    /// not replay — a non-replayable counterexample would mean the
    /// checker itself is broken.
    #[must_use]
    pub fn replay(&self, spec: &ControllerSpec) -> bool {
        let mut state = spec.initial_state();
        for step in &self.trace {
            if step.from != state || !spec.applicable(state, step.band) {
                return false;
            }
            let (to, label) = spec.step(state, step.band);
            if to != step.to || label != step.label {
                return false;
            }
            state = to;
        }
        true
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation of {}: {}", self.property, self.detail)?;
        for (i, step) in self.trace.iter().enumerate() {
            let mut tags = Vec::new();
            if step.label.commit {
                tags.push("commit");
            }
            if step.label.rollback {
                tags.push("rollback");
            }
            if step.label.restore {
                tags.push("restore");
            }
            if step.label.escalation {
                tags.push("escalate");
            }
            writeln!(
                f,
                "  {i:3}: {} --[{}]--> {}  ({})",
                step.from,
                step.band,
                step.to,
                tags.join("+")
            )?;
        }
        Ok(())
    }
}

/// Result of [`check`]: exploration statistics plus any violations.
#[derive(Debug, Clone)]
pub struct ModelCheckReport {
    /// Controller that was checked.
    pub controller: String,
    /// Reachable states explored.
    pub states_explored: usize,
    /// Transitions examined.
    pub transitions: usize,
    /// All property violations, each with a replayable trace.
    pub violations: Vec<Counterexample>,
}

impl ModelCheckReport {
    /// `true` when every property holds.
    #[must_use]
    pub fn proven(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check all four guarantee invariants of `spec` (module docs) over its
/// full reachable state space.
#[must_use]
pub fn check(spec: &ControllerSpec) -> ModelCheckReport {
    let ts = TransitionSystem::explore(spec);
    let mut violations = Vec::new();
    violations.extend(check_liveness(&ts));
    violations.extend(check_no_rollback_livelock(&ts));
    violations.extend(check_monotone_escalation(&ts));
    violations.extend(check_checkpoint_discipline(&ts));
    ModelCheckReport {
        controller: spec.name(),
        states_explored: ts.states().len(),
        transitions: ts.edges().len(),
        violations,
    }
}

/// Property 1: from every reachable state, sustained worst-case error
/// (damage whenever the mode can inject it) drives the controller to
/// the accurate mode within `|states|` steps.
fn check_liveness(ts: &TransitionSystem) -> Option<Counterexample> {
    let spec = ts.spec();
    let worst = |state: CtrlState| -> ErrorBand {
        if spec.applicable(state, ErrorBand::Damage) {
            ErrorBand::Damage
        } else {
            ErrorBand::High
        }
    };
    for &start in ts.states() {
        let mut trace = ts.prefix_to(start);
        let mut state = start;
        let mut reached = state.level == ACCURATE;
        for _ in 0..ts.states().len() {
            if reached {
                break;
            }
            let band = worst(state);
            let (to, label) = spec.step(state, band);
            trace.push(Transition {
                from: state,
                band,
                to,
                label,
            });
            state = to;
            reached = state.level == ACCURATE;
        }
        if !reached {
            return Some(Counterexample {
                property: "liveness (eventually accurate under sustained error)".into(),
                detail: format!(
                    "from {start}, {len} worst-case steps never reach the accurate mode \
                     (the suffix repeats forever)",
                    len = ts.states().len()
                ),
                trace,
            });
        }
    }
    None
}

/// Property 2: no cycle of rollback-only edges — the controller cannot
/// discard work forever without either committing or escalating out.
fn check_no_rollback_livelock(ts: &TransitionSystem) -> Option<Counterexample> {
    // DFS over the subgraph of rollback edges.
    let mut rollback_out: HashMap<CtrlState, Vec<Transition>> = HashMap::new();
    for edge in ts.edges() {
        if edge.label.rollback {
            rollback_out.entry(edge.from).or_default().push(*edge);
        }
    }
    // Iterative DFS with colors: 0 unvisited, 1 on stack, 2 done.
    let mut color: HashMap<CtrlState, u8> = HashMap::new();
    for &root in ts.states() {
        if color.get(&root).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Stack of (state, edge-iterator-index, path-so-far edge).
        let mut stack: Vec<(CtrlState, usize)> = vec![(root, 0)];
        let mut path: Vec<Transition> = Vec::new();
        color.insert(root, 1);
        while let Some(&mut (state, ref mut idx)) = stack.last_mut() {
            let out = rollback_out.get(&state).map_or(&[][..], Vec::as_slice);
            if *idx < out.len() {
                let edge = out[*idx];
                *idx += 1;
                match color.get(&edge.to).copied().unwrap_or(0) {
                    0 => {
                        color.insert(edge.to, 1);
                        path.push(edge);
                        stack.push((edge.to, 0));
                    }
                    1 => {
                        // Cycle found: close it and prepend a replayable
                        // path from the initial state.
                        path.push(edge);
                        let cycle_start = edge.to;
                        let from_idx = path
                            .iter()
                            .position(|e| e.from == cycle_start)
                            .expect("cycle entry is on the DFS path");
                        let cycle: Vec<Transition> = path[from_idx..].to_vec();
                        let mut trace = ts.prefix_to(cycle_start);
                        trace.extend(cycle.iter().copied());
                        return Some(Counterexample {
                            property: "no rollback livelock".into(),
                            detail: format!(
                                "rollback-only cycle of length {} through {cycle_start}: \
                                 the controller can discard iterates forever",
                                cycle.len()
                            ),
                            trace,
                        });
                    }
                    _ => {}
                }
            } else {
                color.insert(state, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Property 3: the escalation order is monotone — floors ratchet, a
/// rollback never lowers the level, escalation edges strictly raise it,
/// and the level never drops below the floor.
fn check_monotone_escalation(ts: &TransitionSystem) -> Option<Counterexample> {
    for edge in ts.edges() {
        let violation = if edge.to.floor < edge.from.floor {
            Some(format!(
                "floor decreased ({} -> {})",
                edge.from.floor, edge.to.floor
            ))
        } else if edge.label.rollback && edge.to.level < edge.from.level {
            Some(format!(
                "rollback lowered the level ({} -> {})",
                edge.from.level, edge.to.level
            ))
        } else if edge.label.escalation && edge.to.level <= edge.from.level {
            Some(format!(
                "escalation edge did not raise the level ({} -> {})",
                edge.from.level, edge.to.level
            ))
        } else if edge.to.level < edge.to.floor {
            Some(format!(
                "level {} fell below the floor {}",
                edge.to.level, edge.to.floor
            ))
        } else {
            None
        };
        if let Some(detail) = violation {
            let mut trace = ts.prefix_to(edge.from);
            trace.push(*edge);
            return Some(Counterexample {
                property: "monotone escalation order".into(),
                detail,
                trace,
            });
        }
    }
    None
}

/// Property 4: checkpoints are only restored on rollback edges, only
/// when checkpointing is configured, and a restore stays at the level
/// boundary (same level or exactly one escalation step up).
fn check_checkpoint_discipline(ts: &TransitionSystem) -> Option<Counterexample> {
    for edge in ts.edges() {
        let violation = if edge.label.restore && !edge.label.rollback {
            Some("checkpoint restored outside a rollback".to_owned())
        } else if edge.label.restore && !ts.spec().checkpointing {
            Some("checkpoint restored with checkpointing disabled".to_owned())
        } else if edge.label.restore
            && (edge.to.level < edge.from.level || edge.to.level > edge.from.level + 1)
        {
            Some(format!(
                "restore crossed a level boundary ({} -> {})",
                edge.from.level, edge.to.level
            ))
        } else {
            None
        };
        if let Some(detail) = violation {
            let mut trace = ts.prefix_to(edge.from);
            trace.push(*edge);
            return Some(Counterexample {
                property: "checkpoint discipline".into(),
                detail,
                trace,
            });
        }
    }
    None
}

// ---------------------------------------------------------------------
// Symbolic backend
// ---------------------------------------------------------------------

/// Bit width of the state encoding: level (3) + floor (3) + stall (3).
const STATE_BITS: u32 = 9;
/// Bit width of the input encoding (the error band).
const INPUT_BITS: u32 = 2;
/// Variable blocks: current state, then input, then next state —
/// ordered so that renaming next → current is order-preserving once the
/// other blocks are quantified away.
const CUR_BASE: u32 = 0;
const INPUT_BASE: u32 = STATE_BITS;
const NEXT_BASE: u32 = STATE_BITS + INPUT_BITS;
const NUM_VARS: u32 = 2 * STATE_BITS + INPUT_BITS;

fn state_code(s: CtrlState) -> u16 {
    u16::from(s.level) | (u16::from(s.floor) << 3) | (u16::from(s.stall) << 6)
}

/// Result of [`symbolic_cross_check`]: the explicit and symbolic
/// analyses of the same controller, for mutual validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolicCrossCheck {
    /// Reachable-state count from the explicit BFS.
    pub explicit_reachable: usize,
    /// Reachable-state count from the symbolic fixpoint (model count of
    /// the reachability BDD).
    pub symbolic_reachable: usize,
    /// `AG EF accurate` over the reachable states: from every reachable
    /// state, *some* band sequence reaches the accurate mode.
    pub all_reach_accurate: bool,
    /// Live BDD nodes after the fixpoints, for the report.
    pub bdd_nodes: usize,
}

impl SymbolicCrossCheck {
    /// `true` when both backends agree on the reachable set size.
    #[must_use]
    pub fn counts_agree(&self) -> bool {
        self.explicit_reachable == self.symbolic_reachable
    }
}

/// Verify the explicit exploration against a BDD-based symbolic model
/// checker built on [`gatesim::bdd`]: encode the transition relation
/// `R(cur, input, next)` over Boolean variables, compute the reachable
/// set as a forward image fixpoint (`∃ cur, input . R ∧ Reached`,
/// renamed back), count it, and check `AG EF accurate` by a backward
/// fixpoint. The two engines share nothing but [`ControllerSpec::step`]
/// — agreement is strong evidence both are faithful.
///
/// # Errors
/// Propagates [`NodeLimitExceeded`] if the BDD outgrows its manager
/// budget (does not happen for the shipped controllers; the state space
/// is tiny).
pub fn symbolic_cross_check(
    spec: &ControllerSpec,
) -> Result<SymbolicCrossCheck, NodeLimitExceeded> {
    let ts = TransitionSystem::explore(spec);
    let mut bdd = Bdd::new(NUM_VARS);

    // Cube helpers: conjunction of literals for `value` over `bits`
    // variables starting at `base`.
    fn cube(bdd: &mut Bdd, base: u32, bits: u32, value: u16) -> Result<BddRef, NodeLimitExceeded> {
        let mut acc = BddRef::TRUE;
        for b in 0..bits {
            let v = bdd.var(base + b)?;
            let lit = if (value >> b) & 1 == 1 {
                v
            } else {
                bdd.not(v)?
            };
            acc = bdd.and(acc, lit)?;
        }
        Ok(acc)
    }

    // Transition relation: one cube per explored edge.
    let mut relation = BddRef::FALSE;
    for edge in ts.edges() {
        let c = cube(&mut bdd, CUR_BASE, STATE_BITS, state_code(edge.from))?;
        let i = cube(&mut bdd, INPUT_BASE, INPUT_BITS, edge.band.code())?;
        let n = cube(&mut bdd, NEXT_BASE, STATE_BITS, state_code(edge.to))?;
        let ci = bdd.and(c, i)?;
        let cin = bdd.and(ci, n)?;
        relation = bdd.or(relation, cin)?;
    }

    let cur_vars: Vec<u32> = (CUR_BASE..CUR_BASE + STATE_BITS).collect();
    let input_vars: Vec<u32> = (INPUT_BASE..INPUT_BASE + INPUT_BITS).collect();
    let next_vars: Vec<u32> = (NEXT_BASE..NEXT_BASE + STATE_BITS).collect();
    let cur_and_input: Vec<u32> = cur_vars.iter().chain(&input_vars).copied().collect();
    let next_and_input: Vec<u32> = next_vars.iter().chain(&input_vars).copied().collect();
    let next_to_cur: HashMap<u32, u32> = next_vars
        .iter()
        .zip(&cur_vars)
        .map(|(&n, &c)| (n, c))
        .collect();
    let cur_to_next: HashMap<u32, u32> = cur_vars
        .iter()
        .zip(&next_vars)
        .map(|(&c, &n)| (c, n))
        .collect();

    // Forward reachability fixpoint.
    let mut reached = cube(
        &mut bdd,
        CUR_BASE,
        STATE_BITS,
        state_code(spec.initial_state()),
    )?;
    loop {
        let step = bdd.and(relation, reached)?;
        let image_next = bdd.exists(step, &cur_and_input)?;
        let image = bdd.rename_monotone(image_next, &next_to_cur)?;
        let grown = bdd.or(reached, image)?;
        if grown == reached {
            break;
        }
        reached = grown;
    }
    // Model count over the 9 current-state bits: sat_fraction counts
    // over all NUM_VARS variables, and `reached` is independent of the
    // other NUM_VARS − STATE_BITS of them.
    let symbolic_reachable =
        (bdd.sat_fraction(reached) * f64::from(1u32 << STATE_BITS)).round() as usize;

    // Backward fixpoint for EF accurate: accurate means level == 4,
    // i.e. the three level bits (cur vars 0..3) read 0b100.
    let mut ef = cube(&mut bdd, CUR_BASE, 3, u16::from(ACCURATE))?;
    loop {
        let ef_next = bdd.rename_monotone(ef, &cur_to_next)?;
        let step = bdd.and(relation, ef_next)?;
        let pre = bdd.exists(step, &next_and_input)?;
        let grown = bdd.or(ef, pre)?;
        if grown == ef {
            break;
        }
        ef = grown;
    }
    let not_ef = bdd.not(ef)?;
    let stuck = bdd.and(reached, not_ef)?;

    Ok(SymbolicCrossCheck {
        explicit_reachable: ts.states().len(),
        symbolic_reachable,
        all_reach_accurate: stuck == BddRef::FALSE,
        bdd_nodes: bdd.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_proves_all_invariants() {
        let report = check(&ControllerSpec::adaptive());
        assert!(
            report.proven(),
            "adaptive violated: {}",
            report.violations[0]
        );
        assert!(report.states_explored > 1);
        assert!(report.transitions >= report.states_explored);
    }

    #[test]
    fn adaptive_with_watchdog_proves_all_invariants() {
        let report = check(&ControllerSpec::adaptive_with_watchdog(3));
        assert!(report.proven(), "violated: {}", report.violations[0]);
    }

    #[test]
    fn watchdogged_single_mode_proves_all_invariants() {
        for level in [AccuracyLevel::Level1, AccuracyLevel::Level3] {
            let report = check(&ControllerSpec::single_mode_with_watchdog(level, 3));
            assert!(
                report.proven(),
                "single-mode({level:?}) violated: {}",
                report.violations[0]
            );
        }
    }

    #[test]
    fn unprotected_single_mode_livelocks() {
        let spec = ControllerSpec::single_mode_unprotected(AccuracyLevel::Level1);
        let report = check(&spec);
        assert!(!report.proven(), "the watchdog must be load-bearing");
        let liveness = report
            .violations
            .iter()
            .find(|v| v.property.contains("liveness"))
            .expect("liveness must fail without escalation");
        assert!(liveness.replay(&spec), "counterexample must replay");
        let livelock = report
            .violations
            .iter()
            .find(|v| v.property.contains("livelock"))
            .expect("rollback livelock must be found");
        assert!(livelock.replay(&spec));
    }

    #[test]
    fn inverted_escalation_mutant_yields_replayable_counterexamples() {
        let spec = ControllerSpec::inverted_escalation_mutant();
        let report = check(&spec);
        assert!(!report.proven(), "the mutant must be caught");
        let monotone = report
            .violations
            .iter()
            .find(|v| v.property.contains("monotone"))
            .expect("inverted escalation violates monotonicity");
        assert!(
            monotone.detail.contains("rollback lowered the level"),
            "{}",
            monotone.detail
        );
        assert!(monotone.replay(&spec), "counterexample must replay");
        // The rendered trace is a concrete decision sequence.
        let rendered = monotone.to_string();
        assert!(rendered.contains("--[damage]-->"), "{rendered}");
    }

    #[test]
    fn tampered_traces_do_not_replay() {
        let spec = ControllerSpec::inverted_escalation_mutant();
        let report = check(&spec);
        let mut cx = report.violations[0].clone();
        assert!(cx.replay(&spec));
        // Against a different controller the trace must not replay.
        assert!(!cx.replay(&ControllerSpec::adaptive()));
        // A corrupted post-state must be rejected.
        if let Some(last) = cx.trace.last_mut() {
            last.to.level = (last.to.level + 1) % 5;
        }
        assert!(!cx.replay(&spec));
    }

    #[test]
    fn reachable_states_keep_level_at_or_above_floor() {
        for spec in [
            ControllerSpec::adaptive(),
            ControllerSpec::adaptive_with_watchdog(2),
            ControllerSpec::single_mode_with_watchdog(AccuracyLevel::Level2, 3),
        ] {
            let ts = TransitionSystem::explore(&spec);
            for s in ts.states() {
                assert!(s.level >= s.floor, "{}: {s}", spec.name());
            }
        }
    }

    #[test]
    fn symbolic_backend_agrees_with_explicit_exploration() {
        for spec in [
            ControllerSpec::adaptive(),
            ControllerSpec::adaptive_with_watchdog(3),
            ControllerSpec::single_mode_with_watchdog(AccuracyLevel::Level1, 3),
            ControllerSpec::inverted_escalation_mutant(),
        ] {
            let cc = symbolic_cross_check(&spec).expect("tiny state space");
            assert!(
                cc.counts_agree(),
                "{}: explicit {} != symbolic {}",
                spec.name(),
                cc.explicit_reachable,
                cc.symbolic_reachable
            );
        }
    }

    #[test]
    fn symbolic_ef_accurate_separates_protected_from_unprotected() {
        let protected = symbolic_cross_check(&ControllerSpec::single_mode_with_watchdog(
            AccuracyLevel::Level1,
            3,
        ))
        .expect("tiny state space");
        assert!(protected.all_reach_accurate);

        let adaptive = symbolic_cross_check(&ControllerSpec::adaptive()).expect("tiny");
        assert!(adaptive.all_reach_accurate);

        let unprotected = symbolic_cross_check(&ControllerSpec::single_mode_unprotected(
            AccuracyLevel::Level1,
        ))
        .expect("tiny state space");
        assert!(
            !unprotected.all_reach_accurate,
            "an unprotected single mode can never leave its level"
        );
    }

    #[test]
    fn liveness_bound_is_tight_enough_to_terminate() {
        // Sanity: the explored systems stay tiny, so exhaustive
        // per-state liveness walks are cheap.
        for spec in [
            ControllerSpec::adaptive(),
            ControllerSpec::single_mode_with_watchdog(AccuracyLevel::Level1, 3),
        ] {
            let ts = TransitionSystem::explore(&spec);
            assert!(ts.states().len() <= 200, "{}", ts.states().len());
            assert!(ts.edges().len() <= 800);
        }
    }
}
