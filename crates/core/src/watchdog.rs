//! Runner watchdog: guards, divergence detection, checkpointed
//! recovery, and escalation.
//!
//! Approximate hardware occasionally fails in ways the strategies'
//! objective-based monitoring cannot absorb: a fault flips a high bit
//! and the iterate blows up, or sustained upsets push the objective
//! uphill for many consecutive iterations. The watchdog wraps the
//! runner's commit loop with four defenses:
//!
//! 1. **Guards** — the exact monitoring quantities (objective and
//!    parameter vector) are checked for NaN/Inf and, optionally, for
//!    magnitude overflow before an iterate can be committed.
//! 2. **Divergence detection** — an objective that rises for K
//!    consecutive iterations trips the watchdog even though each
//!    individual step looked plausible.
//! 3. **Checkpointed recovery** — a bounded ring buffer holds the last
//!    few *committed* states; a tripped guard restores the most recent
//!    checkpoint instead of continuing from a corrupt iterate.
//! 4. **Escalation** — after R consecutive rollbacks (strategy- or
//!    watchdog-initiated) the accuracy level is forced one step toward
//!    exact and pinned there, breaking fault-induced livelock.
//!
//! The [`Default`] configuration enables only the NaN/Inf guards, which
//! can never fire on a healthy datapath — fault-free runs are
//! bit-identical with or without the watchdog. Energy accounting is
//! deliberately untouched by recovery: discarded iterations stay
//! charged, exactly as the hardware would have spent the energy.

/// Configuration of the runner watchdog (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// Reject iterates whose objective or parameters are NaN/Inf.
    pub guard_non_finite: bool,
    /// Reject iterates whose objective or parameter magnitude exceeds
    /// this bound (`None` disables the overflow guard).
    pub overflow_threshold: Option<f64>,
    /// Trip after this many consecutive objective increases (`None`
    /// disables divergence detection).
    pub divergence_window: Option<usize>,
    /// Take a checkpoint every this many *committed* iterations
    /// (0 disables checkpointing).
    pub checkpoint_interval: usize,
    /// Maximum number of checkpoints retained in the ring buffer: once
    /// full, taking a new checkpoint evicts the oldest (surfaced as
    /// [`RecoveryTelemetry::checkpoints_evicted`]), so a long run's
    /// memory footprint stays bounded no matter how many checkpoints it
    /// takes.
    pub checkpoint_capacity: usize,
    /// Force the level one step toward exact after this many
    /// consecutive rollbacks (`None` disables escalation).
    pub escalation_threshold: Option<usize>,
    /// Per-run iteration deadline: the loop stops after this many
    /// iterations even if the method's own `MAX_ITER` is larger
    /// (`None` defers entirely to the method). A run cut off by the
    /// deadline reports `converged == false` and classifies as
    /// [`Failed`](crate::Outcome::Failed) — the solver service uses
    /// this as its per-attempt deadline enforcement.
    pub iteration_budget: Option<usize>,
}

impl Default for WatchdogConfig {
    /// Guards only: NaN/Inf rejection, no divergence detection, no
    /// checkpoints, no escalation. Fault-free runs are unaffected.
    fn default() -> Self {
        Self {
            guard_non_finite: true,
            overflow_threshold: None,
            divergence_window: None,
            checkpoint_interval: 0,
            checkpoint_capacity: 4,
            escalation_threshold: None,
            iteration_budget: None,
        }
    }
}

impl WatchdogConfig {
    /// Full protection, tuned for fault-injection studies: overflow
    /// guard at 10³⁰, divergence after 5 rising iterations, a
    /// checkpoint every 5 committed iterations (ring of 4), and
    /// escalation after 3 consecutive rollbacks.
    #[must_use]
    pub fn resilient() -> Self {
        Self {
            guard_non_finite: true,
            overflow_threshold: Some(1e30),
            divergence_window: Some(5),
            checkpoint_interval: 5,
            checkpoint_capacity: 4,
            escalation_threshold: Some(3),
            iteration_budget: None,
        }
    }

    /// This configuration with a per-run iteration deadline (see
    /// [`iteration_budget`](Self::iteration_budget)).
    #[must_use]
    pub fn with_deadline(mut self, iterations: usize) -> Self {
        self.iteration_budget = Some(iterations);
        self
    }

    /// Whether any protection beyond the plain strategy loop is active.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.guard_non_finite
            || self.overflow_threshold.is_some()
            || self.divergence_window.is_some()
            || self.checkpoint_interval > 0
            || self.escalation_threshold.is_some()
            || self.iteration_budget.is_some()
    }
}

/// Recovery events observed during one run, surfaced in
/// [`RunReport`](crate::RunReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryTelemetry {
    /// NaN/Inf or overflow guard trips.
    pub guard_trips: usize,
    /// Divergence-window trips.
    pub divergence_trips: usize,
    /// Checkpoints written into the ring buffer.
    pub checkpoints_taken: usize,
    /// Checkpoints evicted from the full ring to make room for newer
    /// ones ([`WatchdogConfig::checkpoint_capacity`] bounds the ring).
    pub checkpoints_evicted: usize,
    /// Restores from a checkpoint after a hard failure.
    pub restores: usize,
    /// Forced level escalations toward exact.
    pub escalations: usize,
}

impl RecoveryTelemetry {
    /// Whether any recovery machinery fired during the run.
    #[must_use]
    pub fn any(&self) -> bool {
        self.guard_trips > 0
            || self.divergence_trips > 0
            || self.checkpoints_taken > 0
            || self.restores > 0
            || self.escalations > 0
    }

    /// Whether the run needed an actual intervention — a guard or
    /// divergence trip, a restore, or a forced escalation. Routine
    /// checkpointing (taken/evicted) does not count: a clean run that
    /// only snapshots state is not degraded.
    #[must_use]
    pub fn degrading(&self) -> bool {
        self.guard_trips > 0
            || self.divergence_trips > 0
            || self.restores > 0
            || self.escalations > 0
    }
}

impl std::fmt::Display for RecoveryTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "guards {}, divergences {}, checkpoints {} ({} evicted), restores {}, escalations {}",
            self.guard_trips,
            self.divergence_trips,
            self.checkpoints_taken,
            self.checkpoints_evicted,
            self.restores,
            self.escalations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_guards_only() {
        let c = WatchdogConfig::default();
        assert!(c.guard_non_finite);
        assert!(c.overflow_threshold.is_none());
        assert!(c.divergence_window.is_none());
        assert_eq!(c.checkpoint_interval, 0);
        assert!(c.escalation_threshold.is_none());
        assert!(c.iteration_budget.is_none());
        assert!(c.is_active());
    }

    #[test]
    fn with_deadline_sets_the_iteration_budget() {
        let c = WatchdogConfig::default().with_deadline(25);
        assert_eq!(c.iteration_budget, Some(25));
        let inactive = WatchdogConfig {
            guard_non_finite: false,
            ..WatchdogConfig::default()
        };
        assert!(!inactive.is_active());
        assert!(inactive.with_deadline(10).is_active());
    }

    #[test]
    fn degrading_ignores_routine_checkpointing() {
        let mut t = RecoveryTelemetry {
            checkpoints_taken: 7,
            checkpoints_evicted: 3,
            ..RecoveryTelemetry::default()
        };
        assert!(t.any());
        assert!(!t.degrading());
        t.restores = 1;
        assert!(t.degrading());
    }

    #[test]
    fn resilient_config_enables_everything() {
        let c = WatchdogConfig::resilient();
        assert!(c.overflow_threshold.is_some());
        assert!(c.divergence_window.is_some());
        assert!(c.checkpoint_interval > 0);
        assert!(c.escalation_threshold.is_some());
    }

    #[test]
    fn telemetry_any_reflects_events() {
        let mut t = RecoveryTelemetry::default();
        assert!(!t.any());
        t.restores = 1;
        assert!(t.any());
        assert!(t.to_string().contains("restores 1"));
    }
}
