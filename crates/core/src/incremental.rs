//! The incremental reconfiguration strategy (paper §4.1).
//!
//! Accuracy starts at the lowest level and only ever moves to the
//! adjacent higher level, driven by three schemes:
//!
//! * **gradient scheme** — error *prevention* via the direction
//!   criterion: reconfigure whenever `∇f(xᵏ⁻¹)ᵀ(xᵏ − xᵏ⁻¹) > 0` (the
//!   step and the descent direction make an obtuse angle);
//! * **quality scheme** — error prevention via the update criterion:
//!   reconfigure whenever the estimated per-iteration error `‖xᵏ‖·εᵢ`
//!   exceeds the inter-iterate distance `‖xᵏ − xᵏ⁻¹‖`;
//! * **function scheme** — error *recovery*: if `f(xᵏ) > f(xᵏ⁻¹)` the
//!   iteration is rolled back and the accuracy raised.

use approx_arith::AccuracyLevel;
use approx_linalg::vector;

use crate::characterize::CharacterizationTable;
use crate::strategy::{Decision, IterationObservation, ReconfigStrategy};

/// Which reading of the (tersely printed) quality-scheme condition to
/// use. The strategy's behaviour with both is studied in the ablation
/// bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QualitySchemeVariant {
    /// Reconfigure when `‖xᵏ‖·εᵢ > ‖xᵏ − xᵏ⁻¹‖` — the paper's prose:
    /// "the estimated error is bigger than the distance (ℓ2 norm) of two
    /// iterations".
    #[default]
    StepDistance,
    /// Reconfigure when `|f(xᵏ) − f(xᵏ⁻¹)| < ‖xᵏ‖·εᵢ` — the boxed
    /// formula's reading: the objective's progress is smaller than the
    /// estimated error, i.e. progress is lost in approximation noise.
    ObjectiveDecrease,
}

/// Configuration of the incremental strategy's schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalConfig {
    /// Enable the gradient (direction-error) scheme.
    pub gradient_scheme: bool,
    /// Enable the quality (update-error) scheme.
    pub quality_scheme: bool,
    /// Enable the function (recovery/rollback) scheme.
    pub function_scheme: bool,
    /// Which quality-scheme condition to apply.
    pub quality_variant: QualitySchemeVariant,
    /// Multiplier on the characterized update error in the quality
    /// scheme's comparison. The characterized ε includes the datapath's
    /// quantization noise, but the observed inter-iterate distances are
    /// themselves quantized onto the same grid, so comparing at full
    /// scale double-counts that component; 0.5 compares against the
    /// systematic-bias half only.
    pub quality_margin: f64,
}

impl Default for IncrementalConfig {
    /// All three schemes enabled with the step-distance quality variant —
    /// the paper's configuration.
    fn default() -> Self {
        Self {
            gradient_scheme: true,
            quality_scheme: true,
            function_scheme: true,
            quality_variant: QualitySchemeVariant::StepDistance,
            quality_margin: 0.5,
        }
    }
}

/// The incremental strategy.
///
/// # Example
///
/// ```
/// use approx_arith::AccuracyLevel;
/// use approxit::{IncrementalStrategy, ReconfigStrategy};
///
/// let strategy = IncrementalStrategy::new([0.5, 0.2, 0.05, 0.01, 0.0]);
/// assert_eq!(strategy.initial_level(), AccuracyLevel::Level1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalStrategy {
    quality_errors: [f64; 5],
    config: IncrementalConfig,
    gradient_tolerance: f64,
}

impl IncrementalStrategy {
    /// Create the strategy from the offline-characterized per-mode
    /// quality errors `εᵢ` (Definition 1), with the default scheme
    /// configuration.
    ///
    /// # Panics
    /// Panics if any error is negative or non-finite.
    #[must_use]
    pub fn new(quality_errors: [f64; 5]) -> Self {
        Self::with_config(quality_errors, IncrementalConfig::default())
    }

    /// Create the strategy with an explicit scheme configuration (for
    /// ablations).
    ///
    /// # Panics
    /// Panics if any error is negative or non-finite.
    #[must_use]
    pub fn with_config(quality_errors: [f64; 5], config: IncrementalConfig) -> Self {
        assert!(
            quality_errors.iter().all(|e| e.is_finite() && *e >= 0.0),
            "quality errors must be non-negative"
        );
        Self {
            quality_errors,
            config,
            gradient_tolerance: 0.05,
        }
    }

    /// Set the relative gradient-norm tolerance below which a frozen
    /// iterate at an approximate level is accepted as converged (the
    /// direction-criterion check of the convergence veto). Default 0.05.
    ///
    /// # Panics
    /// Panics if `tolerance` is not positive.
    #[must_use]
    pub fn with_gradient_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "gradient tolerance must be positive");
        self.gradient_tolerance = tolerance;
        self
    }

    /// Create the strategy directly from an offline characterization,
    /// using the parameter-space update errors (the `εᵏ` of the paper's
    /// update-error criterion, which the quality scheme compares against
    /// the inter-iterate distance).
    #[must_use]
    pub fn from_characterization(table: &CharacterizationTable) -> Self {
        Self::new(table.update_errors)
    }

    fn escalation(&self, level: AccuracyLevel) -> Decision {
        level
            .next_higher()
            .map_or(Decision::Keep, Decision::SwitchTo)
    }
}

impl ReconfigStrategy for IncrementalStrategy {
    fn name(&self) -> &str {
        "incremental"
    }

    /// "We always start with configuring approximate components at the
    /// lowest accuracy level."
    fn initial_level(&self) -> AccuracyLevel {
        AccuracyLevel::Level1
    }

    fn decide(&mut self, obs: &IterationObservation<'_>) -> Decision {
        // Once fully accurate there is nothing left to escalate to, and
        // the convergence of the underlying method takes over.
        if obs.level.is_accurate() {
            return Decision::Keep;
        }

        // Function scheme (recovery): the objective went up — roll the
        // iteration back and raise accuracy.
        if self.config.function_scheme && obs.objective_curr > obs.objective_prev {
            let next = obs
                .level
                .next_higher()
                .expect("approximate levels always have a higher neighbour");
            return Decision::RollbackAndSwitch(next);
        }

        // Gradient scheme (direction criterion, Proposition 1).
        if self.config.gradient_scheme {
            if let Some(grad) = obs.gradient_prev {
                let movement: Vec<f64> = obs
                    .params_curr
                    .iter()
                    .zip(obs.params_prev)
                    .map(|(&c, &p)| c - p)
                    .collect();
                if vector::dot_exact(grad, &movement) > 0.0 {
                    return self.escalation(obs.level);
                }
            }
        }

        // Quality scheme (update criterion).
        if self.config.quality_scheme {
            let eps = self.quality_errors[obs.level.index()] * self.config.quality_margin;
            let triggered = match self.config.quality_variant {
                QualitySchemeVariant::StepDistance => {
                    let estimated = vector::norm2_exact(obs.params_curr) * eps;
                    let step = vector::dist2_exact(obs.params_curr, obs.params_prev);
                    estimated > step
                }
                QualitySchemeVariant::ObjectiveDecrease => {
                    let estimated = vector::norm2_exact(obs.params_curr) * eps;
                    (obs.objective_curr - obs.objective_prev).abs() < estimated
                }
            };
            if triggered {
                return self.escalation(obs.level);
            }
        }

        Decision::Keep
    }

    /// A frozen iterate at an approximate level is only trusted when the
    /// exact gradient has genuinely collapsed (Proposition 1: a point
    /// with a large gradient is not a stationary point, so stopping
    /// there would be the "falsely stopped" failure the function scheme
    /// exists to catch). Methods without gradients are accepted as-is.
    fn convergence_veto(&mut self, obs: &IterationObservation<'_>) -> Option<Decision> {
        if obs.level.is_accurate() {
            return None;
        }
        let grad = obs.gradient_curr?;
        let ratio = vector::norm2_exact(grad) / obs.initial_gradient_norm.max(1e-300);
        if ratio > self.gradient_tolerance {
            Some(Decision::SwitchTo(
                obs.level
                    .next_higher()
                    .expect("approximate levels have a higher neighbour"),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: [f64; 5] = [0.5, 0.2, 0.05, 0.01, 0.0];

    fn obs<'a>(
        level: AccuracyLevel,
        f_prev: f64,
        f_curr: f64,
        params_prev: &'a [f64],
        params_curr: &'a [f64],
        grad_prev: Option<&'a [f64]>,
    ) -> IterationObservation<'a> {
        IterationObservation {
            iteration: 1,
            level,
            objective_prev: f_prev,
            objective_curr: f_curr,
            params_prev,
            params_curr,
            gradient_prev: grad_prev,
            gradient_curr: None,
            initial_gradient_norm: 1.0,
        }
    }

    #[test]
    fn starts_at_level1() {
        assert_eq!(
            IncrementalStrategy::new(EPS).initial_level(),
            AccuracyLevel::Level1
        );
    }

    #[test]
    fn function_scheme_rolls_back_on_objective_increase() {
        let mut s = IncrementalStrategy::new(EPS);
        let d = s.decide(&obs(
            AccuracyLevel::Level2,
            1.0,
            1.5, // objective went UP
            &[0.0, 0.0],
            &[10.0, 0.0],
            None,
        ));
        assert_eq!(d, Decision::RollbackAndSwitch(AccuracyLevel::Level3));
    }

    #[test]
    fn gradient_scheme_fires_on_obtuse_direction() {
        let mut s = IncrementalStrategy::new(EPS);
        // Moving along +x while the gradient also points along +x:
        // ∇f·Δx > 0 → ascent direction → escalate.
        let d = s.decide(&obs(
            AccuracyLevel::Level1,
            1.0,
            0.9,
            &[0.0, 0.0],
            &[100.0, 0.0], // large step so the quality scheme stays quiet
            Some(&[1.0, 0.0]),
        ));
        assert_eq!(d, Decision::SwitchTo(AccuracyLevel::Level2));
    }

    #[test]
    fn quality_scheme_fires_when_step_is_below_noise() {
        let mut s = IncrementalStrategy::new(EPS);
        // ‖x‖·ε₁ = 10·0.5 = 5 > ‖Δx‖ = 0.1 → escalate.
        let d = s.decide(&obs(
            AccuracyLevel::Level1,
            1.0,
            0.9,
            &[10.0, 0.0],
            &[10.1, 0.0],
            Some(&[-1.0, 0.0]), // descent-aligned, gradient scheme quiet
        ));
        assert_eq!(d, Decision::SwitchTo(AccuracyLevel::Level2));
    }

    #[test]
    fn healthy_iteration_keeps_mode() {
        let mut s = IncrementalStrategy::new(EPS);
        // Large descent-aligned step: no scheme fires.
        let d = s.decide(&obs(
            AccuracyLevel::Level1,
            1.0,
            0.5,
            &[1.0, 1.0],
            &[-1.0, -1.0],
            Some(&[1.0, 1.0]), // grad·Δ = -4 < 0
        ));
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn accurate_mode_is_terminal() {
        let mut s = IncrementalStrategy::new(EPS);
        let d = s.decide(&obs(
            AccuracyLevel::Accurate,
            1.0,
            2.0, // even a bad iteration
            &[0.0],
            &[0.0],
            None,
        ));
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn disabled_schemes_do_not_fire() {
        let config = IncrementalConfig {
            gradient_scheme: false,
            quality_scheme: false,
            function_scheme: false,
            quality_variant: QualitySchemeVariant::StepDistance,
            quality_margin: 1.0,
        };
        let mut s = IncrementalStrategy::with_config(EPS, config);
        let d = s.decide(&obs(
            AccuracyLevel::Level1,
            1.0,
            5.0, // would trigger function scheme
            &[10.0, 0.0],
            &[10.0, 0.0], // would trigger quality scheme
            Some(&[1.0, 0.0]),
        ));
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn objective_decrease_variant_fires_on_stalled_progress() {
        let config = IncrementalConfig {
            gradient_scheme: false,
            quality_scheme: true,
            function_scheme: false,
            quality_variant: QualitySchemeVariant::ObjectiveDecrease,
            quality_margin: 1.0,
        };
        let mut s = IncrementalStrategy::with_config(EPS, config);
        // |Δf| = 0.001 < ‖x‖·ε = 5 → escalate.
        let d = s.decide(&obs(
            AccuracyLevel::Level1,
            1.0,
            0.999,
            &[10.0, 0.0],
            &[0.0, 10.0],
            None,
        ));
        assert_eq!(d, Decision::SwitchTo(AccuracyLevel::Level2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_errors_panic() {
        let _ = IncrementalStrategy::new([0.1, -0.1, 0.0, 0.0, 0.0]);
    }
}
