//! Property-based tests over the LP, the lookup table, and the
//! strategies' decision functions.
//!
//! Seed-driven on the in-repo `Pcg32` so the suite is hermetic and
//! bit-reproducible across platforms.

use approx_arith::rng::Pcg32;
use approx_arith::AccuracyLevel;
use approxit::lp::solve_effort_allocation;
use approxit::{
    AdaptiveAngleStrategy, Decision, IncrementalStrategy, IterationObservation, ReconfigStrategy,
    SingleMode,
};

const CASES: usize = 256;

/// Strictly decreasing error vectors with a zero accurate entry, and
/// increasing positive energy vectors.
fn mode_vectors(rng: &mut Pcg32) -> ([f64; 5], [f64; 5]) {
    let mut eps_sorted: Vec<f64> = (0..4).map(|_| rng.uniform(1e-6, 1.0)).collect();
    eps_sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let eps = [
        eps_sorted[0],
        eps_sorted[1],
        eps_sorted[2],
        eps_sorted[3],
        0.0,
    ];
    // Energies: cumulative sums are strictly increasing.
    let mut j = [0.0; 5];
    let mut acc = 0.0;
    for slot in &mut j {
        acc += rng.uniform(0.01, 1.0);
        *slot = acc;
    }
    (eps, j)
}

#[test]
fn lp_always_returns_a_feasible_distribution() {
    let mut rng = Pcg32::seeded(0x19, 0);
    for _ in 0..CASES {
        let (eps, j) = mode_vectors(&mut rng);
        let budget = rng.uniform(0.0, 2.0);
        let w = solve_effort_allocation(&j, &eps, budget);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum {total}");
        assert!(w.iter().all(|&x| x >= 0.0));
        let err: f64 = w.iter().zip(&eps).map(|(a, b)| a * b).sum();
        assert!(err <= budget + 1e-9, "error {err} > budget {budget}");
    }
}

#[test]
fn lp_cost_never_exceeds_the_accurate_mode() {
    let mut rng = Pcg32::seeded(0x11A, 0);
    for _ in 0..CASES {
        let (eps, j) = mode_vectors(&mut rng);
        let budget = rng.uniform(0.0, 2.0);
        let w = solve_effort_allocation(&j, &eps, budget);
        let cost: f64 = w.iter().zip(&j).map(|(a, b)| a * b).sum();
        assert!(cost <= j[4] + 1e-9, "cost {cost} > accurate {}", j[4]);
    }
}

#[test]
fn adaptive_lut_is_a_partition() {
    let mut rng = Pcg32::seeded(0x1A7, 0);
    for _ in 0..CASES {
        let (eps, j) = mode_vectors(&mut rng);
        let budget = rng.uniform(0.0, 2.0);
        let strategy = AdaptiveAngleStrategy::new(eps, j, budget, 1);
        let lut = strategy.lookup_table();
        assert_eq!(lut[0].1, 0.0);
        assert!((lut[4].2 - 90.0).abs() < 1e-9);
        for w in lut.windows(2) {
            assert!((w[0].2 - w[1].1).abs() < 1e-9, "gap in LUT");
            assert!(w[0].2 >= w[0].1 - 1e-12, "negative range");
        }
    }
}

#[test]
fn incremental_decisions_never_lower_accuracy() {
    let mut rng = Pcg32::seeded(0x1DC, 0);
    for _ in 0..CASES {
        let f_prev = rng.uniform(-10.0, 10.0);
        let f_curr = rng.uniform(-10.0, 10.0);
        let px = rng.uniform(-5.0, 5.0);
        let py = rng.uniform(-5.0, 5.0);
        let gx = rng.uniform(-5.0, 5.0);
        let level = AccuracyLevel::from_index(rng.below(5) as usize).expect("valid index");
        let mut s = IncrementalStrategy::new([0.5, 0.2, 0.05, 0.01, 0.0]);
        let params_prev = [0.5f64, -0.5];
        let params_curr = [px, py];
        let grad = [gx, 0.3];
        let obs = IterationObservation {
            iteration: 3,
            level,
            objective_prev: f_prev,
            objective_curr: f_curr,
            params_prev: &params_prev,
            params_curr: &params_curr,
            gradient_prev: Some(&grad),
            gradient_curr: Some(&grad),
            initial_gradient_norm: 1.0,
        };
        match s.decide(&obs) {
            Decision::Keep => {}
            Decision::SwitchTo(next) | Decision::RollbackAndSwitch(next) => {
                assert!(next > level, "incremental lowered accuracy");
            }
        }
    }
}

/// Classify a decision with an *exhaustive* match: adding a variant to
/// [`Decision`] makes this test fail to compile until the coverage
/// argument below is extended to produce it.
fn variant_of(decision: &Decision) -> &'static str {
    match decision {
        Decision::Keep => "Keep",
        Decision::SwitchTo(_) => "SwitchTo",
        Decision::RollbackAndSwitch(_) => "RollbackAndSwitch",
    }
}

#[test]
fn every_decision_variant_is_producible_by_shipped_strategies() {
    use std::collections::BTreeSet;
    let mut produced: BTreeSet<&'static str> = BTreeSet::new();
    let params = [1.0f64, 1.0];
    let grad = [0.5f64, 0.5];
    let obs = |iteration: usize, level, prev: f64, curr: f64| IterationObservation {
        iteration,
        level,
        objective_prev: prev,
        objective_curr: curr,
        params_prev: &params,
        params_curr: &params,
        gradient_prev: Some(&grad),
        gradient_curr: Some(&grad),
        initial_gradient_norm: 1.0,
    };

    // SingleMode: always Keep.
    let mut single = SingleMode::accurate();
    produced.insert(variant_of(&single.decide(&obs(
        1,
        AccuracyLevel::Accurate,
        10.0,
        9.0,
    ))));

    // AdaptiveAngleStrategy: an objective *increase* at an approximate
    // level retires the mode and rolls back.
    let eps = [0.5, 0.2, 0.05, 0.01, 0.0];
    let j = [0.4, 0.6, 0.75, 0.9, 1.0];
    let mut adaptive = AdaptiveAngleStrategy::new(eps, j, 0.3, 1);
    let level = adaptive.initial_level();
    produced.insert(variant_of(&adaptive.decide(&obs(1, level, 10.0, 11.0))));

    // AdaptiveAngleStrategy again: near-converged progress flattens the
    // manifold angle, steering the LUT to a more accurate mode.
    let mut adaptive = AdaptiveAngleStrategy::new(eps, j, 0.3, 1);
    let mut level = adaptive.initial_level();
    let mut f = 10.0f64;
    for i in 1..=40 {
        let f_next = f - 1e-4 * f; // slow progress: flat angle
        let decision = adaptive.decide(&obs(i, level, f, f_next));
        produced.insert(variant_of(&decision));
        match decision {
            Decision::Keep => f = f_next,
            Decision::SwitchTo(next) => {
                level = next;
                f = f_next;
            }
            Decision::RollbackAndSwitch(next) => level = next,
        }
        if produced.len() == 3 {
            break;
        }
    }

    // IncrementalStrategy escalates with SwitchTo on quality stall (a
    // second producer of the same variant, for good measure).
    let mut incremental = IncrementalStrategy::new(eps);
    let lvl = incremental.initial_level();
    produced.insert(variant_of(&incremental.decide(&obs(3, lvl, 10.0, 10.0))));

    assert_eq!(
        produced.into_iter().collect::<Vec<_>>(),
        vec!["Keep", "RollbackAndSwitch", "SwitchTo"],
        "some Decision variant is not producible by any shipped strategy"
    );
}

#[test]
fn adaptive_never_selects_a_retired_mode() {
    // Feed an arbitrary objective trajectory; whenever a level gets
    // retired (objective increase), it must never be selected again.
    let mut rng = Pcg32::seeded(0xAD, 0);
    for _ in 0..CASES {
        let n = 1 + rng.below(29) as usize;
        let f_deltas: Vec<f64> = (0..n).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let mut s = AdaptiveAngleStrategy::new(
            [0.5, 0.2, 0.05, 0.01, 0.0],
            [0.4, 0.6, 0.75, 0.9, 1.0],
            0.3,
            1,
        );
        let mut level = s.initial_level();
        let mut f = 10.0f64;
        let mut retired_below: usize = 0;
        let params = [1.0f64, 1.0];
        let grad = [0.5f64, 0.5];
        for (i, df) in f_deltas.iter().enumerate() {
            let f_next = (f + df).max(0.1);
            let obs = IterationObservation {
                iteration: i + 1,
                level,
                objective_prev: f,
                objective_curr: f_next,
                params_prev: &params,
                params_curr: &params,
                gradient_prev: Some(&grad),
                gradient_curr: Some(&grad),
                initial_gradient_norm: 1.0,
            };
            if f_next > f && !level.is_accurate() {
                retired_below = retired_below.max(level.index() + 1);
            }
            match s.decide(&obs) {
                Decision::Keep => {
                    f = f_next;
                }
                Decision::SwitchTo(next) => {
                    assert!(
                        next.index() >= retired_below,
                        "selected retired mode {next} (floor {retired_below})"
                    );
                    level = next;
                    f = f_next;
                }
                Decision::RollbackAndSwitch(next) => {
                    assert!(next.index() >= retired_below);
                    level = next;
                    // state rolled back: f unchanged
                }
            }
        }
    }
}
