//! Property-based tests over the LP, the lookup table, and the
//! strategies' decision functions.

use approx_arith::AccuracyLevel;
use approxit::lp::solve_effort_allocation;
use approxit::{
    AdaptiveAngleStrategy, Decision, IncrementalStrategy, IterationObservation, ReconfigStrategy,
};
use proptest::prelude::*;

/// Strictly decreasing error vectors with a zero accurate entry, and
/// increasing positive energy vectors.
fn mode_vectors() -> impl Strategy<Value = ([f64; 5], [f64; 5])> {
    (
        proptest::collection::vec(1e-6f64..1.0, 4),
        proptest::collection::vec(0.01f64..1.0, 5),
    )
        .prop_map(|(raw_eps, raw_j)| {
            // Sort errors descending, append the exact mode's zero.
            let mut eps_sorted = raw_eps;
            eps_sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let eps = [
                eps_sorted[0],
                eps_sorted[1],
                eps_sorted[2],
                eps_sorted[3],
                0.0,
            ];
            // Energies: cumulative sums are strictly increasing.
            let mut j = [0.0; 5];
            let mut acc = 0.0;
            for (slot, r) in j.iter_mut().zip(&raw_j) {
                acc += r;
                *slot = acc;
            }
            (eps, j)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lp_always_returns_a_feasible_distribution(
        (eps, j) in mode_vectors(),
        budget in 0.0f64..2.0,
    ) {
        let w = solve_effort_allocation(&j, &eps, budget);
        let total: f64 = w.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "weights sum {total}");
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        let err: f64 = w.iter().zip(&eps).map(|(a, b)| a * b).sum();
        prop_assert!(err <= budget + 1e-9, "error {err} > budget {budget}");
    }

    #[test]
    fn lp_cost_never_exceeds_the_accurate_mode(
        (eps, j) in mode_vectors(),
        budget in 0.0f64..2.0,
    ) {
        let w = solve_effort_allocation(&j, &eps, budget);
        let cost: f64 = w.iter().zip(&j).map(|(a, b)| a * b).sum();
        prop_assert!(cost <= j[4] + 1e-9, "cost {cost} > accurate {}", j[4]);
    }

    #[test]
    fn adaptive_lut_is_a_partition(
        (eps, j) in mode_vectors(),
        budget in 0.0f64..2.0,
    ) {
        let strategy = AdaptiveAngleStrategy::new(eps, j, budget, 1);
        let lut = strategy.lookup_table();
        prop_assert_eq!(lut[0].1, 0.0);
        prop_assert!((lut[4].2 - 90.0).abs() < 1e-9);
        for w in lut.windows(2) {
            prop_assert!((w[0].2 - w[1].1).abs() < 1e-9, "gap in LUT");
            prop_assert!(w[0].2 >= w[0].1 - 1e-12, "negative range");
        }
    }

    #[test]
    fn incremental_decisions_never_lower_accuracy(
        f_prev in -10.0f64..10.0,
        f_curr in -10.0f64..10.0,
        px in -5.0f64..5.0,
        py in -5.0f64..5.0,
        gx in -5.0f64..5.0,
        level_index in 0usize..5,
    ) {
        let level = AccuracyLevel::from_index(level_index).expect("valid index");
        let mut s = IncrementalStrategy::new([0.5, 0.2, 0.05, 0.01, 0.0]);
        let params_prev = [0.5f64, -0.5];
        let params_curr = [px, py];
        let grad = [gx, 0.3];
        let obs = IterationObservation {
            iteration: 3,
            level,
            objective_prev: f_prev,
            objective_curr: f_curr,
            params_prev: &params_prev,
            params_curr: &params_curr,
            gradient_prev: Some(&grad),
            gradient_curr: Some(&grad),
            initial_gradient_norm: 1.0,
        };
        match s.decide(&obs) {
            Decision::Keep => {}
            Decision::SwitchTo(next) | Decision::RollbackAndSwitch(next) => {
                prop_assert!(next > level, "incremental lowered accuracy");
            }
        }
    }

    #[test]
    fn adaptive_never_selects_a_retired_mode(
        f_deltas in proptest::collection::vec(-0.5f64..0.5, 1..30),
    ) {
        // Feed an arbitrary objective trajectory; whenever a level gets
        // retired (objective increase), it must never be selected again.
        let mut s = AdaptiveAngleStrategy::new(
            [0.5, 0.2, 0.05, 0.01, 0.0],
            [0.4, 0.6, 0.75, 0.9, 1.0],
            0.3,
            1,
        );
        let mut level = s.initial_level();
        let mut f = 10.0f64;
        let mut retired_below: usize = 0;
        let params = [1.0f64, 1.0];
        let grad = [0.5f64, 0.5];
        for (i, df) in f_deltas.iter().enumerate() {
            let f_next = (f + df).max(0.1);
            let obs = IterationObservation {
                iteration: i + 1,
                level,
                objective_prev: f,
                objective_curr: f_next,
                params_prev: &params,
                params_curr: &params,
                gradient_prev: Some(&grad),
                gradient_curr: Some(&grad),
                initial_gradient_norm: 1.0,
            };
            if f_next > f && !level.is_accurate() {
                retired_below = retired_below.max(level.index() + 1);
            }
            match s.decide(&obs) {
                Decision::Keep => {
                    f = f_next;
                }
                Decision::SwitchTo(next) => {
                    prop_assert!(
                        next.index() >= retired_below,
                        "selected retired mode {next} (floor {retired_below})"
                    );
                    level = next;
                    f = f_next;
                }
                Decision::RollbackAndSwitch(next) => {
                    prop_assert!(next.index() >= retired_below);
                    level = next;
                    // state rolled back: f unchanged
                }
            }
        }
    }
}
