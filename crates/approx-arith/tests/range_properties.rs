//! Randomized-DAG property tests for the static range analyzer.
//!
//! Each case builds a random expression DAG over declared input ranges,
//! analyzes it, and checks the two soundness obligations the analyzer
//! makes:
//!
//! * both abstract domains (pure interval and affine) contain every
//!   sampled concrete evaluation — and so does their intersection;
//! * for *linear* DAGs (no multiplication remainder, no division
//!   fallback) the affine domain's bound is contained in the interval
//!   domain's, i.e. tracking correlation never loses precision.
//!
//! Like the adder property suite, these are seed-driven over the
//! in-repo [`Pcg32`] so the tests stay hermetic and reproducible.

use approx_arith::rng::Pcg32;
use approx_arith::{ExprId, QFormat, RangeConfig, RangeGraph};

const DAGS: usize = 60;
const SAMPLES_PER_DAG: usize = 80;

/// A randomly grown DAG plus the recipe to evaluate it concretely.
struct RandomDag {
    graph: RangeGraph,
    /// Input declarations: `(lo, hi)` per input, in creation order.
    inputs: Vec<(f64, f64)>,
    /// Evaluation plan: one op per non-input node, referencing node
    /// indices in creation order.
    plan: Vec<Op>,
    /// All node ids in creation order (inputs first is NOT guaranteed —
    /// index i of `values` during eval corresponds to ids[i]).
    ids: Vec<ExprId>,
}

enum Op {
    Input(usize),
    Const(f64),
    Add(usize, usize),
    Sub(usize, usize),
    Neg(usize),
    Mul(usize, usize),
    SumOf(usize, usize),
}

fn grow(rng: &mut Pcg32, nodes: usize, linear_only: bool) -> RandomDag {
    let mut graph = RangeGraph::new();
    let mut inputs = Vec::new();
    let mut plan = Vec::new();
    let mut ids: Vec<ExprId> = Vec::new();

    // Seed with two inputs so binary ops always have operands.
    for i in 0..2 {
        let lo = rng.uniform(-4.0, 0.0);
        let hi = lo + rng.uniform(0.5, 4.0);
        ids.push(graph.input(format!("in{i}"), lo, hi));
        inputs.push((lo, hi));
        plan.push(Op::Input(i));
    }

    while ids.len() < nodes {
        let pick = |rng: &mut Pcg32, n: usize| (rng.next_u64() as usize) % n;
        let n = ids.len();
        let choice = rng.next_u64() % if linear_only { 5 } else { 7 };
        let (id, op) = match choice {
            0 => {
                let lo = rng.uniform(-4.0, 0.0);
                let hi = lo + rng.uniform(0.5, 4.0);
                let idx = inputs.len();
                inputs.push((lo, hi));
                (graph.input(format!("in{idx}"), lo, hi), Op::Input(idx))
            }
            1 => {
                let c = rng.uniform(-3.0, 3.0);
                (graph.constant(c), Op::Const(c))
            }
            2 => {
                let (a, b) = (pick(rng, n), pick(rng, n));
                (graph.add(ids[a], ids[b]), Op::Add(a, b))
            }
            3 => {
                let (a, b) = (pick(rng, n), pick(rng, n));
                (graph.sub(ids[a], ids[b]), Op::Sub(a, b))
            }
            4 => {
                let a = pick(rng, n);
                (graph.neg(ids[a]), Op::Neg(a))
            }
            5 => {
                let (a, b) = (pick(rng, n), pick(rng, n));
                (graph.mul(ids[a], ids[b]), Op::Mul(a, b))
            }
            _ => {
                let a = pick(rng, n);
                let k = 1 + (rng.next_u64() as usize) % 5;
                (graph.sum_of(ids[a], k), Op::SumOf(a, k))
            }
        };
        ids.push(id);
        plan.push(op);
    }
    RandomDag {
        graph,
        inputs,
        plan,
        ids,
    }
}

/// Evaluate the DAG concretely for one random input assignment.
///
/// `SumOf` models `count` *independent* draws of its item; since the
/// analyzer's bound covers any draws, evaluating all copies at the one
/// sampled value is a valid (if not adversarial) concretization.
fn eval(dag: &RandomDag, assignment: &[f64]) -> Vec<f64> {
    let mut values: Vec<f64> = Vec::with_capacity(dag.plan.len());
    for op in &dag.plan {
        let v = match *op {
            Op::Input(i) => assignment[i],
            Op::Const(c) => c,
            Op::Add(a, b) => values[a] + values[b],
            Op::Sub(a, b) => values[a] - values[b],
            Op::Neg(a) => -values[a],
            Op::Mul(a, b) => values[a] * values[b],
            Op::SumOf(a, k) => values[a] * k as f64,
        };
        values.push(v);
    }
    values
}

fn exact_cfg() -> RangeConfig {
    // Zero slack: the concrete evaluator is real-valued, so the sound
    // comparison is against the slack-free abstraction.
    RangeConfig {
        format: QFormat::Q15_16,
        add_slack: 0.0,
        mul_slack: 0.0,
    }
}

#[test]
fn both_domains_contain_sampled_concrete_evaluations() {
    let mut rng = Pcg32::seeded(0xDA6, 0);
    for dag_i in 0..DAGS {
        let dag = grow(&mut rng, 12, false);
        let report = dag.graph.analyze(&exact_cfg());
        for _ in 0..SAMPLES_PER_DAG {
            let assignment: Vec<f64> = dag
                .inputs
                .iter()
                .map(|&(lo, hi)| rng.uniform(lo, hi))
                .collect();
            let values = eval(&dag, &assignment);
            for (i, &id) in dag.ids.iter().enumerate() {
                let v = values[i];
                let (iv, af) = report.domain_bounds(id);
                let tol = 1e-9 * (1.0 + v.abs());
                assert!(
                    iv.lo - tol <= v && v <= iv.hi + tol,
                    "dag {dag_i}: interval domain {iv} misses concrete {v} at node {i}"
                );
                assert!(
                    af.lo - tol <= v && v <= af.hi + tol,
                    "dag {dag_i}: affine domain {af} misses concrete {v} at node {i}"
                );
                let combined = report.interval(id);
                assert!(
                    combined.lo - tol <= v && v <= combined.hi + tol,
                    "dag {dag_i}: combined bound {combined} misses concrete {v} at node {i}"
                );
            }
        }
    }
}

#[test]
fn affine_bounds_are_contained_in_interval_bounds_on_linear_dags() {
    // On DAGs with only linear ops the affine domain is at least as
    // tight as plain intervals: correlation tracking can only shrink
    // the bound, never widen it.
    let mut rng = Pcg32::seeded(0xAFF1, 1);
    for dag_i in 0..DAGS {
        let dag = grow(&mut rng, 14, true);
        let report = dag.graph.analyze(&exact_cfg());
        for (i, &id) in dag.ids.iter().enumerate() {
            let (iv, af) = report.domain_bounds(id);
            let tol = 1e-9 * (1.0 + iv.abs_bound());
            assert!(
                af.lo >= iv.lo - tol && af.hi <= iv.hi + tol,
                "dag {dag_i} node {i}: affine {af} not within interval {iv}"
            );
        }
    }
}

#[test]
fn combined_bound_is_never_looser_than_either_domain() {
    let mut rng = Pcg32::seeded(0xC0B, 2);
    for _ in 0..DAGS {
        let dag = grow(&mut rng, 12, false);
        let report = dag.graph.analyze(&exact_cfg());
        for &id in &dag.ids {
            let (iv, af) = report.domain_bounds(id);
            let combined = report.interval(id);
            assert!(combined.lo >= iv.lo.max(af.lo) - 1e-12);
            assert!(combined.hi <= iv.hi.min(af.hi) + 1e-12);
        }
    }
}
