//! Property tests for the batched slice kernels.
//!
//! The contract of [`ArithContext`]'s slice kernels is that an override
//! is an *optimization*, never a semantic change: for every fixed-point
//! format, low-part policy, accuracy level and input slice, the batched
//! kernel must produce bit-identical values, identical [`OpCounts`] and
//! bit-identical metered energy to the scalar-loop trait defaults.
//!
//! [`ScalarPath`] wraps a context and deliberately does **not** forward
//! the slice kernels, so it always exercises the trait defaults — making
//! it the executable specification these tests compare against.

use approx_arith::rng::Pcg32;
use approx_arith::{
    AccuracyLevel, ArithContext, EnergyProfile, LowPartPolicy, OpCounts, QFormat, QcsAdder,
    QcsContext, ScalarPath,
};

fn profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

/// One hardware configuration under test.
#[derive(Clone, Copy)]
struct Config {
    format: QFormat,
    approx_bits: [u32; 4],
    policy: LowPartPolicy,
}

impl Config {
    fn label(&self) -> String {
        format!("{} {:?} {:?}", self.format, self.approx_bits, self.policy)
    }
}

/// The format sweep: narrow (32-bit), default (48-bit) and wide
/// (64-bit, where raw values exceed f64's 2⁵³ integer range and the
/// kernels must requantize between fused operations), each under both
/// low-part policies.
fn configs() -> Vec<Config> {
    let mut out = Vec::new();
    for policy in [LowPartPolicy::Zero, LowPartPolicy::Or] {
        out.push(Config {
            format: QFormat::Q15_16,
            approx_bits: [20, 15, 10, 5],
            policy,
        });
        out.push(Config {
            format: QFormat::Q31_16,
            approx_bits: [20, 15, 10, 5],
            policy,
        });
        out.push(Config {
            format: QFormat::Q31_32,
            approx_bits: [36, 24, 12, 6],
            policy,
        });
    }
    out
}

/// Two contexts with identical hardware: the real one (batched kernels)
/// and the scalar-loop reference.
fn context_pair(cfg: Config, level: AccuracyLevel) -> (QcsContext, ScalarPath<QcsContext>) {
    let make = || {
        let adder = QcsAdder::with_policy(cfg.format.width(), cfg.approx_bits, cfg.policy);
        let mut ctx = QcsContext::new(adder, cfg.format, profile());
        ctx.set_level(level);
        ctx
    };
    (make(), ScalarPath::new(make()))
}

fn random_slice(rng: &mut Pcg32, n: usize, span: f64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            // Mix in exact zeros and sub-resolution values so the
            // kernels see degenerate inputs, not just generic ones.
            match rng.next_u32() % 16 {
                0 => 0.0,
                1 => rng.uniform(-1e-7, 1e-7),
                _ => rng.uniform(-span, span),
            }
        })
        .collect()
}

/// Value span that keeps most (not all) inputs inside the format's
/// range — saturation still occurs occasionally, which both paths must
/// handle identically.
fn span_for(format: QFormat) -> f64 {
    format.max_value() / 64.0
}

fn assert_values_match(fast: &[f64], slow: &[f64], what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: length");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: element {i} differs: batched {a} vs scalar {b}"
        );
    }
}

fn assert_meters_match(fast: &QcsContext, slow: &ScalarPath<QcsContext>, what: &str) {
    let (fc, sc): (OpCounts, OpCounts) = (fast.counts(), slow.counts());
    assert_eq!(fc, sc, "{what}: op counts diverge");
    assert_eq!(
        fast.approx_energy().to_bits(),
        slow.approx_energy().to_bits(),
        "{what}: approximate energy diverges"
    );
    assert_eq!(
        fast.total_energy().to_bits(),
        slow.total_energy().to_bits(),
        "{what}: total energy diverges"
    );
}

const SIZES: [usize; 6] = [0, 1, 2, 3, 17, 64];

/// Run `op` against both contexts for every config × level × size and
/// compare values and meters.
fn check_kernel(
    name: &str,
    mut op: impl FnMut(&mut dyn ArithContext, &mut Pcg32, usize, f64) -> Vec<f64>,
) {
    for cfg in configs() {
        for level in AccuracyLevel::ALL {
            let (mut fast, mut slow) = context_pair(cfg, level);
            for n in SIZES {
                let what = format!("{name} [{} {level:?} n={n}]", cfg.label());
                // Identical streams drive both paths.
                let seed = 0xA11C_E000 + n as u64;
                let mut rng_fast = Pcg32::seeded(seed, 1);
                let mut rng_slow = Pcg32::seeded(seed, 1);
                let span = span_for(cfg.format);
                let out_fast = op(&mut fast, &mut rng_fast, n, span);
                let out_slow = op(&mut slow, &mut rng_slow, n, span);
                assert_values_match(&out_fast, &out_slow, &what);
                assert_meters_match(&fast, &slow, &what);
            }
        }
    }
}

#[test]
fn add_slice_matches_scalar_default() {
    check_kernel("add_slice", |ctx, rng, n, span| {
        let xs = random_slice(rng, n, span);
        let ys = random_slice(rng, n, span);
        let mut out = vec![0.0; n];
        ctx.add_slice(&xs, &ys, &mut out);
        out
    });
}

#[test]
fn sub_slice_matches_scalar_default() {
    check_kernel("sub_slice", |ctx, rng, n, span| {
        let xs = random_slice(rng, n, span);
        let ys = random_slice(rng, n, span);
        let mut out = vec![0.0; n];
        ctx.sub_slice(&xs, &ys, &mut out);
        out
    });
}

#[test]
fn scale_slice_matches_scalar_default() {
    check_kernel("scale_slice", |ctx, rng, n, span| {
        let alpha = rng.uniform(-4.0, 4.0);
        let xs = random_slice(rng, n, span);
        let mut out = vec![0.0; n];
        ctx.scale_slice(alpha, &xs, &mut out);
        out
    });
}

#[test]
fn axpy_slice_matches_scalar_default() {
    check_kernel("axpy_slice", |ctx, rng, n, span| {
        let alpha = rng.uniform(-4.0, 4.0);
        let xs = random_slice(rng, n, span);
        let ys = random_slice(rng, n, span);
        let mut out = vec![0.0; n];
        ctx.axpy_slice(alpha, &xs, &ys, &mut out);
        out
    });
}

#[test]
fn add_assign_slice_matches_scalar_default() {
    check_kernel("add_assign_slice", |ctx, rng, n, span| {
        let xs = random_slice(rng, n, span);
        let mut ys = random_slice(rng, n, span);
        ctx.add_assign_slice(&mut ys, &xs);
        ys
    });
}

#[test]
fn axpy_assign_slice_matches_scalar_default() {
    check_kernel("axpy_assign_slice", |ctx, rng, n, span| {
        let alpha = rng.uniform(-4.0, 4.0);
        let xs = random_slice(rng, n, span);
        let mut ys = random_slice(rng, n, span);
        ctx.axpy_assign_slice(&mut ys, alpha, &xs);
        ys
    });
}

#[test]
fn dot_slice_matches_scalar_default() {
    check_kernel("dot_slice", |ctx, rng, n, span| {
        // Keep the running reduction inside range: a dot product sums
        // n quantized products, so shrink the operand span with n.
        let span = span / (n.max(1) as f64).sqrt();
        let xs = random_slice(rng, n, span);
        let ys = random_slice(rng, n, span);
        vec![ctx.dot_slice(&xs, &ys)]
    });
}

#[test]
fn matvec_slice_matches_scalar_default() {
    check_kernel("matvec_slice", |ctx, rng, n, span| {
        // n rows × 7 columns; span shrinks with the reduction length.
        let cols = 7;
        let span = span / (cols as f64).sqrt();
        let rows = random_slice(rng, n * cols, span);
        let x = random_slice(rng, cols, span);
        let mut out = vec![0.0; n];
        ctx.matvec_slice(&rows, cols, &x, &mut out);
        out
    });
}

#[test]
fn spmv_slice_matches_scalar_default() {
    check_kernel("spmv_slice", |ctx, rng, n, span| {
        // n rows × 9 columns with roughly half the entries stored
        // (including occasional explicit zeros); span shrinks with the
        // worst-case reduction length.
        let cols = 9;
        let span = span / (cols as f64).sqrt();
        let mut values = Vec::new();
        let mut col_idx = Vec::new();
        let mut row_ptr = vec![0usize];
        for _ in 0..n {
            for j in 0..cols {
                if rng.next_u32() % 2 == 0 {
                    values.push(if rng.next_u32() % 16 == 0 {
                        0.0
                    } else {
                        rng.uniform(-span, span)
                    });
                    col_idx.push(j);
                }
            }
            row_ptr.push(values.len());
        }
        let x = random_slice(rng, cols, span);
        let mut out = vec![0.0; n];
        ctx.spmv_slice(&values, &col_idx, &row_ptr, &x, &mut out);
        out
    });
}

#[test]
fn sum_slice_matches_scalar_default() {
    check_kernel("sum_slice", |ctx, rng, n, span| {
        let span = span / (n.max(1) as f64);
        let xs = random_slice(rng, n, span);
        vec![ctx.sum_slice(&xs)]
    });
}

#[test]
fn scalar_reductions_delegate_to_slice_kernels() {
    // `sum` and `dot` are defined as their `_slice` counterparts — the
    // satellite fix for the old double-bookkeeping: one reduction path,
    // one meter charge.
    for cfg in configs() {
        for level in AccuracyLevel::ALL {
            let (mut a, _) = context_pair(cfg, level);
            let (mut b, _) = context_pair(cfg, level);
            let mut rng = Pcg32::seeded(99, 7);
            let xs = random_slice(&mut rng, 23, span_for(cfg.format) / 23.0);
            let ys = random_slice(&mut rng, 23, span_for(cfg.format) / 23.0);
            assert_eq!(a.dot(&xs, &ys).to_bits(), b.dot_slice(&xs, &ys).to_bits());
            assert_eq!(a.sum(&xs).to_bits(), b.sum_slice(&xs).to_bits());
            assert_eq!(a.counts(), b.counts());
            assert_eq!(
                a.total_energy().to_bits(),
                b.total_energy().to_bits(),
                "{} {level:?}",
                cfg.label()
            );
        }
    }
}

#[test]
fn interleaved_kernel_sequences_match() {
    // A realistic solver inner loop mixes kernels and scalar ops; the
    // meters and values must stay in lockstep across a whole sequence,
    // not just per call.
    for cfg in configs() {
        let (mut fast, mut slow) = context_pair(cfg, AccuracyLevel::Level2);
        let mut rng_fast = Pcg32::seeded(4242, 0);
        let mut rng_slow = Pcg32::seeded(4242, 0);
        let span = span_for(cfg.format) / 16.0;
        let drive = |ctx: &mut dyn ArithContext, rng: &mut Pcg32| -> Vec<f64> {
            let mut state = random_slice(rng, 33, span);
            for round in 0..6 {
                let other = random_slice(rng, 33, span);
                let alpha = rng.uniform(-1.5, 1.5);
                ctx.axpy_assign_slice(&mut state, alpha, &other);
                let d = ctx.dot_slice(&state, &other);
                let scalar = ctx.add(d, f64::from(round));
                let mut scaled = vec![0.0; 33];
                ctx.scale_slice(
                    ctx.datapath_format().map_or(0.5, |f| f.resolution()),
                    &state,
                    &mut scaled,
                );
                ctx.add_assign_slice(&mut state, &scaled);
                state[0] = ctx.mul(scalar, 0.25);
            }
            state
        };
        let out_fast = drive(&mut fast, &mut rng_fast);
        let out_slow = drive(&mut slow, &mut rng_slow);
        assert_values_match(&out_fast, &out_slow, &cfg.label());
        assert_meters_match(&fast, &slow, &cfg.label());
    }
}
