//! Property-based tests over the approximate arithmetic substrate.

use approx_arith::{
    AccuracyLevel, Adder, ArithContext, EnergyProfile, EtaIiAdder, LowerOrAdder, QFormat, QcsAdder,
    QcsContext, RippleCarryAdder, WindowedCarryAdder,
};
use proptest::prelude::*;

fn test_profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn loa_high_bits_are_exact_when_no_low_carry(a: u64, b: u64) {
        // If the low parts are zero, LOA must be exact.
        let adder = LowerOrAdder::new(48, 16, false);
        let mask = adder.mask() & !0xFFFF;
        let (a, b) = (a & mask, b & mask);
        let exact = RippleCarryAdder::new(48).add(a, b);
        prop_assert_eq!(adder.add(a, b), exact);
    }

    #[test]
    fn qcs_accurate_equals_rca(a: u64, b: u64) {
        let qcs = QcsAdder::paper_default();
        let rca = RippleCarryAdder::new(32);
        prop_assert_eq!(qcs.add(a, b, AccuracyLevel::Accurate), rca.add(a, b));
    }

    #[test]
    fn qcs_error_never_reaches_high_bits(a: u64, b: u64) {
        // The approximate low part can corrupt at most approx_bits + 1
        // positions (one lost carry); everything above is exact.
        let qcs = QcsAdder::paper_default();
        let rca = RippleCarryAdder::new(32);
        for level in AccuracyLevel::APPROXIMATE {
            let k = qcs.approx_bits(level);
            let approx = qcs.add(a, b, level);
            let exact = rca.add(a, b);
            let diff = (approx as i128 - exact as i128).unsigned_abs();
            // diff is either small (OR overshoot) or one lost carry at 2^k,
            // possibly wrapping the 32-bit ring.
            let ring = 1u128 << 32;
            let dist = diff.min(ring - diff);
            prop_assert!(dist <= 1u128 << (k + 1),
                "level {level}: dist {dist} > 2^{}", k + 1);
        }
    }

    #[test]
    fn eta_block0_always_exact(a in 0u64..256, b in 0u64..256) {
        let eta = EtaIiAdder::new(16, 8);
        let got = eta.add(a, b) & 0xFF;
        prop_assert_eq!(got, (a + b) & 0xFF);
    }

    #[test]
    fn aca_is_monotonically_better(a: u64, b: u64) {
        // A longer window never makes a *specific* carry worse in the
        // aggregate; test the weaker per-sample property that the full
        // window is exact.
        let full = WindowedCarryAdder::new(32, 32);
        let exact = RippleCarryAdder::new(32);
        prop_assert_eq!(full.add(a, b), exact.add(a, b));
    }

    #[test]
    fn fixed_point_round_trip(x in -1e6f64..1e6) {
        let q = QFormat::Q31_16;
        let y = q.quantize(x);
        prop_assert!((y - x).abs() <= q.resolution() / 2.0 + 1e-12);
        // Quantization is idempotent.
        prop_assert_eq!(q.quantize(y), y);
    }

    #[test]
    fn fixed_bits_round_trip(raw in -(1i64 << 47)..(1i64 << 47)) {
        let q = QFormat::Q31_16;
        prop_assert_eq!(q.from_bits(q.to_bits(raw)), raw);
    }

    #[test]
    fn context_add_is_commutative(x in -1e4f64..1e4, y in -1e4f64..1e4) {
        let mut ctx = QcsContext::with_profile(test_profile());
        for level in AccuracyLevel::ALL {
            ctx.set_level(level);
            let ab = ctx.add(x, y);
            let ba = ctx.add(y, x);
            prop_assert_eq!(ab, ba, "level {}", level);
        }
    }

    #[test]
    fn context_approximate_error_shrinks_with_level(
        x in -1e3f64..1e3, y in -1e3f64..1e3
    ) {
        let mut ctx = QcsContext::with_profile(test_profile());
        let exact = x + y;
        let mut errors = Vec::new();
        for level in AccuracyLevel::APPROXIMATE {
            ctx.set_level(level);
            errors.push((ctx.add(x, y) - exact).abs());
        }
        // Not strictly monotone per sample, but bounded by the level's
        // worst case: 2^(k+1-frac).
        for (i, k) in [20u32, 15, 10, 5].iter().enumerate() {
            let bound = f64::from(*k as i32 + 1 - 16).exp2() + 1e-9;
            prop_assert!(errors[i] <= bound, "level{} err {}", i + 1, errors[i]);
        }
    }

    #[test]
    fn energy_meter_is_additive(ops in 1usize..50) {
        let mut ctx = QcsContext::with_profile(test_profile());
        ctx.set_level(AccuracyLevel::Level2);
        for i in 0..ops {
            ctx.add(i as f64, 1.0);
        }
        let per_add = 2.0; // level2 in the test profile
        prop_assert!((ctx.approx_energy() - per_add * ops as f64).abs() < 1e-9);
        prop_assert_eq!(ctx.counts().adds, ops as u64);
    }
}
