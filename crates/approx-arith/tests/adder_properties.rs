//! Property-based tests over the approximate arithmetic substrate.
//!
//! These are seed-driven: each property is checked over a deterministic
//! stream of random inputs from the in-repo [`Pcg32`], so the suite is
//! hermetic (no external property-testing dependency) and bit-reproducible
//! across platforms.

use approx_arith::rng::Pcg32;
use approx_arith::{
    AccuracyLevel, Adder, ArithContext, EnergyProfile, EtaIiAdder, LowerOrAdder, QFormat, QcsAdder,
    QcsContext, RippleCarryAdder, WindowedCarryAdder,
};

const CASES: usize = 128;

fn test_profile() -> EnergyProfile {
    EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
}

#[test]
fn loa_high_bits_are_exact_when_no_low_carry() {
    // If the low parts are zero, LOA must be exact.
    let mut rng = Pcg32::seeded(0x10A, 0);
    let adder = LowerOrAdder::new(48, 16, false);
    let mask = adder.mask() & !0xFFFF;
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64() & mask, rng.next_u64() & mask);
        let exact = RippleCarryAdder::new(48).add(a, b);
        assert_eq!(adder.add(a, b), exact, "a={a:#x} b={b:#x}");
    }
}

#[test]
fn qcs_accurate_equals_rca() {
    let mut rng = Pcg32::seeded(0x9C5, 0);
    let qcs = QcsAdder::paper_default();
    let rca = RippleCarryAdder::new(32);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(qcs.add(a, b, AccuracyLevel::Accurate), rca.add(a, b));
    }
}

#[test]
fn qcs_error_never_reaches_high_bits() {
    // The approximate low part can corrupt at most approx_bits + 1
    // positions (one lost carry); everything above is exact.
    let mut rng = Pcg32::seeded(0x9C5E, 0);
    let qcs = QcsAdder::paper_default();
    let rca = RippleCarryAdder::new(32);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        for level in AccuracyLevel::APPROXIMATE {
            let k = qcs.approx_bits(level);
            let approx = qcs.add(a, b, level);
            let exact = rca.add(a, b);
            let diff = (approx as i128 - exact as i128).unsigned_abs();
            // diff is either small (OR overshoot) or one lost carry at 2^k,
            // possibly wrapping the 32-bit ring.
            let ring = 1u128 << 32;
            let dist = diff.min(ring - diff);
            assert!(
                dist <= 1u128 << (k + 1),
                "level {level}: dist {dist} > 2^{}",
                k + 1
            );
        }
    }
}

#[test]
fn eta_block0_always_exact() {
    let mut rng = Pcg32::seeded(0xE7A, 0);
    let eta = EtaIiAdder::new(16, 8);
    for _ in 0..CASES {
        let (a, b) = (rng.below(256), rng.below(256));
        let got = eta.add(a, b) & 0xFF;
        assert_eq!(got, (a + b) & 0xFF, "a={a} b={b}");
    }
}

#[test]
fn aca_is_monotonically_better() {
    // A longer window never makes a *specific* carry worse in the
    // aggregate; test the weaker per-sample property that the full
    // window is exact.
    let mut rng = Pcg32::seeded(0xACA, 0);
    let full = WindowedCarryAdder::new(32, 32);
    let exact = RippleCarryAdder::new(32);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(full.add(a, b), exact.add(a, b));
    }
}

#[test]
fn fixed_point_round_trip() {
    let mut rng = Pcg32::seeded(0xF1D, 0);
    let q = QFormat::Q31_16;
    for _ in 0..CASES {
        let x = rng.uniform(-1e6, 1e6);
        let y = q.quantize(x);
        assert!((y - x).abs() <= q.resolution() / 2.0 + 1e-12);
        // Quantization is idempotent.
        assert_eq!(q.quantize(y), y);
    }
}

#[test]
fn fixed_bits_round_trip() {
    let mut rng = Pcg32::seeded(0xB175, 0);
    let q = QFormat::Q31_16;
    for _ in 0..CASES {
        let raw = (rng.below(1 << 48) as i64) - (1i64 << 47);
        assert_eq!(q.from_bits(q.to_bits(raw)), raw);
    }
}

#[test]
fn context_add_is_commutative() {
    let mut rng = Pcg32::seeded(0xC0, 0);
    let mut ctx = QcsContext::with_profile(test_profile());
    for _ in 0..CASES {
        let x = rng.uniform(-1e4, 1e4);
        let y = rng.uniform(-1e4, 1e4);
        for level in AccuracyLevel::ALL {
            ctx.set_level(level);
            let ab = ctx.add(x, y);
            let ba = ctx.add(y, x);
            assert_eq!(ab, ba, "level {level}");
        }
    }
}

#[test]
fn context_approximate_error_shrinks_with_level() {
    let mut rng = Pcg32::seeded(0xE88, 0);
    let mut ctx = QcsContext::with_profile(test_profile());
    for _ in 0..CASES {
        let x = rng.uniform(-1e3, 1e3);
        let y = rng.uniform(-1e3, 1e3);
        let exact = x + y;
        let mut errors = Vec::new();
        for level in AccuracyLevel::APPROXIMATE {
            ctx.set_level(level);
            errors.push((ctx.add(x, y) - exact).abs());
        }
        // Not strictly monotone per sample, but bounded by the level's
        // worst case: 2^(k+1-frac).
        for (i, k) in [20i32, 15, 10, 5].iter().enumerate() {
            let bound = f64::from(k + 1 - 16).exp2() + 1e-9;
            assert!(errors[i] <= bound, "level{} err {}", i + 1, errors[i]);
        }
    }
}

#[test]
fn energy_meter_is_additive() {
    let mut rng = Pcg32::seeded(0xE9E, 0);
    for _ in 0..32 {
        let ops = 1 + rng.below(49) as usize;
        let mut ctx = QcsContext::with_profile(test_profile());
        ctx.set_level(AccuracyLevel::Level2);
        for i in 0..ops {
            ctx.add(i as f64, 1.0);
        }
        let per_add = 2.0; // level2 in the test profile
        assert!((ctx.approx_energy() - per_add * ops as f64).abs() < 1e-9);
        assert_eq!(ctx.counts().adds, ops as u64);
    }
}
