//! Inter-iteration error-propagation analysis.
//!
//! [`crate::range`] proves that datapath *values* stay representable;
//! this module bounds how far the approximate datapath's *results* can
//! drift from the exact datapath's, and how that per-iteration drift
//! composes across the iteration map of an iterative method.
//!
//! Two layers:
//!
//! * **Per-iteration injected error** ([`propagate_error`]) — a
//!   first-order error abstract interpretation over the same
//!   [`RangeGraph`] the range analyzer uses. Each node carries a sound
//!   bound `E` on `|approx − exact|` for identical inputs, built from
//!   the per-operation slacks of the two [`RangeConfig`]s and the value
//!   magnitudes of the range analysis:
//!
//!   ```text
//!   E(a ± b)  ≤ E(a) + E(b) + s_add
//!   E(a · b)  ≤ |a|·E(b) + |b|·E(a) + E(a)·E(b) + s_mul
//!   E(a / b)  ≤ (E(a) + |a/b|·E(b)) / (|b|min − E(b)) + s_mul
//!   E(Σₖ a)   ≤ k · (E(a) + s_add)
//!   ```
//!
//!   where `s_op` charges the slack of *both* datapaths (the exact side
//!   still rounds), and magnitudes are the union of both analyses'
//!   value intervals, so the bound covers either trajectory.
//!
//! * **Inter-iteration composition** ([`ErrorRecurrence`]) — given a
//!   contraction factor `ρ < 1` of the iteration map (see
//!   `iter_solvers::contraction` for the per-solver static derivations)
//!   and a per-iteration injected bound `δ`, the error after `k`
//!   iterations obeys `e_{k+1} ≤ ρ·e_k + δ`, whose closed form and
//!   fixed point this type evaluates. The quality guarantee reduces to
//!   `steady_state = δ/(1−ρ)` staying below the controller's switching
//!   threshold — ARCHITECT's digit-elision argument, transplanted to
//!   mode-switching hardware.

use crate::range::{ExprId, Interval, RangeConfig, RangeGraph, RangeNode};

/// Result of a [`propagate_error`] pass: one absolute error bound per
/// expression of the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorPropReport {
    bounds: Vec<f64>,
}

impl ErrorPropReport {
    /// The absolute error bound of an expression: `|approx − exact|`
    /// can never exceed this for inputs inside the declared ranges.
    /// `f64::INFINITY` when no finite bound exists (a division whose
    /// divisor cannot be bounded away from zero).
    #[must_use]
    pub fn bound(&self, id: ExprId) -> f64 {
        self.bounds[id.index()]
    }

    /// Largest bound over the whole graph.
    #[must_use]
    pub fn max_bound(&self) -> f64 {
        self.bounds.iter().copied().fold(0.0, f64::max)
    }

    /// `true` when every expression has a finite error bound.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.bounds.iter().all(|b| b.is_finite())
    }
}

/// Bound `|approx − exact|` for every expression of `graph`, where the
/// approximate datapath runs under `approx` and the reference under
/// `exact` (typically [`RangeConfig::exact`] — rounding only).
///
/// The bound is *static*: it holds for every input assignment inside
/// the graph's declared ranges and for every error the configured
/// slacks admit, which is exactly the per-operation worst case proven
/// by the BDD error characterization (`gatesim::equiv::error_bound`).
/// It therefore dominates any *measured* per-iteration error — the
/// cross-check the `guarantee` bench binary performs against the Monte
/// Carlo characterization table.
#[must_use]
pub fn propagate_error(
    graph: &RangeGraph,
    approx: &RangeConfig,
    exact: &RangeConfig,
) -> ErrorPropReport {
    // Value magnitudes: the union of both analyses' per-node intervals
    // covers values seen on either datapath.
    let report_a = graph.analyze(approx);
    let report_e = graph.analyze(exact);
    let value = |id: ExprId| -> Interval { report_a.interval(id).union(report_e.interval(id)) };

    let s_add = approx.add_slack + exact.add_slack;
    let s_mul = approx.mul_slack + exact.mul_slack;

    let mut bounds: Vec<f64> = Vec::with_capacity(graph.len());
    for idx in 0..graph.len() {
        let id = ExprId::from_index(idx);
        let e = match graph.node(id) {
            RangeNode::Input(_) | RangeNode::Const(_) => 0.0,
            RangeNode::Add(a, b) | RangeNode::Sub(a, b) => {
                bounds[a.index()] + bounds[b.index()] + s_add
            }
            RangeNode::Neg(a) => bounds[a.index()],
            RangeNode::Mul(a, b) => {
                let (ea, eb) = (bounds[a.index()], bounds[b.index()]);
                value(*a).abs_bound() * eb + value(*b).abs_bound() * ea + ea * eb + s_mul
            }
            RangeNode::Div(a, b) => {
                let vb = value(*b);
                let b_min = vb.lo.abs().min(vb.hi.abs());
                if vb.lo <= 0.0 && vb.hi >= 0.0 {
                    f64::INFINITY
                } else {
                    let eb = bounds[b.index()];
                    let ea = bounds[a.index()];
                    let b_eff = b_min - eb;
                    if b_eff <= 0.0 {
                        f64::INFINITY
                    } else {
                        let q_max = value(*a).abs_bound() / b_min;
                        (ea + q_max * eb) / b_eff + s_mul
                    }
                }
            }
            RangeNode::SumOf(item, count) => *count as f64 * (bounds[item.index()] + s_add),
        };
        bounds.push(e);
    }
    ErrorPropReport { bounds }
}

/// The one-step error recurrence `e_{k+1} ≤ ρ·e_k + δ` of an iterative
/// method on an approximate datapath: `contraction` is the iteration
/// map's contraction factor `ρ` (statically derived per solver) and
/// `injected` the per-iteration injected error bound `δ` (from
/// [`propagate_error`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRecurrence {
    /// Contraction factor `ρ ≥ 0` of the exact iteration map.
    pub contraction: f64,
    /// Per-iteration injected error bound `δ ≥ 0`.
    pub injected: f64,
}

impl ErrorRecurrence {
    /// Create the recurrence.
    ///
    /// # Panics
    /// Panics if either quantity is negative or NaN.
    #[must_use]
    pub fn new(contraction: f64, injected: f64) -> Self {
        assert!(
            contraction >= 0.0 && !contraction.is_nan(),
            "contraction factor must be non-negative"
        );
        assert!(
            injected >= 0.0 && !injected.is_nan(),
            "injected error must be non-negative"
        );
        Self {
            contraction,
            injected,
        }
    }

    /// The error bound after `k` iterations starting from `e0`:
    /// `ρᵏ·e₀ + δ·(1 + ρ + … + ρᵏ⁻¹)`.
    #[must_use]
    pub fn after(&self, e0: f64, k: usize) -> f64 {
        let rho = self.contraction;
        let geometric = if (rho - 1.0).abs() < 1e-15 {
            k as f64
        } else {
            (1.0 - rho.powi(k as i32)) / (1.0 - rho)
        };
        rho.powi(k as i32) * e0 + self.injected * geometric
    }

    /// The fixed point `δ/(1−ρ)` the error converges to, or `None` when
    /// `ρ ≥ 1` (the map does not contract — no steady state exists).
    #[must_use]
    pub fn steady_state(&self) -> Option<f64> {
        if self.contraction < 1.0 {
            Some(self.injected / (1.0 - self.contraction))
        } else {
            None
        }
    }

    /// `true` when the steady-state error exists and stays strictly
    /// below `threshold` — the static form of the paper's quality
    /// guarantee: sustained iteration at this mode can never push the
    /// accumulated error past the controller's switching threshold.
    #[must_use]
    pub fn stays_below(&self, threshold: f64) -> bool {
        self.steady_state().is_some_and(|e| e < threshold)
    }
}

impl std::fmt::Display for ErrorRecurrence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.steady_state() {
            Some(e) => write!(
                f,
                "e' <= {:.3}e + {:.3e} (steady state {:.3e})",
                self.contraction, self.injected, e
            ),
            None => write!(
                f,
                "e' <= {:.3}e + {:.3e} (no steady state: not contracting)",
                self.contraction, self.injected
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::QFormat;
    use crate::rng::Pcg32;

    fn zero_slack() -> RangeConfig {
        RangeConfig {
            format: QFormat::Q15_16,
            add_slack: 0.0,
            mul_slack: 0.0,
        }
    }

    fn slacked(add: f64, mul: f64) -> RangeConfig {
        RangeConfig {
            format: QFormat::Q15_16,
            add_slack: add,
            mul_slack: mul,
        }
    }

    #[test]
    fn inputs_and_constants_carry_no_error() {
        let mut g = RangeGraph::new();
        let x = g.input("x", -1.0, 1.0);
        let c = g.constant(3.0);
        let rep = propagate_error(&g, &slacked(0.5, 0.5), &zero_slack());
        assert_eq!(rep.bound(x), 0.0);
        assert_eq!(rep.bound(c), 0.0);
    }

    #[test]
    fn addition_errors_accumulate_linearly() {
        let mut g = RangeGraph::new();
        let x = g.input("x", -1.0, 1.0);
        let y = g.input("y", -1.0, 1.0);
        let s1 = g.add(x, y);
        let s2 = g.add(s1, x);
        let rep = propagate_error(&g, &slacked(0.25, 0.0), &zero_slack());
        assert!((rep.bound(s1) - 0.25).abs() < 1e-12);
        assert!((rep.bound(s2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn both_configs_slacks_are_charged() {
        let mut g = RangeGraph::new();
        let x = g.input("x", -1.0, 1.0);
        let y = g.input("y", -1.0, 1.0);
        let s = g.add(x, y);
        let rep = propagate_error(&g, &slacked(0.25, 0.0), &slacked(0.125, 0.0));
        assert!((rep.bound(s) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn sum_of_scales_per_item_error() {
        let mut g = RangeGraph::new();
        let x = g.input("x", 0.0, 2.0);
        let acc = g.sum_of(x, 10);
        let rep = propagate_error(&g, &slacked(0.1, 0.0), &zero_slack());
        assert!((rep.bound(acc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_straddling_divisor_has_no_finite_bound() {
        let mut g = RangeGraph::new();
        let x = g.input("x", 1.0, 2.0);
        let d = g.input("d", -1.0, 1.0);
        let q = g.div(x, d);
        let rep = propagate_error(&g, &slacked(0.1, 0.1), &zero_slack());
        assert!(rep.bound(q).is_infinite());
        assert!(!rep.all_finite());
    }

    #[test]
    fn bounded_divisor_has_a_finite_bound() {
        let mut g = RangeGraph::new();
        let x = g.input("x", 1.0, 2.0);
        let d = g.input("d", 1.0, 4.0);
        let q = g.div(x, d);
        let rep = propagate_error(&g, &slacked(0.01, 0.01), &zero_slack());
        assert!(rep.bound(q).is_finite());
        assert!(rep.all_finite());
    }

    /// Randomized soundness: evaluate the graph concretely with every
    /// operation perturbed by at most its slack; the observed deviation
    /// from the unperturbed evaluation must stay within the propagated
    /// bound.
    #[test]
    fn propagated_bounds_contain_sampled_perturbed_evaluations() {
        let approx = slacked(0.05, 0.02);
        let exact = zero_slack();
        let mut g = RangeGraph::new();
        let x = g.input("x", -2.0, 2.0);
        let y = g.input("y", -1.0, 3.0);
        let p = g.mul(x, y);
        let s = g.add(p, x);
        let d = g.sub(s, y);
        let q = g.mul(d, d);
        let rep = propagate_error(&g, &approx, &exact);
        let nodes = [p, s, d, q];

        let mut rng = Pcg32::seeded(0xE11, 3);
        for _ in 0..500 {
            let xv = rng.uniform(-2.0, 2.0);
            let yv = rng.uniform(-1.0, 3.0);
            // Exact (unperturbed) evaluation.
            let pe = xv * yv;
            let se = pe + xv;
            let de = se - yv;
            let qe = de * de;
            // Perturbed evaluation: each op off by at most its slack.
            let e = |rng: &mut Pcg32, s: f64| rng.uniform(-s, s);
            let pa = xv * yv + e(&mut rng, approx.mul_slack);
            let sa = pa + xv + e(&mut rng, approx.add_slack);
            let da = sa - yv + e(&mut rng, approx.add_slack);
            let qa = da * da + e(&mut rng, approx.mul_slack);
            for (id, (got, want)) in nodes
                .iter()
                .zip([(pa, pe), (sa, se), (da, de), (qa, qe)])
                .map(|(id, v)| (*id, v))
            {
                let drift = (got - want).abs();
                assert!(
                    drift <= rep.bound(id) + 1e-12,
                    "drift {drift} exceeds bound {} at node {id:?}",
                    rep.bound(id)
                );
            }
        }
    }

    #[test]
    fn recurrence_closed_form_matches_iteration() {
        let rec = ErrorRecurrence::new(0.5, 1.0);
        let mut e = 3.0;
        for k in 1..=20 {
            e = rec.contraction * e + rec.injected;
            let closed = rec.after(3.0, k);
            assert!((closed - e).abs() < 1e-9, "k={k}: {closed} vs {e}");
        }
        assert!((rec.steady_state().unwrap() - 2.0).abs() < 1e-12);
        assert!(rec.stays_below(2.5));
        assert!(!rec.stays_below(2.0));
    }

    #[test]
    fn non_contracting_map_has_no_steady_state() {
        let rec = ErrorRecurrence::new(1.0, 0.1);
        assert_eq!(rec.steady_state(), None);
        assert!(!rec.stays_below(1e300));
        assert!(rec.to_string().contains("no steady state"));
        // After k steps the bound is e0 + k·δ.
        assert!((rec.after(1.0, 10) - 2.0).abs() < 1e-12);
    }
}
