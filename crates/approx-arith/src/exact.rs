//! Exact ripple-carry adder.

use gatesim::builders::{self, AdderPorts};
use gatesim::Netlist;

use crate::adder::{width_mask, Adder};

/// Exact `width`-bit ripple-carry adder — the `Truth` hardware.
///
/// # Example
///
/// ```
/// use approx_arith::{Adder, RippleCarryAdder};
///
/// let adder = RippleCarryAdder::new(16);
/// assert_eq!(adder.add(0xFFFF, 1), 0); // modular
/// assert_eq!(adder.add(1234, 4321), 5555);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RippleCarryAdder {
    width: u32,
}

impl RippleCarryAdder {
    /// Create an exact adder of the given width.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        let _ = width_mask(width); // validates
        Self { width }
    }
}

impl Adder for RippleCarryAdder {
    fn name(&self) -> String {
        format!("rca{}", self.width)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        (a & self.mask()).wrapping_add(b & self.mask()) & self.mask()
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        builders::ripple_carry_adder(self.width as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_netlist_matches;

    #[test]
    fn modular_semantics() {
        let adder = RippleCarryAdder::new(8);
        assert_eq!(adder.add(255, 255), 254);
        assert_eq!(adder.add(0, 0), 0);
        // High operand bits ignored.
        assert_eq!(adder.add(0x1_00 | 5, 3), 8);
    }

    #[test]
    fn netlist_agrees_with_functional_model() {
        assert_netlist_matches(&RippleCarryAdder::new(16), 200);
        assert_netlist_matches(&RippleCarryAdder::new(48), 100);
    }

    #[test]
    fn name_encodes_width() {
        assert_eq!(RippleCarryAdder::new(48).name(), "rca48");
    }
}
