//! ETAII-style segmented speculative adder.

use gatesim::builders::{self, AdderPorts};
use gatesim::Netlist;

use crate::adder::{width_mask, Adder};

/// Error-tolerant adder II: the word is split into blocks of `block_size`
/// bits; the carry into each block is *speculated* from the previous block
/// alone (computed as if that block's own carry-in were 0), so the carry
/// chain never spans more than two blocks.
///
/// # Example
///
/// ```
/// use approx_arith::{Adder, EtaIiAdder};
///
/// let adder = EtaIiAdder::new(16, 4);
/// // Within a block everything is exact.
/// assert_eq!(adder.add(3, 4), 7);
/// // A carry that needs to ripple through more than one block is lost:
/// // 0x00FF + 0x0001 should be 0x0100 but block 0 (0xF+0x1) generates a
/// // carry into block 1, block 1 (0xF + 0x0 + 1) = 0x10 generates a carry
/// // into block 2 that is NOT seen because block 2 only inspects block 1
/// // without its carry-in.
/// assert_eq!(adder.add(0x00FF, 0x0001), 0x0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtaIiAdder {
    width: u32,
    block_size: u32,
}

impl EtaIiAdder {
    /// Create an ETAII adder with the given block size.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=64`, `block_size` is 0, or
    /// `block_size` does not divide `width`.
    #[must_use]
    pub fn new(width: u32, block_size: u32) -> Self {
        let _ = width_mask(width);
        assert!(block_size > 0, "block size must be positive");
        assert_eq!(
            width % block_size,
            0,
            "block size ({block_size}) must divide width ({width})"
        );
        Self { width, block_size }
    }

    /// Block size in bits.
    #[must_use]
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    fn num_blocks(&self) -> u32 {
        self.width / self.block_size
    }
}

impl Adder for EtaIiAdder {
    fn name(&self) -> String {
        format!("etaii{}/b{}", self.width, self.block_size)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let mask = self.mask();
        let (a, b) = (a & mask, b & mask);
        let bs = self.block_size;
        let block_mask = width_mask(bs);
        let mut result = 0u64;
        for i in 0..self.num_blocks() {
            let shift = i * bs;
            let ab = (a >> shift) & block_mask;
            let bb = (b >> shift) & block_mask;
            let cin = if i == 0 {
                0
            } else {
                let pshift = (i - 1) * bs;
                let pa = (a >> pshift) & block_mask;
                let pb = (b >> pshift) & block_mask;
                u64::from(pa + pb > block_mask)
            };
            result |= ((ab + bb + cin) & block_mask) << shift;
        }
        result
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        let w = self.width as usize;
        let bs = self.block_size as usize;
        let mut nl = Netlist::new();
        let (a, b) = builders::declare_ab(&mut nl, w);
        let zero = nl.constant(false);
        let mut sums = vec![zero; w];
        for block in 0..w / bs {
            let start = block * bs;
            // Speculated carry-in from the previous block's carry chain
            // (with carry-in 0): a chain of majority cells.
            let mut cin = zero;
            if block > 0 {
                let pstart = start - bs;
                let mut c = zero;
                for i in pstart..pstart + bs {
                    c = nl.maj3(a[i], b[i], c);
                }
                cin = c;
            }
            let mut carry = cin;
            for i in start..start + bs {
                let (s, c) = builders::full_adder(&mut nl, a[i], b[i], carry);
                sums[i] = s;
                carry = c;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            nl.mark_output(*s, format!("sum{i}"));
        }
        let ports = AdderPorts::new(a, b, None, false);
        (nl, ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_netlist_matches;
    use crate::RippleCarryAdder;

    #[test]
    fn full_width_block_is_exact() {
        let eta = EtaIiAdder::new(16, 16);
        let rca = RippleCarryAdder::new(16);
        for (a, b) in [(0u64, 0u64), (0xFFFF, 1), (0x1234, 0x4321), (999, 1)] {
            assert_eq!(eta.add(a, b), rca.add(a, b));
        }
    }

    #[test]
    fn single_block_carry_is_recovered() {
        // Carry from block 0 into block 1 is speculated correctly.
        let eta = EtaIiAdder::new(8, 4);
        assert_eq!(eta.add(0x0F, 0x01), 0x10);
    }

    #[test]
    fn long_carry_chain_is_truncated() {
        let eta = EtaIiAdder::new(16, 4);
        // 0x0FFF + 1 = 0x1000 exactly. Block 0 (F+1) carries into block 1,
        // block 1 (F+0+1) overflows, but block 2 speculates its carry from
        // block 1 *without* block 1's own carry-in (F+0 does not overflow),
        // so the ripple stops and block 2 keeps its stale 0xF.
        assert_eq!(eta.add(0x0FFF, 0x0001), 0x0F00);
        // The doc example: every downstream block sees no carry.
        assert_eq!(eta.add(0x00FF, 0x0001), 0x0000);
    }

    #[test]
    fn netlist_agrees_with_functional_model() {
        assert_netlist_matches(&EtaIiAdder::new(16, 4), 300);
        assert_netlist_matches(&EtaIiAdder::new(48, 8), 100);
        assert_netlist_matches(&EtaIiAdder::new(48, 12), 100);
        assert_netlist_matches(&EtaIiAdder::new(12, 3), 200);
    }

    #[test]
    #[should_panic(expected = "must divide width")]
    fn non_dividing_block_panics() {
        let _ = EtaIiAdder::new(16, 5);
    }
}
