//! Datapath-level fault injection (SEU, stuck-at, and burst models).
//!
//! Approximate-computing systems are often co-evaluated under *soft
//! errors*: radiation-induced bit flips that corrupt a result
//! transiently rather than systematically. [`FaultInjector`] wraps any
//! [`ArithContext`] and corrupts operation results under a configurable
//! [`FaultModel`], which lets the test suite and the resilience
//! benchmarks exercise the framework's recovery machinery (rollback,
//! checkpoint restore, escalation) under failures the offline
//! characterization never saw.
//!
//! Faults strike the fixed-point representation of the result in the
//! wrapped context's *own* [`QFormat`] — the injector reads the format
//! via [`ArithContext::datapath_format`] instead of assuming a width.

use crate::adder::{width_mask, AccuracyLevel};
use crate::context::{ArithContext, OpCounts};
use crate::fixed::QFormat;
use crate::rng::Pcg32;

/// How a fault manifests in an operation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Single-event upset: with probability `rate` per operation, flip
    /// one uniformly chosen bit among the low `fault_bits` of the result.
    Seu {
        /// Per-operation upset probability in `[0, 1]`.
        rate: f64,
        /// Number of low result bits exposed to upsets.
        fault_bits: u32,
    },
    /// A persistent defect: result `bit` reads as `value` in every
    /// operation (the datapath analogue of a gate-level stuck-at).
    StuckAt {
        /// The defective result bit.
        bit: u32,
        /// The value the bit is stuck at.
        value: bool,
    },
    /// Burst upset: with probability `rate` per operation, flip `width`
    /// *adjacent* result bits at a uniformly chosen offset — modelling
    /// multi-bit upsets from a single particle strike.
    Burst {
        /// Per-operation burst probability in `[0, 1]`.
        rate: f64,
        /// Number of adjacent bits flipped per burst.
        width: u32,
    },
}

impl FaultModel {
    /// Validate this model against a datapath of `width` bits.
    ///
    /// # Panics
    /// Panics if a probability is not in `[0, 1]`, a bit position or
    /// burst width falls outside the datapath, or a count is zero.
    pub fn validate(&self, width: u32) {
        match *self {
            Self::Seu { rate, fault_bits } => {
                assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
                assert!(
                    (1..=width).contains(&fault_bits),
                    "fault_bits must be in 1..={width} for this datapath, got {fault_bits}"
                );
            }
            Self::StuckAt { bit, .. } => {
                assert!(
                    bit < width,
                    "stuck-at bit {bit} outside the {width}-bit datapath"
                );
            }
            Self::Burst { rate, width: w } => {
                assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
                assert!(
                    (1..=width).contains(&w),
                    "burst width must be in 1..={width}, got {w}"
                );
            }
        }
    }
}

/// Which operation results the injector corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTargets {
    /// Corrupt addition (and therefore subtraction) results.
    pub adds: bool,
    /// Corrupt multiplication results.
    pub muls: bool,
}

impl FaultTargets {
    /// Adders only — the historical default (adders dominate the exposed
    /// area in this datapath).
    pub const ADDS: Self = Self {
        adds: true,
        muls: false,
    };
    /// Both the adder fabric and the multiplier.
    pub const ALL: Self = Self {
        adds: true,
        muls: true,
    };
}

/// An [`ArithContext`] decorator that injects faults into operation
/// results under a configurable [`FaultModel`].
///
/// The corrupted bit positions are resolved against the wrapped
/// context's own fixed-point format ([`ArithContext::datapath_format`]);
/// software contexts without a hardware format fall back to
/// [`QFormat::Q15_16`]. Divisions are passed through untouched.
///
/// # Example
///
/// ```
/// use approx_arith::{ArithContext, EnergyProfile, FaultInjector, QcsContext};
///
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let inner = QcsContext::with_profile(profile);
/// // Flip a bit in every single add (rate 1.0) among the low 8 bits.
/// let mut faulty = FaultInjector::new(inner, 1.0, 8, 42);
/// let got = faulty.add(1.0, 2.0);
/// assert_ne!(got, 3.0);                  // something was upset...
/// assert!((got - 3.0).abs() <= 0.004);   // ...but only a low bit
/// assert_eq!(faulty.faults_injected(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector<C> {
    inner: C,
    model: FaultModel,
    targets: FaultTargets,
    spare_accurate: bool,
    struck_levels: [bool; 5],
    format: QFormat,
    rng: Pcg32,
    faults: u64,
}

impl<C: ArithContext> FaultInjector<C> {
    /// Wrap `inner`, flipping one of the low `fault_bits` bits of each
    /// add result with probability `rate` (the SEU model on adds only).
    ///
    /// # Panics
    /// Panics if `rate` is not in `[0, 1]` or `fault_bits` is 0 or
    /// exceeds the wrapped context's datapath width.
    #[must_use]
    pub fn new(inner: C, rate: f64, fault_bits: u32, seed: u64) -> Self {
        Self::with_model(inner, FaultModel::Seu { rate, fault_bits }, seed)
    }

    /// Wrap `inner` with an explicit fault model, targeting adds only.
    ///
    /// # Panics
    /// Panics if the model is invalid for the wrapped context's datapath
    /// width (see [`FaultModel::validate`]).
    #[must_use]
    pub fn with_model(inner: C, model: FaultModel, seed: u64) -> Self {
        let format = inner.datapath_format().unwrap_or(QFormat::Q15_16);
        model.validate(format.width());
        Self {
            inner,
            model,
            targets: FaultTargets::ADDS,
            spare_accurate: false,
            struck_levels: [true; 5],
            format,
            rng: Pcg32::seeded(seed, 7),
            faults: 0,
        }
    }

    /// Select which operation results are exposed to faults.
    #[must_use]
    pub fn targeting(mut self, targets: FaultTargets) -> Self {
        self.targets = targets;
        self
    }

    /// Inject faults only while the wrapped context runs at an
    /// *approximate* level.
    ///
    /// This models voltage-overscaled operation: the approximate modes
    /// buy their energy savings by running the carry chain past its
    /// timing margin, which is precisely where upsets strike, while the
    /// accurate mode runs at nominal voltage and stays dependable.
    /// Operations executed at the accurate level do not advance the
    /// fault RNG, so the fault schedule seen at the approximate levels
    /// is independent of how long a run lingers at the accurate level.
    #[must_use]
    pub fn sparing_accurate(mut self) -> Self {
        self.spare_accurate = true;
        self
    }

    /// Inject faults only while the wrapped context runs at one of
    /// `levels`; operations at every other level pass through clean
    /// *without advancing the fault RNG* (like
    /// [`sparing_accurate`](Self::sparing_accurate)).
    ///
    /// This models a defect or environmental upset localized to one
    /// accuracy configuration of the reconfigurable fabric — e.g. a
    /// marginal carry-chain segment only exercised by the level-2
    /// bypass — and is what lets fault campaigns script scenarios where
    /// quarantining a *single* approximate level (the service's circuit
    /// breaker) restores healthy operation.
    ///
    /// # Panics
    /// Panics if `levels` is empty — an injector that can never fire is
    /// a configuration bug, not a model.
    #[must_use]
    pub fn striking_only(mut self, levels: &[AccuracyLevel]) -> Self {
        assert!(!levels.is_empty(), "striking_only needs at least one level");
        self.struck_levels = [false; 5];
        for &level in levels {
            self.struck_levels[level.index()] = true;
        }
        self
    }

    /// The active fault model.
    #[must_use]
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The format faults are resolved against.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults
    }

    /// The wrapped context.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap the decorator.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Apply the fault model to one clean result.
    fn corrupt(&mut self, clean: f64) -> f64 {
        let bits = self.format.to_bits(self.format.to_raw(clean));
        let corrupted = match self.model {
            FaultModel::Seu { rate, fault_bits } => {
                if self.rng.next_f64() >= rate {
                    return clean;
                }
                let bit = self.rng.below(u64::from(fault_bits)) as u32;
                bits ^ (1u64 << bit)
            }
            FaultModel::StuckAt { bit, value } => {
                if value {
                    bits | (1u64 << bit)
                } else {
                    bits & !(1u64 << bit)
                }
            }
            FaultModel::Burst { rate, width } => {
                if self.rng.next_f64() >= rate {
                    return clean;
                }
                let positions = u64::from(self.format.width() - width) + 1;
                let start = self.rng.below(positions) as u32;
                bits ^ (width_mask(width) << start)
            }
        };
        if corrupted == bits {
            // A stuck-at that agrees with the clean value is not an event.
            return clean;
        }
        self.faults += 1;
        self.format.from_raw(
            self.format
                .from_bits(corrupted & width_mask(self.format.width())),
        )
    }
}

impl<C: ArithContext> FaultInjector<C> {
    /// Whether faults are currently suppressed — by
    /// [`sparing_accurate`](FaultInjector::sparing_accurate) or because
    /// the current level is outside
    /// [`striking_only`](FaultInjector::striking_only).
    fn shielded(&self) -> bool {
        let level = self.inner.level();
        (self.spare_accurate && level.is_accurate()) || !self.struck_levels[level.index()]
    }
}

impl<C: ArithContext> ArithContext for FaultInjector<C> {
    fn add(&mut self, a: f64, b: f64) -> f64 {
        let clean = self.inner.add(a, b);
        if self.targets.adds && !self.shielded() {
            self.corrupt(clean)
        } else {
            clean
        }
    }

    fn mul(&mut self, a: f64, b: f64) -> f64 {
        let clean = self.inner.mul(a, b);
        if self.targets.muls && !self.shielded() {
            self.corrupt(clean)
        } else {
            clean
        }
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.inner.div(a, b)
    }

    fn level(&self) -> AccuracyLevel {
        self.inner.level()
    }

    fn set_level(&mut self, level: AccuracyLevel) {
        self.inner.set_level(level);
    }

    fn counts(&self) -> OpCounts {
        self.inner.counts()
    }

    fn approx_energy(&self) -> f64 {
        self.inner.approx_energy()
    }

    fn total_energy(&self) -> f64 {
        self.inner.total_energy()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }

    fn datapath_format(&self) -> Option<QFormat> {
        self.inner.datapath_format()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ExactContext, QcsContext};
    use crate::recon::QcsAdder;
    use crate::EnergyProfile;

    fn profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn inner() -> QcsContext {
        QcsContext::with_profile(profile())
    }

    #[test]
    fn zero_rate_is_transparent() {
        let mut faulty = FaultInjector::new(inner(), 0.0, 8, 1);
        let mut clean = inner();
        for i in 0..100 {
            let x = f64::from(i) * 0.37;
            assert_eq!(faulty.add(x, 1.5), clean.add(x, 1.5));
        }
        assert_eq!(faulty.faults_injected(), 0);
    }

    #[test]
    fn full_rate_upsets_every_add() {
        let mut faulty = FaultInjector::new(inner(), 1.0, 4, 3);
        for _ in 0..50 {
            faulty.add(1.0, 1.0);
        }
        assert_eq!(faulty.faults_injected(), 50);
    }

    #[test]
    fn fault_magnitude_is_bounded_by_fault_bits() {
        let mut faulty = FaultInjector::new(inner(), 1.0, 8, 9);
        // Low 8 bits of Q15.16: the flip is at most 2^-9 in value.
        let bound = f64::from(1u32 << 8) / 65536.0 + 1e-12;
        for i in 0..200 {
            let x = f64::from(i) * 0.11;
            let got = faulty.add(x, 2.0);
            let clean = QFormat::Q15_16.quantize(QFormat::Q15_16.quantize(x) + 2.0);
            assert!(
                (got - clean).abs() <= bound,
                "flip too large: {got} vs {clean}"
            );
        }
    }

    #[test]
    fn counters_and_level_delegate() {
        let mut faulty = FaultInjector::new(inner(), 0.5, 8, 11);
        faulty.set_level(AccuracyLevel::Level3);
        assert_eq!(faulty.level(), AccuracyLevel::Level3);
        faulty.add(1.0, 1.0);
        faulty.mul(2.0, 2.0);
        assert_eq!(faulty.counts().adds, 1);
        assert_eq!(faulty.counts().muls, 1);
        assert!(faulty.approx_energy() > 0.0);
        faulty.reset_counters();
        assert_eq!(faulty.counts().adds, 0);
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<f64> {
            let mut faulty = FaultInjector::new(inner(), 0.3, 8, seed);
            (0..50).map(|i| faulty.add(f64::from(i), 0.5)).collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn invalid_rate_panics() {
        let _ = FaultInjector::new(inner(), 1.5, 8, 1);
    }

    #[test]
    fn format_follows_the_wrapped_context() {
        // A Q31.16 (48-bit) datapath accepts fault_bits the 32-bit
        // default would reject.
        let wide = QcsContext::new(
            QcsAdder::new(48, [20, 15, 10, 5]),
            QFormat::Q31_16,
            profile(),
        );
        let faulty = FaultInjector::new(wide, 0.1, 48, 1);
        assert_eq!(faulty.format(), QFormat::Q31_16);
        // Software baselines fall back to Q15.16.
        let soft = FaultInjector::new(ExactContext::with_profile(profile()), 0.1, 8, 1);
        assert_eq!(soft.format(), QFormat::Q15_16);
    }

    #[test]
    #[should_panic(expected = "fault_bits must be in 1..=32")]
    fn fault_bits_beyond_the_datapath_panic() {
        // Q15.16 is a 32-bit datapath; 48 was accepted under the old
        // hardcoded cap and must now be rejected.
        let _ = FaultInjector::new(inner(), 0.1, 48, 1);
    }

    #[test]
    fn mul_results_are_corrupted_when_targeted() {
        let mut faulty = FaultInjector::new(inner(), 1.0, 4, 5).targeting(FaultTargets::ALL);
        let mut clean = inner();
        let mut mul_faults = 0;
        for i in 1..50 {
            let x = f64::from(i) * 0.17;
            if faulty.mul(x, 3.0) != clean.mul(x, 3.0) {
                mul_faults += 1;
            }
        }
        assert!(mul_faults > 0, "no multiplier faults fired at rate 1.0");
        // And with the default targets, muls stay clean.
        let mut adds_only = FaultInjector::new(inner(), 1.0, 4, 5);
        let mut clean2 = inner();
        for i in 1..50 {
            let x = f64::from(i) * 0.17;
            assert_eq!(adds_only.mul(x, 3.0), clean2.mul(x, 3.0));
        }
    }

    #[test]
    fn stuck_at_forces_the_bit_every_operation() {
        // Bit 16 of Q15.16 has weight 1.0: any integer-valued sum with
        // an even integer part reads one higher with stuck-at-1.
        let mut faulty = FaultInjector::with_model(
            inner(),
            FaultModel::StuckAt {
                bit: 16,
                value: true,
            },
            1,
        );
        assert_eq!(faulty.add(2.0, 2.0), 5.0);
        assert_eq!(faulty.faults_injected(), 1);
        // A sum that already has the bit set is not an event.
        assert_eq!(faulty.add(2.0, 3.0), 5.0);
        assert_eq!(faulty.faults_injected(), 1);
    }

    #[test]
    fn burst_flips_adjacent_bits() {
        let model = FaultModel::Burst {
            rate: 1.0,
            width: 3,
        };
        let mut faulty = FaultInjector::with_model(inner(), model, 2);
        let mut any_large = false;
        for i in 0..100 {
            let x = f64::from(i) * 0.05;
            let clean = QFormat::Q15_16.quantize(QFormat::Q15_16.quantize(x) + 1.0);
            let got = faulty.add(x, 1.0);
            let err = (got - clean).abs();
            if err > 0.0 {
                any_large = true;
            }
        }
        assert!(any_large);
        assert_eq!(faulty.faults_injected(), 100);
    }

    #[test]
    #[should_panic(expected = "stuck-at bit")]
    fn stuck_at_outside_datapath_panics() {
        let _ = FaultInjector::with_model(
            inner(),
            FaultModel::StuckAt {
                bit: 32,
                value: true,
            },
            1,
        );
    }

    #[test]
    fn striking_only_confines_faults_to_the_named_levels() {
        let mut faulty =
            FaultInjector::new(inner(), 1.0, 8, 13).striking_only(&[AccuracyLevel::Level2]);
        let mut clean = inner();
        for level in [
            AccuracyLevel::Level1,
            AccuracyLevel::Level3,
            AccuracyLevel::Level4,
            AccuracyLevel::Accurate,
        ] {
            faulty.set_level(level);
            clean.set_level(level);
            for i in 0..20 {
                let x = f64::from(i) * 0.31;
                assert_eq!(faulty.add(x, 1.0), clean.add(x, 1.0), "leak at {level}");
            }
        }
        assert_eq!(faulty.faults_injected(), 0);
        faulty.set_level(AccuracyLevel::Level2);
        for _ in 0..20 {
            faulty.add(1.0, 1.0);
        }
        assert_eq!(faulty.faults_injected(), 20);
    }

    #[test]
    fn shielded_levels_do_not_advance_the_fault_rng() {
        // The fault stream seen at the struck level must not depend on
        // how many operations ran at shielded levels first.
        let run = |detour_ops: usize| -> Vec<f64> {
            let mut faulty =
                FaultInjector::new(inner(), 0.5, 8, 21).striking_only(&[AccuracyLevel::Level1]);
            faulty.set_level(AccuracyLevel::Level3);
            for _ in 0..detour_ops {
                faulty.add(1.0, 1.0);
            }
            faulty.set_level(AccuracyLevel::Level1);
            (0..40).map(|i| faulty.add(f64::from(i), 0.5)).collect()
        };
        assert_eq!(run(0), run(17));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn striking_only_rejects_an_empty_level_set() {
        let _ = FaultInjector::new(inner(), 1.0, 8, 1).striking_only(&[]);
    }

    #[test]
    fn sparing_accurate_shields_the_accurate_level_only() {
        let mut faulty = FaultInjector::new(inner(), 1.0, 8, 11).sparing_accurate();
        let mut clean = inner();
        faulty.set_level(AccuracyLevel::Accurate);
        clean.set_level(AccuracyLevel::Accurate);
        for i in 0..50 {
            let x = f64::from(i) * 0.23;
            assert_eq!(faulty.add(x, 1.0), clean.add(x, 1.0));
        }
        assert_eq!(faulty.faults_injected(), 0);
        faulty.set_level(AccuracyLevel::Level2);
        for _ in 0..50 {
            faulty.add(1.0, 1.0);
        }
        assert_eq!(faulty.faults_injected(), 50);
    }
}
