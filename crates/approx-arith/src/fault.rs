//! Transient-fault injection (single-event-upset model).
//!
//! Approximate-computing systems are often co-evaluated under *soft
//! errors*: radiation-induced bit flips that corrupt a result
//! transiently rather than systematically. [`FaultInjector`] wraps any
//! [`ArithContext`] and flips one uniformly chosen result bit of an
//! addition with a configurable probability, which lets the test suite
//! exercise the framework's recovery machinery (the function scheme's
//! rollback) under failures the offline characterization never saw.

use crate::adder::{width_mask, AccuracyLevel};
use crate::context::{ArithContext, OpCounts};
use crate::fixed::QFormat;
use crate::rng::Pcg32;

/// An [`ArithContext`] decorator that injects single-bit upsets into
/// addition results.
///
/// Faults strike the fixed-point representation of the sum: one bit in
/// the low `fault_bits` positions of the [`QFormat`] pattern is flipped.
/// Multiplications and divisions are passed through untouched (adders
/// dominate the exposed area in this datapath).
///
/// # Example
///
/// ```
/// use approx_arith::{ArithContext, EnergyProfile, FaultInjector, QcsContext};
///
/// let profile = EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0);
/// let inner = QcsContext::with_profile(profile);
/// // Flip a bit in every single add (rate 1.0) among the low 8 bits.
/// let mut faulty = FaultInjector::new(inner, 1.0, 8, 42);
/// let got = faulty.add(1.0, 2.0);
/// assert_ne!(got, 3.0);                  // something was upset...
/// assert!((got - 3.0).abs() <= 0.004);   // ...but only a low bit
/// assert_eq!(faulty.faults_injected(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector<C> {
    inner: C,
    rate: f64,
    fault_bits: u32,
    format: QFormat,
    rng: Pcg32,
    faults: u64,
}

impl<C: ArithContext> FaultInjector<C> {
    /// Wrap `inner`, flipping one of the low `fault_bits` bits of each
    /// add result with probability `rate`.
    ///
    /// # Panics
    /// Panics if `rate` is not in `[0, 1]` or `fault_bits` is 0 or
    /// exceeds the datapath width (48 is the cap used here).
    #[must_use]
    pub fn new(inner: C, rate: f64, fault_bits: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(
            (1..=48).contains(&fault_bits),
            "fault_bits must be in 1..=48"
        );
        Self {
            inner,
            rate,
            fault_bits,
            format: QFormat::Q15_16,
            rng: Pcg32::seeded(seed, 7),
            faults: 0,
        }
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults
    }

    /// The wrapped context.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap the decorator.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: ArithContext> ArithContext for FaultInjector<C> {
    fn add(&mut self, a: f64, b: f64) -> f64 {
        let clean = self.inner.add(a, b);
        if self.rng.next_f64() >= self.rate {
            return clean;
        }
        self.faults += 1;
        let bit = self.rng.below(u64::from(self.fault_bits)) as u32;
        let raw = self.format.to_raw(clean);
        let bits = self.format.to_bits(raw) ^ (1u64 << bit);
        self.format.from_raw(
            self.format
                .from_bits(bits & width_mask(self.format.width())),
        )
    }

    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.inner.mul(a, b)
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.inner.div(a, b)
    }

    fn level(&self) -> AccuracyLevel {
        self.inner.level()
    }

    fn set_level(&mut self, level: AccuracyLevel) {
        self.inner.set_level(level);
    }

    fn counts(&self) -> OpCounts {
        self.inner.counts()
    }

    fn approx_energy(&self) -> f64 {
        self.inner.approx_energy()
    }

    fn total_energy(&self) -> f64 {
        self.inner.total_energy()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::QcsContext;
    use crate::EnergyProfile;

    fn inner() -> QcsContext {
        QcsContext::with_profile(EnergyProfile::from_constants(
            [1.0, 2.0, 3.0, 4.0, 5.0],
            50.0,
            100.0,
        ))
    }

    #[test]
    fn zero_rate_is_transparent() {
        let mut faulty = FaultInjector::new(inner(), 0.0, 8, 1);
        let mut clean = inner();
        for i in 0..100 {
            let x = f64::from(i) * 0.37;
            assert_eq!(faulty.add(x, 1.5), clean.add(x, 1.5));
        }
        assert_eq!(faulty.faults_injected(), 0);
    }

    #[test]
    fn full_rate_upsets_every_add() {
        let mut faulty = FaultInjector::new(inner(), 1.0, 4, 3);
        for _ in 0..50 {
            faulty.add(1.0, 1.0);
        }
        assert_eq!(faulty.faults_injected(), 50);
    }

    #[test]
    fn fault_magnitude_is_bounded_by_fault_bits() {
        let mut faulty = FaultInjector::new(inner(), 1.0, 8, 9);
        // Low 8 bits of Q15.16: the flip is at most 2^-9 in value.
        let bound = f64::from(1u32 << 8) / 65536.0 + 1e-12;
        for i in 0..200 {
            let x = f64::from(i) * 0.11;
            let got = faulty.add(x, 2.0);
            let clean = QFormat::Q15_16.quantize(QFormat::Q15_16.quantize(x) + 2.0);
            assert!(
                (got - clean).abs() <= bound,
                "flip too large: {got} vs {clean}"
            );
        }
    }

    #[test]
    fn counters_and_level_delegate() {
        let mut faulty = FaultInjector::new(inner(), 0.5, 8, 11);
        faulty.set_level(AccuracyLevel::Level3);
        assert_eq!(faulty.level(), AccuracyLevel::Level3);
        faulty.add(1.0, 1.0);
        faulty.mul(2.0, 2.0);
        assert_eq!(faulty.counts().adds, 1);
        assert_eq!(faulty.counts().muls, 1);
        assert!(faulty.approx_energy() > 0.0);
        faulty.reset_counters();
        assert_eq!(faulty.counts().adds, 0);
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<f64> {
            let mut faulty = FaultInjector::new(inner(), 0.3, 8, seed);
            (0..50).map(|i| faulty.add(f64::from(i), 0.5)).collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn invalid_rate_panics() {
        let _ = FaultInjector::new(inner(), 1.5, 8, 1);
    }
}
