//! Energy-accounting arithmetic contexts.
//!
//! An [`ArithContext`] is the boundary between an application's
//! error-*resilient* datapath and the hardware model: every add/sub/mul
//! the application routes through the context is (a) computed under the
//! currently selected accuracy level and (b) charged to the context's
//! energy meters. Error-*sensitive* computation (control flow,
//! convergence checks, transcendentals) stays in plain `f64` outside the
//! context, mirroring the offline resilience partitioning of Chippa et
//! al. that the paper adopts.

use crate::adder::AccuracyLevel;
use crate::energy::EnergyProfile;
use crate::fixed::QFormat;
use crate::range::RangeConfig;
use crate::recon::QcsAdder;

/// Operation counters of a context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions (including subtractions, which negate exactly and add).
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
}

impl OpCounts {
    /// Total operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.divs
    }
}

/// The arithmetic fabric an application's error-resilient part runs on.
///
/// Implementations must make `add` commutative and `sub(a, b)`
/// equivalent to `add(a, -b)` (hardware negation is exact — an inverter
/// row plus carry-in).
///
/// The trait is object-safe; applications typically take
/// `&mut dyn ArithContext`.
pub trait ArithContext {
    /// Add two values on the approximate adder fabric.
    fn add(&mut self, a: f64, b: f64) -> f64;

    /// Multiply two values (exact multiplier, fixed-point datapath).
    fn mul(&mut self, a: f64, b: f64) -> f64;

    /// Divide two values (exact sequential divider).
    fn div(&mut self, a: f64, b: f64) -> f64;

    /// Subtract via exact negation and an approximate add.
    fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.add(a, -b)
    }

    /// Currently selected accuracy level.
    fn level(&self) -> AccuracyLevel;

    /// Select the accuracy level used by subsequent operations.
    fn set_level(&mut self, level: AccuracyLevel);

    /// Operation counters since the last reset.
    fn counts(&self) -> OpCounts;

    /// Energy consumed by the *approximate part* (the adder fabric) since
    /// the last reset. This is the quantity the paper's tables normalize.
    fn approx_energy(&self) -> f64;

    /// Total energy including the exact multiplier/divider.
    fn total_energy(&self) -> f64;

    /// Reset counters and energy meters (the level is preserved).
    fn reset_counters(&mut self);

    /// The fixed-point format of the hardware datapath, if this context
    /// models one. Software baselines (plain `f64`) return `None`.
    ///
    /// Decorators that corrupt or transform bit patterns use this to
    /// address the *actual* word width instead of assuming a format.
    fn datapath_format(&self) -> Option<QFormat> {
        None
    }

    /// Per-operation error model for static range analysis, if this
    /// context models a bounded-error hardware datapath. Software
    /// baselines return `None`; the QCS context returns a
    /// [`RangeConfig`] whose add slack covers the worst-case error of
    /// the *current* accuracy level.
    fn range_config(&self) -> Option<RangeConfig> {
        None
    }

    /// Left-to-right sum of a slice through [`ArithContext::add`].
    fn sum(&mut self, xs: &[f64]) -> f64 {
        xs.iter().fold(0.0, |acc, &x| self.add(acc, x))
    }

    /// Dot product through [`ArithContext::mul`] and
    /// [`ArithContext::add`].
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    fn dot(&mut self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "dot operands must have equal length");
        let mut acc = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let p = self.mul(x, y);
            acc = self.add(acc, p);
        }
        acc
    }
}

/// Context for the quality-configurable datapath: fixed-point arithmetic
/// with the [`QcsAdder`] at a selectable accuracy level, plus energy and
/// operation accounting.
///
/// *Every* mode — including `Accurate` — runs on the same fixed-point
/// datapath: operands are quantized to the context's [`QFormat`] and the
/// add is performed by the QCS adder at the selected level. The accurate
/// mode differs only in that the full carry chain is enabled, exactly
/// like the hardware. A consequence worth internalizing: iterative
/// methods on this datapath converge by *freezing* — once an update
/// falls below the fixed-point resolution the state reproduces itself
/// bit-exactly — which is why the paper can use convergence tolerances
/// (e.g. 10⁻¹³) far below the datapath resolution.
///
/// # Example
///
/// ```
/// use approx_arith::{AccuracyLevel, ArithContext, QcsContext};
///
/// let mut ctx = QcsContext::with_paper_defaults();
/// let exact = ctx.add(0.125, 0.25);
/// assert_eq!(exact, 0.375); // representable in Q15.16: exact
///
/// ctx.set_level(AccuracyLevel::Level1);
/// let approx = ctx.add(0.125, 0.25);
/// // Level 1 mangles the low 20 bits — the result is off but bounded.
/// assert!((approx - 0.375).abs() < 32.0);
/// assert!(ctx.approx_energy() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QcsContext {
    qcs: QcsAdder,
    format: QFormat,
    profile: EnergyProfile,
    level: AccuracyLevel,
    counts: OpCounts,
    approx_energy: f64,
    other_energy: f64,
    trace: Option<Trace>,
}

#[derive(Debug, Clone, PartialEq)]
struct Trace {
    capacity: usize,
    pairs: Vec<(u64, u64)>,
}

impl QcsContext {
    /// Create a context over an explicit adder, format, and energy
    /// profile. The initial level is `Accurate`.
    ///
    /// # Panics
    /// Panics if the adder and format widths differ.
    #[must_use]
    pub fn new(qcs: QcsAdder, format: QFormat, profile: EnergyProfile) -> Self {
        assert_eq!(
            qcs.width(),
            format.width(),
            "adder width and fixed-point width must match"
        );
        Self {
            qcs,
            format,
            profile,
            level: AccuracyLevel::Accurate,
            counts: OpCounts::default(),
            approx_energy: 0.0,
            other_energy: 0.0,
            trace: None,
        }
    }

    /// The configuration used throughout the reproduction:
    /// [`QcsAdder::paper_default`], [`QFormat::Q15_16`], and a freshly
    /// characterized [`EnergyProfile`].
    #[must_use]
    pub fn with_paper_defaults() -> Self {
        Self::new(
            QcsAdder::paper_default(),
            QFormat::Q15_16,
            EnergyProfile::paper_default(),
        )
    }

    /// Like [`QcsContext::with_paper_defaults`] but reusing an
    /// already-characterized profile (characterization simulates gate
    /// netlists; share it across contexts).
    #[must_use]
    pub fn with_profile(profile: EnergyProfile) -> Self {
        Self::new(QcsAdder::paper_default(), QFormat::Q15_16, profile)
    }

    /// The fixed-point format of the datapath.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The underlying QCS adder.
    #[must_use]
    pub fn adder(&self) -> &QcsAdder {
        &self.qcs
    }

    /// The energy profile in use.
    #[must_use]
    pub fn profile(&self) -> &EnergyProfile {
        &self.profile
    }

    /// Start recording the operand bit patterns of approximate adds into
    /// a bounded trace (for trace-driven characterization). Recording
    /// stops silently once `capacity` pairs are stored.
    pub fn record_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace {
            capacity,
            pairs: Vec::with_capacity(capacity.min(4096)),
        });
    }

    /// The recorded operand trace, if recording was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&[(u64, u64)]> {
        self.trace.as_ref().map(|t| t.pairs.as_slice())
    }
}

impl ArithContext for QcsContext {
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.counts.adds += 1;
        self.approx_energy += self.profile.add_energy(self.level);
        let ra = self.format.to_raw(a);
        let rb = self.format.to_raw(b);
        let (ba, bb) = (self.format.to_bits(ra), self.format.to_bits(rb));
        if let Some(trace) = &mut self.trace {
            if trace.pairs.len() < trace.capacity {
                trace.pairs.push((ba, bb));
            }
        }
        let bits = self.qcs.add(ba, bb, self.level);
        self.format.from_raw(self.format.from_bits(bits))
    }

    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.counts.muls += 1;
        self.other_energy += self.profile.mul_energy();
        let ra = self.format.to_raw(a);
        let rb = self.format.to_raw(b);
        self.format.from_raw(self.format.mul_raw(ra, rb))
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.counts.divs += 1;
        self.other_energy += self.profile.div_energy();
        // The sequential shift-subtract divider is built from the same
        // QCS adder, so its quotient inherits the level's approximation:
        // with the truncation policy the low `approx_bits` quotient bits
        // are never produced and the result lands on the level's coarse
        // grid.
        let qa = self.format.quantize(a);
        let qb = self.format.quantize(b);
        let raw = self.format.to_raw(qa / qb);
        let k = self.qcs.approx_bits(self.level);
        let snapped = if k > 0 && self.qcs.policy() == crate::recon::LowPartPolicy::Zero {
            let bits = self.format.to_bits(raw);
            self.format.from_bits(bits & !crate::adder::width_mask(k))
        } else {
            raw
        };
        self.format.from_raw(snapped)
    }

    fn level(&self) -> AccuracyLevel {
        self.level
    }

    fn set_level(&mut self, level: AccuracyLevel) {
        self.level = level;
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn approx_energy(&self) -> f64 {
        self.approx_energy
    }

    fn total_energy(&self) -> f64 {
        self.approx_energy + self.other_energy
    }

    fn reset_counters(&mut self) {
        self.counts = OpCounts::default();
        self.approx_energy = 0.0;
        self.other_energy = 0.0;
        if let Some(trace) = &mut self.trace {
            trace.pairs.clear();
        }
    }

    fn datapath_format(&self) -> Option<QFormat> {
        Some(self.format)
    }

    fn range_config(&self) -> Option<RangeConfig> {
        Some(RangeConfig::for_qcs(&self.qcs, self.level, self.format))
    }
}

/// An idealized infinite-precision (`f64`) context with accurate-mode
/// energy accounting.
///
/// This is a *software* baseline for tests and reference solutions
/// (e.g. normal equations) — it is **not** the paper's `Truth` hardware,
/// which is the fixed-point [`QcsContext`] in `Accurate` mode. It
/// refuses level changes, so baseline runs cannot accidentally be
/// degraded.
///
/// # Example
///
/// ```
/// use approx_arith::{ArithContext, ExactContext};
///
/// let mut ctx = ExactContext::new();
/// assert_eq!(ctx.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// assert_eq!(ctx.counts().muls, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExactContext {
    profile: EnergyProfile,
    counts: OpCounts,
    approx_energy: f64,
    other_energy: f64,
}

impl ExactContext {
    /// Create an exact context with a freshly characterized paper-default
    /// energy profile.
    #[must_use]
    pub fn new() -> Self {
        Self::with_profile(EnergyProfile::paper_default())
    }

    /// Create an exact context reusing an existing profile.
    #[must_use]
    pub fn with_profile(profile: EnergyProfile) -> Self {
        Self {
            profile,
            counts: OpCounts::default(),
            approx_energy: 0.0,
            other_energy: 0.0,
        }
    }
}

impl Default for ExactContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithContext for ExactContext {
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.counts.adds += 1;
        self.approx_energy += self.profile.add_energy(AccuracyLevel::Accurate);
        a + b
    }

    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.counts.muls += 1;
        self.other_energy += self.profile.mul_energy();
        a * b
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.counts.divs += 1;
        self.other_energy += self.profile.div_energy();
        a / b
    }

    fn level(&self) -> AccuracyLevel {
        AccuracyLevel::Accurate
    }

    /// # Panics
    /// Panics if `level` is not `Accurate` — exact baselines must not be
    /// silently degraded.
    fn set_level(&mut self, level: AccuracyLevel) {
        assert!(
            level.is_accurate(),
            "ExactContext cannot run at approximate level {level}"
        );
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn approx_energy(&self) -> f64 {
        self.approx_energy
    }

    fn total_energy(&self) -> f64 {
        self.approx_energy + self.other_energy
    }

    fn reset_counters(&mut self) {
        self.counts = OpCounts::default();
        self.approx_energy = 0.0;
        self.other_energy = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn test_ctx() -> QcsContext {
        QcsContext::new(QcsAdder::paper_default(), QFormat::Q15_16, test_profile())
    }

    #[test]
    fn accurate_mode_is_exact_on_representable_values() {
        let mut ctx = test_ctx();
        assert_eq!(ctx.add(0.125, 0.25), 0.375);
        assert_eq!(ctx.mul(1.5, -2.5), -3.75);
        assert_eq!(ctx.div(3.0, 2.0), 1.5);
    }

    #[test]
    fn accurate_mode_quantizes_to_the_datapath() {
        // The accurate mode is still fixed-point hardware: results are
        // quantized to Q31.16, so 0.1 + 0.2 is *close to* but not equal
        // to the f64 sum.
        let mut ctx = test_ctx();
        let got = ctx.add(0.1, 0.2);
        assert!((got - 0.3).abs() <= QFormat::Q15_16.resolution());
        assert_eq!(got, QFormat::Q15_16.quantize(got)); // representable
    }

    #[test]
    fn sub_is_add_of_negation() {
        let mut ctx = test_ctx();
        ctx.set_level(AccuracyLevel::Level3);
        let s = ctx.sub(1.5, 0.75);
        ctx.set_level(AccuracyLevel::Level3);
        let a = ctx.add(1.5, -0.75);
        assert_eq!(s, a);
    }

    #[test]
    fn energy_accrues_per_level() {
        let mut ctx = test_ctx();
        ctx.add(1.0, 1.0); // accurate: 5.0
        ctx.set_level(AccuracyLevel::Level1);
        ctx.add(1.0, 1.0); // level1: 1.0
        assert_eq!(ctx.approx_energy(), 6.0);
        assert_eq!(ctx.counts().adds, 2);
        ctx.mul(2.0, 2.0);
        assert_eq!(ctx.total_energy(), 56.0);
        assert_eq!(ctx.approx_energy(), 6.0); // muls don't touch the approx meter
    }

    #[test]
    fn reset_preserves_level() {
        let mut ctx = test_ctx();
        ctx.set_level(AccuracyLevel::Level2);
        ctx.add(1.0, 2.0);
        ctx.reset_counters();
        assert_eq!(ctx.counts(), OpCounts::default());
        assert_eq!(ctx.approx_energy(), 0.0);
        assert_eq!(ctx.level(), AccuracyLevel::Level2);
    }

    #[test]
    fn approximate_error_is_bounded_by_level() {
        let mut ctx = test_ctx();
        let mut worst = [0f64; 4];
        let mut rng = crate::rng::Pcg32::seeded(17, 0);
        for _ in 0..500 {
            let a = rng.uniform(-100.0, 100.0);
            let b = rng.uniform(-100.0, 100.0);
            for level in AccuracyLevel::APPROXIMATE {
                ctx.set_level(level);
                let got = ctx.add(a, b);
                worst[level.index()] = worst[level.index()].max((got - (a + b)).abs());
            }
        }
        // Error bound per level: ~2^(k - frac) value units.
        for (i, k) in [20u32, 15, 10, 5].iter().enumerate() {
            let bound = (f64::from(*k) - 16.0 + 1.0).exp2() + 1e-9;
            assert!(
                worst[i] <= bound,
                "level{} worst error {} exceeds {}",
                i + 1,
                worst[i],
                bound
            );
        }
        // And level errors shrink as accuracy rises.
        assert!(worst[0] > worst[3]);
    }

    #[test]
    fn trace_records_bit_patterns() {
        let mut ctx = test_ctx();
        ctx.record_trace(2);
        ctx.set_level(AccuracyLevel::Level2);
        ctx.add(1.0, 2.0);
        ctx.add(3.0, 4.0);
        ctx.add(5.0, 6.0); // beyond capacity: dropped
        let trace = ctx.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace[0].0,
            QFormat::Q15_16.to_bits(QFormat::Q15_16.to_raw(1.0))
        );
    }

    #[test]
    fn exact_context_matches_f64_and_counts() {
        let mut ctx = ExactContext::with_profile(test_profile());
        let d = ctx.dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(d, 32.0);
        assert_eq!(ctx.counts().adds, 3);
        assert_eq!(ctx.counts().muls, 3);
        assert_eq!(ctx.approx_energy(), 15.0);
    }

    #[test]
    #[should_panic(expected = "cannot run at approximate level")]
    fn exact_context_rejects_degradation() {
        ExactContext::with_profile(test_profile()).set_level(AccuracyLevel::Level1);
    }

    #[test]
    fn sum_folds_left_to_right() {
        let mut ctx = ExactContext::with_profile(test_profile());
        assert_eq!(ctx.sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
        assert_eq!(ctx.counts().adds, 4);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_length_mismatch_panics() {
        let mut ctx = ExactContext::with_profile(test_profile());
        let _ = ctx.dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn contexts_are_object_safe() {
        let mut ctx = test_ctx();
        let dynamic: &mut dyn ArithContext = &mut ctx;
        assert_eq!(dynamic.add(1.0, 2.0), 3.0);
    }
}
