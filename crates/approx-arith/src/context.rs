//! Energy-accounting arithmetic contexts.
//!
//! An [`ArithContext`] is the boundary between an application's
//! error-*resilient* datapath and the hardware model: every add/sub/mul
//! the application routes through the context is (a) computed under the
//! currently selected accuracy level and (b) charged to the context's
//! energy meters. Error-*sensitive* computation (control flow,
//! convergence checks, transcendentals) stays in plain `f64` outside the
//! context, mirroring the offline resilience partitioning of Chippa et
//! al. that the paper adopts.
//!
//! # Slice kernels
//!
//! Besides the scalar operations, the trait exposes *slice kernels*
//! ([`ArithContext::add_slice`], [`ArithContext::axpy_slice`],
//! [`ArithContext::dot_slice`], …) — the granularity the solver hot
//! loops actually work at. Every kernel has a default implementation
//! that loops over the scalar ops, so third-party contexts keep working
//! unchanged; the fixed-point [`QcsContext`] overrides them with tight
//! branch-free loops over raw fixed-point words that implement each
//! accuracy level's truncation semantics directly. The contract — pinned
//! by tests in this module and by the `kernel_properties` suite — is
//! that an override is **bit-identical** to the scalar-loop default in
//! values, [`OpCounts`], and energy at every accuracy level.
//!
//! Energy metering is *count-based*: contexts tally integer per-level
//! operation counters and compute energy lazily as
//! `Σ counts × per-op cost`. Integer counters are associative, so a
//! kernel charging `n` ops at once and a scalar loop charging `1` op
//! `n` times produce the same meter reading to the last bit — which is
//! what makes the batched and scalar paths indistinguishable to the
//! controller's energy accounting.

use crate::adder::{width_mask, AccuracyLevel};
use crate::energy::EnergyProfile;
use crate::fixed::QFormat;
use crate::range::RangeConfig;
use crate::recon::{LowPartPolicy, QcsAdder};

/// Operation counters of a context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions (including subtractions, which negate exactly and add).
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
}

impl OpCounts {
    /// Total operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.divs
    }
}

/// The arithmetic fabric an application's error-resilient part runs on.
///
/// Implementations must make `add` commutative and `sub(a, b)`
/// equivalent to `add(a, -b)` (hardware negation is exact — an inverter
/// row plus carry-in). Implementations that override the slice kernels
/// must keep them bit-identical — in values, [`OpCounts`], and energy —
/// to the scalar-loop defaults.
///
/// The trait is object-safe; applications typically take
/// `&mut dyn ArithContext`.
pub trait ArithContext {
    /// Add two values on the approximate adder fabric.
    fn add(&mut self, a: f64, b: f64) -> f64;

    /// Multiply two values (exact multiplier, fixed-point datapath).
    fn mul(&mut self, a: f64, b: f64) -> f64;

    /// Divide two values (exact sequential divider).
    fn div(&mut self, a: f64, b: f64) -> f64;

    /// Subtract via exact negation and an approximate add.
    fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.add(a, -b)
    }

    /// Currently selected accuracy level.
    fn level(&self) -> AccuracyLevel;

    /// Select the accuracy level used by subsequent operations.
    fn set_level(&mut self, level: AccuracyLevel);

    /// Operation counters since the last reset.
    fn counts(&self) -> OpCounts;

    /// Energy consumed by the *approximate part* (the adder fabric) since
    /// the last reset. This is the quantity the paper's tables normalize.
    fn approx_energy(&self) -> f64;

    /// Total energy including the exact multiplier/divider.
    fn total_energy(&self) -> f64;

    /// Reset counters and energy meters (the level is preserved).
    fn reset_counters(&mut self);

    /// The fixed-point format of the hardware datapath, if this context
    /// models one. Software baselines (plain `f64`) return `None`.
    ///
    /// Decorators that corrupt or transform bit patterns use this to
    /// address the *actual* word width instead of assuming a format.
    fn datapath_format(&self) -> Option<QFormat> {
        None
    }

    /// Per-operation error model for static range analysis, if this
    /// context models a bounded-error hardware datapath. Software
    /// baselines return `None`; the QCS context returns a
    /// [`RangeConfig`] whose add slack covers the worst-case error of
    /// the *current* accuracy level.
    fn range_config(&self) -> Option<RangeConfig> {
        None
    }

    /// Element-wise `out[i] = x[i] + y[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn add_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            *o = self.add(x, y);
        }
    }

    /// Element-wise `out[i] = x[i] − y[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn sub_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            *o = self.sub(x, y);
        }
    }

    /// Element-wise `out[i] = alpha · x[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn scale_slice(&mut self, alpha: f64, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.mul(alpha, x);
        }
    }

    /// Element-wise `out[i] = alpha · x[i] + y[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn axpy_slice(&mut self, alpha: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            let p = self.mul(alpha, x);
            *o = self.add(p, y);
        }
    }

    /// In-place accumulation `y[i] = y[i] + x[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn add_assign_slice(&mut self, ys: &mut [f64], xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        for (y, &x) in ys.iter_mut().zip(xs) {
            *y = self.add(*y, x);
        }
    }

    /// In-place accumulation `y[i] = y[i] + alpha · x[i]` on the
    /// datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn axpy_assign_slice(&mut self, ys: &mut [f64], alpha: f64, xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        for (y, &x) in ys.iter_mut().zip(xs) {
            let p = self.mul(alpha, x);
            *y = self.add(*y, p);
        }
    }

    /// Dot product reduction `Σ x[i] · y[i]` on the datapath, folding
    /// left to right from `0.0`.
    ///
    /// This is the *single* reduction path: [`ArithContext::dot`] (and
    /// hence `linalg`'s free `dot`) delegates here, so op counts cannot
    /// drift between the trait method and the free function.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    fn dot_slice(&mut self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "dot operands must have equal length");
        let mut acc = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let p = self.mul(x, y);
            acc = self.add(acc, p);
        }
        acc
    }

    /// Left-to-right sum reduction of a slice from `0.0` on the
    /// datapath. [`ArithContext::sum`] delegates here.
    fn sum_slice(&mut self, xs: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &x in xs {
            acc = self.add(acc, x);
        }
        acc
    }

    /// Dense row-major matrix–vector product:
    /// `out[r] = Σⱼ rows[r·cols + j] · x[j]`, each row reduced exactly
    /// like [`ArithContext::dot_slice`] (left-to-right from `0.0`).
    ///
    /// This is the one fusion opportunity per-row `dot_slice` calls
    /// cannot express: the operand `x` is shared by every row, so an
    /// override can convert it to the datapath representation once and
    /// amortize that cost over all `rows.len() / cols` reductions.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `rows.len() != cols · out.len()`.
    fn matvec_slice(&mut self, rows: &[f64], cols: usize, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), cols, "vector length must equal column count");
        assert_eq!(rows.len(), cols * out.len(), "matrix shape mismatch");
        if cols == 0 {
            out.fill(0.0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
            *o = self.dot_slice(row, x);
        }
    }

    /// Sparse (CSR) matrix–vector product:
    /// `out[r] = Σ_k values[k] · x[col_idx[k]]` over the stored entries
    /// `k ∈ row_ptr[r] .. row_ptr[r+1]`, each row reduced exactly like
    /// [`ArithContext::dot_slice`] (left-to-right from `0.0`, in stored
    /// order).
    ///
    /// Only the value products and the row reductions run on the
    /// datapath. The index and row-pointer arithmetic is *exact* host
    /// arithmetic by contract — approximating an address would corrupt
    /// structure, not degrade quality, which is exactly the class of
    /// error the paper's resilience partitioning excludes (and the
    /// workspace auditor's `taint-index` rule polices).
    ///
    /// Like [`ArithContext::matvec_slice`], the operand `x` is shared by
    /// every row, so an override can convert it to the datapath
    /// representation once and amortize that cost over all stored
    /// entries.
    ///
    /// # Panics
    /// Panics if the CSR shape is inconsistent: `values` and `col_idx`
    /// must have equal length, `row_ptr` must start at 0, end at
    /// `values.len()` and have `out.len() + 1` entries. Non-monotone row
    /// pointers or column indices `≥ x.len()` panic on the out-of-bounds
    /// access itself.
    fn spmv_slice(
        &mut self,
        values: &[f64],
        col_idx: &[usize],
        row_ptr: &[usize],
        x: &[f64],
        out: &mut [f64],
    ) {
        check_csr_shape(values, col_idx, row_ptr, out.len());
        for (r, o) in out.iter_mut().enumerate() {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            let mut acc = 0.0;
            for (&a, &j) in values[lo..hi].iter().zip(&col_idx[lo..hi]) {
                let p = self.mul(a, x[j]);
                acc = self.add(acc, p);
            }
            *o = acc;
        }
    }

    /// Left-to-right sum of a slice (delegates to
    /// [`ArithContext::sum_slice`] — override that, not this).
    fn sum(&mut self, xs: &[f64]) -> f64 {
        self.sum_slice(xs)
    }

    /// Dot product (delegates to [`ArithContext::dot_slice`] — override
    /// that, not this).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    fn dot(&mut self, xs: &[f64], ys: &[f64]) -> f64 {
        self.dot_slice(xs, ys)
    }
}

/// Shared shape validation for [`ArithContext::spmv_slice`]: `row_ptr`
/// must bracket the stored entries and `out` must have one slot per
/// row. Column bounds and row-pointer monotonicity are enforced by the
/// slice indexing inside the kernels themselves.
fn check_csr_shape(values: &[f64], col_idx: &[usize], row_ptr: &[usize], out_len: usize) {
    assert_eq!(
        values.len(),
        col_idx.len(),
        "values and col_idx lengths must match"
    );
    assert_eq!(
        row_ptr.len(),
        out_len + 1,
        "row_ptr must have one entry per row plus a terminator"
    );
    assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
    assert_eq!(
        *row_ptr.last().expect("row_ptr is non-empty"),
        values.len(),
        "row_ptr must end at the stored-entry count"
    );
}

/// The hoisted per-level add configuration of a [`QcsContext`]: the
/// level dispatch (`QcsAdder::at`) resolved once at `set_level` time so
/// the per-op and kernel paths run branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AddMode {
    /// Approximated low bits of the current level (0 in accurate mode).
    k: u32,
    /// `true` for [`LowPartPolicy::Or`], `false` for truncation.
    or_low: bool,
    /// Mask selecting the datapath's `width` low bits.
    mask: u64,
    /// `width ≤ 54` ⇒ every raw value round-trips through `f64`
    /// exactly, so fused kernels may keep intermediates in raw form.
    exact_roundtrip: bool,
}

impl AddMode {
    fn for_level(qcs: &QcsAdder, format: QFormat, level: AccuracyLevel) -> Self {
        Self {
            k: qcs.approx_bits(level),
            or_low: qcs.policy() == LowPartPolicy::Or,
            mask: width_mask(format.width()),
            // |raw| < 2^(width−1) is exactly representable in f64 up to
            // width 54, and the power-of-two scaling in from_raw/to_raw
            // is itself exact.
            exact_roundtrip: format.width() <= 54,
        }
    }

    /// The QCS add on pre-masked `width`-bit patterns — functionally
    /// identical to `QcsAdder::add` at the hoisted level (pinned by
    /// tests), without re-dispatching the mode per operation.
    #[inline]
    fn add_bits(self, a: u64, b: u64) -> u64 {
        let k = self.k;
        if k == 0 {
            return a.wrapping_add(b) & self.mask;
        }
        let high = (a >> k).wrapping_add(b >> k);
        if self.or_low {
            let low = (a | b) & width_mask(k);
            ((high << k) | low) & self.mask
        } else {
            (high << k) & self.mask
        }
    }
}

/// Context for the quality-configurable datapath: fixed-point arithmetic
/// with the [`QcsAdder`] at a selectable accuracy level, plus energy and
/// operation accounting.
///
/// *Every* mode — including `Accurate` — runs on the same fixed-point
/// datapath: operands are quantized to the context's [`QFormat`] and the
/// add is performed by the QCS adder at the selected level. The accurate
/// mode differs only in that the full carry chain is enabled, exactly
/// like the hardware. A consequence worth internalizing: iterative
/// methods on this datapath converge by *freezing* — once an update
/// falls below the fixed-point resolution the state reproduces itself
/// bit-exactly — which is why the paper can use convergence tolerances
/// (e.g. 10⁻¹³) far below the datapath resolution.
///
/// The slice kernels are overridden with raw-word loops that convert
/// once per slice, hoist the level dispatch, and charge the meters in
/// one integer bump — bit-identical to the scalar path but several times
/// faster (see `bench --bin solverperf`). When an operand trace is being
/// recorded the kernels fall back to the per-op path so the trace stays
/// exactly what the scalar semantics would record.
///
/// # Example
///
/// ```
/// use approx_arith::{AccuracyLevel, ArithContext, QcsContext};
///
/// let mut ctx = QcsContext::with_paper_defaults();
/// let exact = ctx.add(0.125, 0.25);
/// assert_eq!(exact, 0.375); // representable in Q15.16: exact
///
/// ctx.set_level(AccuracyLevel::Level1);
/// let approx = ctx.add(0.125, 0.25);
/// // Level 1 mangles the low 20 bits — the result is off but bounded.
/// assert!((approx - 0.375).abs() < 32.0);
/// assert!(ctx.approx_energy() > 0.0);
///
/// // Slice kernels: one call, n ops' worth of results and accounting.
/// let mut out = [0.0; 3];
/// ctx.add_slice(&[1.0, 2.0, 3.0], &[0.5, 0.5, 0.5], &mut out);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QcsContext {
    qcs: QcsAdder,
    format: QFormat,
    profile: EnergyProfile,
    level: AccuracyLevel,
    mode: AddMode,
    /// Adds tallied per accuracy level (indexed by
    /// [`AccuracyLevel::index`]); energy is derived lazily from these.
    add_counts: [u64; 5],
    muls: u64,
    divs: u64,
    trace: Option<Trace>,
}

#[derive(Debug, Clone, PartialEq)]
struct Trace {
    capacity: usize,
    pairs: Vec<(u64, u64)>,
}

impl QcsContext {
    /// Create a context over an explicit adder, format, and energy
    /// profile. The initial level is `Accurate`.
    ///
    /// # Panics
    /// Panics if the adder and format widths differ.
    #[must_use]
    pub fn new(qcs: QcsAdder, format: QFormat, profile: EnergyProfile) -> Self {
        assert_eq!(
            qcs.width(),
            format.width(),
            "adder width and fixed-point width must match"
        );
        let level = AccuracyLevel::Accurate;
        Self {
            qcs,
            format,
            profile,
            level,
            mode: AddMode::for_level(&qcs, format, level),
            add_counts: [0; 5],
            muls: 0,
            divs: 0,
            trace: None,
        }
    }

    /// The configuration used throughout the reproduction:
    /// [`QcsAdder::paper_default`], [`QFormat::Q15_16`], and a freshly
    /// characterized [`EnergyProfile`].
    #[must_use]
    pub fn with_paper_defaults() -> Self {
        Self::new(
            QcsAdder::paper_default(),
            QFormat::Q15_16,
            EnergyProfile::paper_default(),
        )
    }

    /// Like [`QcsContext::with_paper_defaults`] but reusing an
    /// already-characterized profile (characterization simulates gate
    /// netlists; share it across contexts).
    #[must_use]
    pub fn with_profile(profile: EnergyProfile) -> Self {
        Self::new(QcsAdder::paper_default(), QFormat::Q15_16, profile)
    }

    /// The fixed-point format of the datapath.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The underlying QCS adder.
    #[must_use]
    pub fn adder(&self) -> &QcsAdder {
        &self.qcs
    }

    /// The energy profile in use.
    #[must_use]
    pub fn profile(&self) -> &EnergyProfile {
        &self.profile
    }

    /// Start recording the operand bit patterns of approximate adds into
    /// a bounded trace (for trace-driven characterization). Recording
    /// stops silently once `capacity` pairs are stored.
    pub fn record_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace {
            capacity,
            pairs: Vec::with_capacity(capacity.min(4096)),
        });
    }

    /// The recorded operand trace, if recording was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&[(u64, u64)]> {
        self.trace.as_ref().map(|t| t.pairs.as_slice())
    }
}

impl ArithContext for QcsContext {
    #[inline]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.add_counts[self.level.index()] += 1;
        let ba = self.format.to_bits(self.format.to_raw(a));
        let bb = self.format.to_bits(self.format.to_raw(b));
        if let Some(trace) = &mut self.trace {
            if trace.pairs.len() < trace.capacity {
                trace.pairs.push((ba, bb));
            }
        }
        let bits = self.mode.add_bits(ba, bb);
        self.format.from_raw(self.format.from_bits(bits))
    }

    #[inline]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.muls += 1;
        let ra = self.format.to_raw(a);
        let rb = self.format.to_raw(b);
        self.format.from_raw(self.format.mul_raw(ra, rb))
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.divs += 1;
        // The sequential shift-subtract divider is built from the same
        // QCS adder, so its quotient inherits the level's approximation:
        // with the truncation policy the low `approx_bits` quotient bits
        // are never produced and the result lands on the level's coarse
        // grid.
        let qa = self.format.quantize(a);
        let qb = self.format.quantize(b);
        let raw = self.format.to_raw(qa / qb);
        let snapped = if self.mode.k > 0 && !self.mode.or_low {
            let bits = self.format.to_bits(raw);
            self.format.from_bits(bits & !width_mask(self.mode.k))
        } else {
            raw
        };
        self.format.from_raw(snapped)
    }

    fn level(&self) -> AccuracyLevel {
        self.level
    }

    fn set_level(&mut self, level: AccuracyLevel) {
        self.level = level;
        self.mode = AddMode::for_level(&self.qcs, self.format, level);
    }

    fn counts(&self) -> OpCounts {
        OpCounts {
            adds: self.add_counts.iter().sum(),
            muls: self.muls,
            divs: self.divs,
        }
    }

    fn approx_energy(&self) -> f64 {
        let mut energy = 0.0;
        for level in AccuracyLevel::ALL {
            energy += self.add_counts[level.index()] as f64 * self.profile.add_energy(level);
        }
        energy
    }

    fn total_energy(&self) -> f64 {
        self.approx_energy()
            + self.muls as f64 * self.profile.mul_energy()
            + self.divs as f64 * self.profile.div_energy()
    }

    fn reset_counters(&mut self) {
        self.add_counts = [0; 5];
        self.muls = 0;
        self.divs = 0;
        if let Some(trace) = &mut self.trace {
            trace.pairs.clear();
        }
    }

    fn datapath_format(&self) -> Option<QFormat> {
        Some(self.format)
    }

    fn range_config(&self) -> Option<RangeConfig> {
        Some(RangeConfig::for_qcs(&self.qcs, self.level, self.format))
    }

    fn add_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        if self.trace.is_some() {
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                *o = self.add(x, y);
            }
            return;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            let ba = fmt.to_bits(cv.to_raw(x));
            let bb = fmt.to_bits(cv.to_raw(y));
            *o = cv.from_raw(fmt.from_bits(mode.add_bits(ba, bb)));
        }
    }

    fn sub_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        if self.trace.is_some() {
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                *o = self.sub(x, y);
            }
            return;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            let ba = fmt.to_bits(cv.to_raw(x));
            let bb = fmt.to_bits(cv.to_raw(-y));
            *o = cv.from_raw(fmt.from_bits(mode.add_bits(ba, bb)));
        }
    }

    fn scale_slice(&mut self, alpha: f64, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        self.muls += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let ra = cv.to_raw(alpha);
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = cv.from_raw(fmt.mul_raw(ra, cv.to_raw(x)));
        }
    }

    fn axpy_slice(&mut self, alpha: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        if self.trace.is_some() {
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                let p = self.mul(alpha, x);
                *o = self.add(p, y);
            }
            return;
        }
        self.muls += xs.len() as u64;
        self.add_counts[self.level.index()] += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        let exact = self.mode.exact_roundtrip;
        let ra = cv.to_raw(alpha);
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            let mut p = fmt.mul_raw(ra, cv.to_raw(x));
            if !exact {
                p = cv.to_raw(cv.from_raw(p));
            }
            let bits = mode.add_bits(fmt.to_bits(p), fmt.to_bits(cv.to_raw(y)));
            *o = cv.from_raw(fmt.from_bits(bits));
        }
    }

    fn add_assign_slice(&mut self, ys: &mut [f64], xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        if self.trace.is_some() {
            for (y, &x) in ys.iter_mut().zip(xs) {
                *y = self.add(*y, x);
            }
            return;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        for (y, &x) in ys.iter_mut().zip(xs) {
            let ba = fmt.to_bits(cv.to_raw(*y));
            let bb = fmt.to_bits(cv.to_raw(x));
            *y = cv.from_raw(fmt.from_bits(mode.add_bits(ba, bb)));
        }
    }

    fn axpy_assign_slice(&mut self, ys: &mut [f64], alpha: f64, xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        if self.trace.is_some() {
            for (y, &x) in ys.iter_mut().zip(xs) {
                let p = self.mul(alpha, x);
                *y = self.add(*y, p);
            }
            return;
        }
        self.muls += xs.len() as u64;
        self.add_counts[self.level.index()] += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        let exact = self.mode.exact_roundtrip;
        let ra = cv.to_raw(alpha);
        for (y, &x) in ys.iter_mut().zip(xs) {
            let mut p = fmt.mul_raw(ra, cv.to_raw(x));
            if !exact {
                p = cv.to_raw(cv.from_raw(p));
            }
            let bits = mode.add_bits(fmt.to_bits(cv.to_raw(*y)), fmt.to_bits(p));
            *y = cv.from_raw(fmt.from_bits(bits));
        }
    }

    fn dot_slice(&mut self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "dot operands must have equal length");
        if self.trace.is_some() {
            let mut acc = 0.0;
            for (&x, &y) in xs.iter().zip(ys) {
                let p = self.mul(x, y);
                acc = self.add(acc, p);
            }
            return acc;
        }
        self.muls += xs.len() as u64;
        self.add_counts[self.level.index()] += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        if self.mode.exact_roundtrip {
            // The bits→raw→f64→raw→bits round-trip between fused ops is
            // the identity here, so the accumulator never has to leave
            // the masked-bits domain.
            let mut acc_bits: u64 = 0;
            for (&x, &y) in xs.iter().zip(ys) {
                let p = fmt.mul_raw(cv.to_raw(x), cv.to_raw(y));
                acc_bits = mode.add_bits(acc_bits, fmt.to_bits(p));
            }
            cv.from_raw(fmt.from_bits(acc_bits))
        } else {
            let mut acc: i64 = 0;
            for (&x, &y) in xs.iter().zip(ys) {
                let p = cv.to_raw(cv.from_raw(fmt.mul_raw(cv.to_raw(x), cv.to_raw(y))));
                let bits = mode.add_bits(fmt.to_bits(acc), fmt.to_bits(p));
                acc = cv.to_raw(cv.from_raw(fmt.from_bits(bits)));
            }
            cv.from_raw(acc)
        }
    }

    fn matvec_slice(&mut self, rows: &[f64], cols: usize, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), cols, "vector length must equal column count");
        assert_eq!(rows.len(), cols * out.len(), "matrix shape mismatch");
        if cols == 0 {
            out.fill(0.0);
            return;
        }
        if self.trace.is_some() {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
                *o = self.dot_slice(row, x);
            }
            return;
        }
        let n = rows.len() as u64;
        self.muls += n;
        self.add_counts[self.level.index()] += n;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        // The shared vector is converted exactly once; every row's
        // reduction then reuses the raw words.
        let rx: Vec<i64> = x.iter().map(|&v| cv.to_raw(v)).collect();
        if mode.exact_roundtrip {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
                let mut acc_bits: u64 = 0;
                for (&a, &bx) in row.iter().zip(&rx) {
                    let p = fmt.mul_raw(cv.to_raw(a), bx);
                    acc_bits = mode.add_bits(acc_bits, fmt.to_bits(p));
                }
                *o = cv.from_raw(fmt.from_bits(acc_bits));
            }
        } else {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
                let mut acc: i64 = 0;
                for (&a, &bx) in row.iter().zip(&rx) {
                    let p = cv.to_raw(cv.from_raw(fmt.mul_raw(cv.to_raw(a), bx)));
                    let bits = mode.add_bits(fmt.to_bits(acc), fmt.to_bits(p));
                    acc = cv.to_raw(cv.from_raw(fmt.from_bits(bits)));
                }
                *o = cv.from_raw(acc);
            }
        }
    }

    fn spmv_slice(
        &mut self,
        values: &[f64],
        col_idx: &[usize],
        row_ptr: &[usize],
        x: &[f64],
        out: &mut [f64],
    ) {
        check_csr_shape(values, col_idx, row_ptr, out.len());
        if self.trace.is_some() {
            for (r, o) in out.iter_mut().enumerate() {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                let mut acc = 0.0;
                for (&a, &j) in values[lo..hi].iter().zip(&col_idx[lo..hi]) {
                    let p = self.mul(a, x[j]);
                    acc = self.add(acc, p);
                }
                *o = acc;
            }
            return;
        }
        let nnz = values.len() as u64;
        self.muls += nnz;
        self.add_counts[self.level.index()] += nnz;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        // The shared vector is converted exactly once; every stored
        // entry's product then reuses the raw words. (Gathering x[j] is
        // exact index arithmetic — only the product and the reduction
        // touch the fabric.)
        let rx: Vec<i64> = x.iter().map(|&v| cv.to_raw(v)).collect();
        if mode.exact_roundtrip {
            for (r, o) in out.iter_mut().enumerate() {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                let mut acc_bits: u64 = 0;
                for (&a, &j) in values[lo..hi].iter().zip(&col_idx[lo..hi]) {
                    let p = fmt.mul_raw(cv.to_raw(a), rx[j]);
                    acc_bits = mode.add_bits(acc_bits, fmt.to_bits(p));
                }
                *o = cv.from_raw(fmt.from_bits(acc_bits));
            }
        } else {
            for (r, o) in out.iter_mut().enumerate() {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                let mut acc: i64 = 0;
                for (&a, &j) in values[lo..hi].iter().zip(&col_idx[lo..hi]) {
                    let p = cv.to_raw(cv.from_raw(fmt.mul_raw(cv.to_raw(a), rx[j])));
                    let bits = mode.add_bits(fmt.to_bits(acc), fmt.to_bits(p));
                    acc = cv.to_raw(cv.from_raw(fmt.from_bits(bits)));
                }
                *o = cv.from_raw(acc);
            }
        }
    }

    fn sum_slice(&mut self, xs: &[f64]) -> f64 {
        if self.trace.is_some() {
            let mut acc = 0.0;
            for &x in xs {
                acc = self.add(acc, x);
            }
            return acc;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let fmt = self.format;
        let cv = fmt.converter();
        let mode = self.mode;
        if self.mode.exact_roundtrip {
            let mut acc_bits: u64 = 0;
            for &x in xs {
                acc_bits = mode.add_bits(acc_bits, fmt.to_bits(cv.to_raw(x)));
            }
            cv.from_raw(fmt.from_bits(acc_bits))
        } else {
            let mut acc: i64 = 0;
            for &x in xs {
                let bits = mode.add_bits(fmt.to_bits(acc), fmt.to_bits(cv.to_raw(x)));
                acc = cv.to_raw(cv.from_raw(fmt.from_bits(bits)));
            }
            cv.from_raw(acc)
        }
    }
}

/// A wrapper that forces every slice kernel of `C` through the per-op
/// scalar defaults, while delegating the scalar ops and meters.
///
/// This is the reference the batched kernels are pinned against: for any
/// inner context, `ScalarPath<C>` computes the exact values, counts, and
/// energy the pre-kernel per-op code path produced. The `solverperf`
/// benchmark times it as the scalar baseline, and the kernel property
/// tests compare overrides to it bit for bit.
///
/// # Example
///
/// ```
/// use approx_arith::{ArithContext, QcsContext, ScalarPath};
///
/// let mut fast = QcsContext::with_paper_defaults();
/// let mut slow = ScalarPath::new(fast.clone());
/// let x = [1.5, 2.5, 3.5];
/// let y = [0.25, 0.5, 0.75];
/// assert_eq!(fast.dot_slice(&x, &y), slow.dot_slice(&x, &y));
/// assert_eq!(fast.counts(), slow.counts());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarPath<C> {
    inner: C,
}

impl<C: ArithContext> ScalarPath<C> {
    /// Wrap a context so slice kernels take the scalar-loop defaults.
    #[must_use]
    pub fn new(inner: C) -> Self {
        Self { inner }
    }

    /// The wrapped context.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap the context.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: ArithContext> ArithContext for ScalarPath<C> {
    #[inline]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.inner.add(a, b)
    }

    #[inline]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.inner.mul(a, b)
    }

    #[inline]
    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.inner.div(a, b)
    }

    #[inline]
    fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.inner.sub(a, b)
    }

    fn level(&self) -> AccuracyLevel {
        self.inner.level()
    }

    fn set_level(&mut self, level: AccuracyLevel) {
        self.inner.set_level(level);
    }

    fn counts(&self) -> OpCounts {
        self.inner.counts()
    }

    fn approx_energy(&self) -> f64 {
        self.inner.approx_energy()
    }

    fn total_energy(&self) -> f64 {
        self.inner.total_energy()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }

    fn datapath_format(&self) -> Option<QFormat> {
        self.inner.datapath_format()
    }

    fn range_config(&self) -> Option<RangeConfig> {
        self.inner.range_config()
    }

    // Slice kernels intentionally NOT overridden: they run the trait
    // defaults, which loop over the delegated scalar ops.
}

/// An idealized infinite-precision (`f64`) context with accurate-mode
/// energy accounting.
///
/// This is a *software* baseline for tests and reference solutions
/// (e.g. normal equations) — it is **not** the paper's `Truth` hardware,
/// which is the fixed-point [`QcsContext`] in `Accurate` mode. It
/// refuses level changes, so baseline runs cannot accidentally be
/// degraded.
///
/// It keeps the default (scalar-loop) slice kernels: `f64` adds are a
/// single instruction, so there is nothing for a batched override to
/// save, and one code path means one set of semantics to trust.
///
/// # Example
///
/// ```
/// use approx_arith::{ArithContext, ExactContext};
///
/// let mut ctx = ExactContext::new();
/// assert_eq!(ctx.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// assert_eq!(ctx.counts().muls, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExactContext {
    profile: EnergyProfile,
    counts: OpCounts,
    approx_energy: f64,
    other_energy: f64,
}

impl ExactContext {
    /// Create an exact context with a freshly characterized paper-default
    /// energy profile.
    #[must_use]
    pub fn new() -> Self {
        Self::with_profile(EnergyProfile::paper_default())
    }

    /// Create an exact context reusing an existing profile.
    #[must_use]
    pub fn with_profile(profile: EnergyProfile) -> Self {
        Self {
            profile,
            counts: OpCounts::default(),
            approx_energy: 0.0,
            other_energy: 0.0,
        }
    }
}

impl Default for ExactContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithContext for ExactContext {
    #[inline]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.counts.adds += 1;
        self.approx_energy += self.profile.add_energy(AccuracyLevel::Accurate);
        a + b
    }

    #[inline]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.counts.muls += 1;
        self.other_energy += self.profile.mul_energy();
        a * b
    }

    #[inline]
    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.counts.divs += 1;
        self.other_energy += self.profile.div_energy();
        a / b
    }

    fn level(&self) -> AccuracyLevel {
        AccuracyLevel::Accurate
    }

    /// # Panics
    /// Panics if `level` is not `Accurate` — exact baselines must not be
    /// silently degraded.
    fn set_level(&mut self, level: AccuracyLevel) {
        assert!(
            level.is_accurate(),
            "ExactContext cannot run at approximate level {level}"
        );
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn approx_energy(&self) -> f64 {
        self.approx_energy
    }

    fn total_energy(&self) -> f64 {
        self.approx_energy + self.other_energy
    }

    fn reset_counters(&mut self) {
        self.counts = OpCounts::default();
        self.approx_energy = 0.0;
        self.other_energy = 0.0;
    }
}

/// Explicitly endorse a fabric-derived value for exact-only consumption
/// (the EnerJ-style `endorse` cast).
///
/// ApproxIt's control plane — quality metrics, convergence predicates,
/// controller decisions — must depend only on exact values; the static
/// taint audit (`auditor::taint`) enforces that boundary. Where the
/// *design* deliberately reads approximate state (the runner measuring
/// an iterate to decide its fate, a solver detecting a degenerate
/// search direction), the read is wrapped in `endorse` to make the
/// crossing explicit, reviewable, and greppable. The function itself is
/// the identity: endorsement is a statement of intent, not a
/// computation.
#[inline]
#[must_use]
pub fn endorse<T>(value: T) -> T {
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn test_ctx() -> QcsContext {
        QcsContext::new(QcsAdder::paper_default(), QFormat::Q15_16, test_profile())
    }

    #[test]
    fn accurate_mode_is_exact_on_representable_values() {
        let mut ctx = test_ctx();
        assert_eq!(ctx.add(0.125, 0.25), 0.375);
        assert_eq!(ctx.mul(1.5, -2.5), -3.75);
        assert_eq!(ctx.div(3.0, 2.0), 1.5);
    }

    #[test]
    fn accurate_mode_quantizes_to_the_datapath() {
        // The accurate mode is still fixed-point hardware: results are
        // quantized to Q31.16, so 0.1 + 0.2 is *close to* but not equal
        // to the f64 sum.
        let mut ctx = test_ctx();
        let got = ctx.add(0.1, 0.2);
        assert!((got - 0.3).abs() <= QFormat::Q15_16.resolution());
        assert_eq!(got, QFormat::Q15_16.quantize(got)); // representable
    }

    #[test]
    fn sub_is_add_of_negation() {
        let mut ctx = test_ctx();
        ctx.set_level(AccuracyLevel::Level3);
        let s = ctx.sub(1.5, 0.75);
        ctx.set_level(AccuracyLevel::Level3);
        let a = ctx.add(1.5, -0.75);
        assert_eq!(s, a);
    }

    #[test]
    fn energy_accrues_per_level() {
        let mut ctx = test_ctx();
        ctx.add(1.0, 1.0); // accurate: 5.0
        ctx.set_level(AccuracyLevel::Level1);
        ctx.add(1.0, 1.0); // level1: 1.0
        assert_eq!(ctx.approx_energy(), 6.0);
        assert_eq!(ctx.counts().adds, 2);
        ctx.mul(2.0, 2.0);
        assert_eq!(ctx.total_energy(), 56.0);
        assert_eq!(ctx.approx_energy(), 6.0); // muls don't touch the approx meter
    }

    #[test]
    fn reset_preserves_level() {
        let mut ctx = test_ctx();
        ctx.set_level(AccuracyLevel::Level2);
        ctx.add(1.0, 2.0);
        ctx.reset_counters();
        assert_eq!(ctx.counts(), OpCounts::default());
        assert_eq!(ctx.approx_energy(), 0.0);
        assert_eq!(ctx.level(), AccuracyLevel::Level2);
    }

    #[test]
    fn hoisted_add_mode_matches_adder_dispatch() {
        // The per-op fast path (AddMode) must agree with QcsAdder::add's
        // per-call dispatch for every level and policy.
        for policy in [LowPartPolicy::Zero, LowPartPolicy::Or] {
            let qcs = QcsAdder::with_policy(32, [20, 15, 10, 5], policy);
            let mut rng = crate::rng::Pcg32::seeded(41, 7);
            for level in AccuracyLevel::ALL {
                let mode = AddMode::for_level(&qcs, QFormat::Q15_16, level);
                for _ in 0..200 {
                    let a = rng.next_u64() & mode.mask;
                    let b = rng.next_u64() & mode.mask;
                    assert_eq!(
                        mode.add_bits(a, b),
                        qcs.add(a, b, level),
                        "policy {policy:?} level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn approximate_error_is_bounded_by_level() {
        let mut ctx = test_ctx();
        let mut worst = [0f64; 4];
        let mut rng = crate::rng::Pcg32::seeded(17, 0);
        for _ in 0..500 {
            let a = rng.uniform(-100.0, 100.0);
            let b = rng.uniform(-100.0, 100.0);
            for level in AccuracyLevel::APPROXIMATE {
                ctx.set_level(level);
                let got = ctx.add(a, b);
                worst[level.index()] = worst[level.index()].max((got - (a + b)).abs());
            }
        }
        // Error bound per level: ~2^(k - frac) value units.
        for (i, k) in [20u32, 15, 10, 5].iter().enumerate() {
            let bound = (f64::from(*k) - 16.0 + 1.0).exp2() + 1e-9;
            assert!(
                worst[i] <= bound,
                "level{} worst error {} exceeds {}",
                i + 1,
                worst[i],
                bound
            );
        }
        // And level errors shrink as accuracy rises.
        assert!(worst[0] > worst[3]);
    }

    #[test]
    fn trace_records_bit_patterns() {
        let mut ctx = test_ctx();
        ctx.record_trace(2);
        ctx.set_level(AccuracyLevel::Level2);
        ctx.add(1.0, 2.0);
        ctx.add(3.0, 4.0);
        ctx.add(5.0, 6.0); // beyond capacity: dropped
        let trace = ctx.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace[0].0,
            QFormat::Q15_16.to_bits(QFormat::Q15_16.to_raw(1.0))
        );
    }

    #[test]
    fn kernels_fall_back_to_per_op_path_while_tracing() {
        let mut ctx = test_ctx();
        ctx.record_trace(16);
        ctx.set_level(AccuracyLevel::Level3);
        let mut out = [0.0; 3];
        ctx.add_slice(&[1.0, 2.0, 3.0], &[0.5, 0.5, 0.5], &mut out);
        let _ = ctx.dot_slice(&[1.0, 2.0], &[3.0, 4.0]);
        // 3 adds from add_slice + 2 from the dot reduction.
        assert_eq!(ctx.trace().unwrap().len(), 5);
        assert_eq!(ctx.counts().adds, 5);
        assert_eq!(ctx.counts().muls, 2);
    }

    #[test]
    fn batched_kernels_match_scalar_path_counts_and_energy() {
        // A compact in-module pin of the bit-identity contract; the
        // exhaustive sweep lives in tests/kernel_properties.rs.
        let mut fast = test_ctx();
        let mut slow = ScalarPath::new(test_ctx());
        let x = [1.5, -2.25, 100.125, 0.0078125, -64.5];
        let y = [0.5, 7.75, -3.125, 2.0, 0.25];
        for level in AccuracyLevel::ALL {
            fast.set_level(level);
            slow.set_level(level);
            let mut of = [0.0; 5];
            let mut os = [0.0; 5];
            fast.add_slice(&x, &y, &mut of);
            slow.add_slice(&x, &y, &mut os);
            assert_eq!(of, os, "add_slice at {level}");
            fast.axpy_slice(1.5, &x, &y, &mut of);
            slow.axpy_slice(1.5, &x, &y, &mut os);
            assert_eq!(of, os, "axpy_slice at {level}");
            let rows: Vec<f64> = x.iter().chain(&y).chain(&x).copied().collect();
            let mut mf = [0.0; 3];
            let mut ms = [0.0; 3];
            fast.matvec_slice(&rows, 5, &y, &mut mf);
            slow.matvec_slice(&rows, 5, &y, &mut ms);
            assert_eq!(mf, ms, "matvec_slice at {level}");
            assert_eq!(
                fast.dot_slice(&x, &y).to_bits(),
                slow.dot_slice(&x, &y).to_bits(),
                "dot_slice at {level}"
            );
        }
        assert_eq!(fast.counts(), slow.counts());
        assert_eq!(
            fast.approx_energy().to_bits(),
            slow.approx_energy().to_bits()
        );
        assert_eq!(fast.total_energy().to_bits(), slow.total_energy().to_bits());
    }

    #[test]
    fn empty_slices_are_no_ops() {
        let mut ctx = test_ctx();
        let mut out: [f64; 0] = [];
        ctx.add_slice(&[], &[], &mut out);
        ctx.axpy_slice(2.0, &[], &[], &mut out);
        assert_eq!(ctx.dot_slice(&[], &[]), 0.0);
        assert_eq!(ctx.sum_slice(&[]), 0.0);
        assert_eq!(ctx.counts(), OpCounts::default());
        assert_eq!(ctx.approx_energy(), 0.0);
    }

    #[test]
    fn exact_context_matches_f64_and_counts() {
        let mut ctx = ExactContext::with_profile(test_profile());
        let d = ctx.dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(d, 32.0);
        assert_eq!(ctx.counts().adds, 3);
        assert_eq!(ctx.counts().muls, 3);
        assert_eq!(ctx.approx_energy(), 15.0);
    }

    #[test]
    #[should_panic(expected = "cannot run at approximate level")]
    fn exact_context_rejects_degradation() {
        ExactContext::with_profile(test_profile()).set_level(AccuracyLevel::Level1);
    }

    #[test]
    fn sum_folds_left_to_right() {
        let mut ctx = ExactContext::with_profile(test_profile());
        assert_eq!(ctx.sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
        assert_eq!(ctx.counts().adds, 4);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_length_mismatch_panics() {
        let mut ctx = ExactContext::with_profile(test_profile());
        let _ = ctx.dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn kernel_length_mismatch_panics() {
        let mut ctx = test_ctx();
        let mut out = [0.0; 2];
        ctx.add_slice(&[1.0], &[1.0, 2.0], &mut out);
    }

    #[test]
    fn scalar_path_delegates_meters() {
        let mut wrapped = ScalarPath::new(test_ctx());
        wrapped.set_level(AccuracyLevel::Level2);
        assert_eq!(wrapped.level(), AccuracyLevel::Level2);
        let _ = wrapped.add(1.0, 2.0);
        assert_eq!(wrapped.counts().adds, 1);
        assert_eq!(wrapped.approx_energy(), 2.0);
        assert!(wrapped.datapath_format().is_some());
        assert!(wrapped.range_config().is_some());
        wrapped.reset_counters();
        assert_eq!(wrapped.inner().counts(), OpCounts::default());
        let inner = wrapped.into_inner();
        assert_eq!(inner.level(), AccuracyLevel::Level2);
    }

    #[test]
    fn contexts_are_object_safe() {
        let mut ctx = test_ctx();
        let dynamic: &mut dyn ArithContext = &mut ctx;
        assert_eq!(dynamic.add(1.0, 2.0), 3.0);
        let mut out = [0.0; 2];
        dynamic.add_slice(&[1.0, 2.0], &[3.0, 4.0], &mut out);
        assert_eq!(out, [4.0, 6.0]);
    }
}
