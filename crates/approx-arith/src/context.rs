//! Energy-accounting arithmetic contexts.
//!
//! An [`ArithContext`] is the boundary between an application's
//! error-*resilient* datapath and the hardware model: every add/sub/mul
//! the application routes through the context is (a) computed under the
//! currently selected accuracy level and (b) charged to the context's
//! energy meters. Error-*sensitive* computation (control flow,
//! convergence checks, transcendentals) stays in plain `f64` outside the
//! context, mirroring the offline resilience partitioning of Chippa et
//! al. that the paper adopts.
//!
//! # Slice kernels
//!
//! Besides the scalar operations, the trait exposes *slice kernels*
//! ([`ArithContext::add_slice`], [`ArithContext::axpy_slice`],
//! [`ArithContext::dot_slice`], …) — the granularity the solver hot
//! loops actually work at. Every kernel has a default implementation
//! that loops over the scalar ops, so third-party contexts keep working
//! unchanged; the fixed-point [`QcsContext`] overrides them with tight
//! branch-free loops over raw fixed-point words that implement each
//! accuracy level's truncation semantics directly. The contract — pinned
//! by tests in this module and by the `kernel_properties` suite — is
//! that an override is **bit-identical** to the scalar-loop default in
//! values, [`OpCounts`], and energy at every accuracy level.
//!
//! Energy metering is *count-based*: contexts tally integer per-level
//! operation counters and compute energy lazily as
//! `Σ counts × per-op cost`. Integer counters are associative, so a
//! kernel charging `n` ops at once and a scalar loop charging `1` op
//! `n` times produce the same meter reading to the last bit — which is
//! what makes the batched and scalar paths indistinguishable to the
//! controller's energy accounting.

use crate::adder::{width_mask, AccuracyLevel};
use crate::energy::EnergyProfile;
use crate::fixed::{QFormat, RawConverter};
use crate::range::RangeConfig;
use crate::recon::{LowPartPolicy, QcsAdder};

/// Operation counters of a context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions (including subtractions, which negate exactly and add).
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
}

impl OpCounts {
    /// Total operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.divs
    }
}

/// The arithmetic fabric an application's error-resilient part runs on.
///
/// Implementations must make `add` commutative and `sub(a, b)`
/// equivalent to `add(a, -b)` (hardware negation is exact — an inverter
/// row plus carry-in). Implementations that override the slice kernels
/// must keep them bit-identical — in values, [`OpCounts`], and energy —
/// to the scalar-loop defaults.
///
/// The trait is object-safe; applications typically take
/// `&mut dyn ArithContext`.
pub trait ArithContext {
    /// Add two values on the approximate adder fabric.
    fn add(&mut self, a: f64, b: f64) -> f64;

    /// Multiply two values (exact multiplier, fixed-point datapath).
    fn mul(&mut self, a: f64, b: f64) -> f64;

    /// Divide two values (exact sequential divider).
    fn div(&mut self, a: f64, b: f64) -> f64;

    /// Subtract via exact negation and an approximate add.
    fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.add(a, -b)
    }

    /// Currently selected accuracy level.
    fn level(&self) -> AccuracyLevel;

    /// Select the accuracy level used by subsequent operations.
    fn set_level(&mut self, level: AccuracyLevel);

    /// Operation counters since the last reset.
    fn counts(&self) -> OpCounts;

    /// Energy consumed by the *approximate part* (the adder fabric) since
    /// the last reset. This is the quantity the paper's tables normalize.
    fn approx_energy(&self) -> f64;

    /// Total energy including the exact multiplier/divider.
    fn total_energy(&self) -> f64;

    /// Reset counters and energy meters (the level is preserved).
    fn reset_counters(&mut self);

    /// The fixed-point format of the hardware datapath, if this context
    /// models one. Software baselines (plain `f64`) return `None`.
    ///
    /// Decorators that corrupt or transform bit patterns use this to
    /// address the *actual* word width instead of assuming a format.
    fn datapath_format(&self) -> Option<QFormat> {
        None
    }

    /// Per-operation error model for static range analysis, if this
    /// context models a bounded-error hardware datapath. Software
    /// baselines return `None`; the QCS context returns a
    /// [`RangeConfig`] whose add slack covers the worst-case error of
    /// the *current* accuracy level.
    fn range_config(&self) -> Option<RangeConfig> {
        None
    }

    /// Element-wise `out[i] = x[i] + y[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn add_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            *o = self.add(x, y);
        }
    }

    /// Element-wise `out[i] = x[i] − y[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn sub_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            *o = self.sub(x, y);
        }
    }

    /// Element-wise `out[i] = alpha · x[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn scale_slice(&mut self, alpha: f64, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.mul(alpha, x);
        }
    }

    /// Element-wise `out[i] = alpha · x[i] + y[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn axpy_slice(&mut self, alpha: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            let p = self.mul(alpha, x);
            *o = self.add(p, y);
        }
    }

    /// In-place accumulation `y[i] = y[i] + x[i]` on the datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn add_assign_slice(&mut self, ys: &mut [f64], xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        for (y, &x) in ys.iter_mut().zip(xs) {
            *y = self.add(*y, x);
        }
    }

    /// In-place accumulation `y[i] = y[i] + alpha · x[i]` on the
    /// datapath.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    fn axpy_assign_slice(&mut self, ys: &mut [f64], alpha: f64, xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        for (y, &x) in ys.iter_mut().zip(xs) {
            let p = self.mul(alpha, x);
            *y = self.add(*y, p);
        }
    }

    /// Dot product reduction `Σ x[i] · y[i]` on the datapath, folding
    /// left to right from `0.0`.
    ///
    /// This is the *single* reduction path: [`ArithContext::dot`] (and
    /// hence `linalg`'s free `dot`) delegates here, so op counts cannot
    /// drift between the trait method and the free function.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    fn dot_slice(&mut self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "dot operands must have equal length");
        let mut acc = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let p = self.mul(x, y);
            acc = self.add(acc, p);
        }
        acc
    }

    /// Left-to-right sum reduction of a slice from `0.0` on the
    /// datapath. [`ArithContext::sum`] delegates here.
    fn sum_slice(&mut self, xs: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &x in xs {
            acc = self.add(acc, x);
        }
        acc
    }

    /// Dense row-major matrix–vector product:
    /// `out[r] = Σⱼ rows[r·cols + j] · x[j]`, each row reduced exactly
    /// like [`ArithContext::dot_slice`] (left-to-right from `0.0`).
    ///
    /// This is the one fusion opportunity per-row `dot_slice` calls
    /// cannot express: the operand `x` is shared by every row, so an
    /// override can convert it to the datapath representation once and
    /// amortize that cost over all `rows.len() / cols` reductions.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `rows.len() != cols · out.len()`.
    fn matvec_slice(&mut self, rows: &[f64], cols: usize, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), cols, "vector length must equal column count");
        assert_eq!(rows.len(), cols * out.len(), "matrix shape mismatch");
        if cols == 0 {
            out.fill(0.0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
            *o = self.dot_slice(row, x);
        }
    }

    /// Sparse (CSR) matrix–vector product:
    /// `out[r] = Σ_k values[k] · x[col_idx[k]]` over the stored entries
    /// `k ∈ row_ptr[r] .. row_ptr[r+1]`, each row reduced exactly like
    /// [`ArithContext::dot_slice`] (left-to-right from `0.0`, in stored
    /// order).
    ///
    /// Only the value products and the row reductions run on the
    /// datapath. The index and row-pointer arithmetic is *exact* host
    /// arithmetic by contract — approximating an address would corrupt
    /// structure, not degrade quality, which is exactly the class of
    /// error the paper's resilience partitioning excludes (and the
    /// workspace auditor's `taint-index` rule polices).
    ///
    /// Like [`ArithContext::matvec_slice`], the operand `x` is shared by
    /// every row, so an override can convert it to the datapath
    /// representation once and amortize that cost over all stored
    /// entries.
    ///
    /// # Panics
    /// Panics if the CSR shape is inconsistent: `values` and `col_idx`
    /// must have equal length, `row_ptr` must start at 0, end at
    /// `values.len()` and have `out.len() + 1` entries. Non-monotone row
    /// pointers or column indices `≥ x.len()` panic on the out-of-bounds
    /// access itself.
    fn spmv_slice(
        &mut self,
        values: &[f64],
        col_idx: &[usize],
        row_ptr: &[usize],
        x: &[f64],
        out: &mut [f64],
    ) {
        check_csr_shape(values, col_idx, row_ptr, out.len());
        for (r, o) in out.iter_mut().enumerate() {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            let mut acc = 0.0;
            for (&a, &j) in values[lo..hi].iter().zip(&col_idx[lo..hi]) {
                let p = self.mul(a, x[j]);
                acc = self.add(acc, p);
            }
            *o = acc;
        }
    }

    /// Left-to-right sum of a slice (delegates to
    /// [`ArithContext::sum_slice`] — override that, not this).
    fn sum(&mut self, xs: &[f64]) -> f64 {
        self.sum_slice(xs)
    }

    /// Dot product (delegates to [`ArithContext::dot_slice`] — override
    /// that, not this).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    fn dot(&mut self, xs: &[f64], ys: &[f64]) -> f64 {
        self.dot_slice(xs, ys)
    }
}

/// Shared shape validation for [`ArithContext::spmv_slice`]: `row_ptr`
/// must bracket the stored entries and `out` must have one slot per
/// row. Column bounds and row-pointer monotonicity are enforced by the
/// slice indexing inside the kernels themselves.
fn check_csr_shape(values: &[f64], col_idx: &[usize], row_ptr: &[usize], out_len: usize) {
    assert_eq!(
        values.len(),
        col_idx.len(),
        "values and col_idx lengths must match"
    );
    assert_eq!(
        row_ptr.len(),
        out_len + 1,
        "row_ptr must have one entry per row plus a terminator"
    );
    assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
    assert_eq!(
        *row_ptr.last().expect("row_ptr is non-empty"),
        values.len(),
        "row_ptr must end at the stored-entry count"
    );
}

/// The hoisted per-level add configuration of a [`QcsContext`]: the
/// level dispatch (`QcsAdder::at`) resolved once at `set_level` time so
/// the per-op and kernel paths run branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AddMode {
    /// Approximated low bits of the current level (0 in accurate mode).
    k: u32,
    /// `true` for [`LowPartPolicy::Or`], `false` for truncation.
    or_low: bool,
    /// Mask selecting the datapath's `width` low bits.
    mask: u64,
    /// Datapath width in bits, for sign extension and SWAR lane layout.
    w: u32,
    /// `width ≤ 54` ⇒ every raw value round-trips through `f64`
    /// exactly, so fused kernels may keep intermediates in raw form.
    exact_roundtrip: bool,
}

impl AddMode {
    fn for_level(qcs: &QcsAdder, format: QFormat, level: AccuracyLevel) -> Self {
        Self {
            k: qcs.approx_bits(level),
            or_low: qcs.policy() == LowPartPolicy::Or,
            mask: width_mask(format.width()),
            w: format.width(),
            // |raw| < 2^(width−1) is exactly representable in f64 up to
            // width 54, and the power-of-two scaling in from_raw/to_raw
            // is itself exact.
            exact_roundtrip: format.width() <= 54,
        }
    }

    /// The QCS add on pre-masked `width`-bit patterns — functionally
    /// identical to `QcsAdder::add` at the hoisted level (pinned by
    /// tests), without re-dispatching the mode per operation.
    #[inline]
    fn add_bits(self, a: u64, b: u64) -> u64 {
        let k = self.k;
        if k == 0 {
            return a.wrapping_add(b) & self.mask;
        }
        let high = (a >> k).wrapping_add(b >> k);
        if self.or_low {
            let low = (a | b) & width_mask(k);
            ((high << k) | low) & self.mask
        } else {
            (high << k) & self.mask
        }
    }

    /// Branch-free sign extension of a masked `width`-bit pattern —
    /// equal to [`QFormat::from_bits`] on pre-masked input, without the
    /// sign test.
    #[inline]
    fn sext(self, bits: u64) -> i64 {
        ((bits << (64 - self.w)) as i64) >> (64 - self.w)
    }

    /// One QCS add on raw (sign-extended) words: mask, add, re-extend.
    #[inline]
    fn add_raws(self, a: i64, b: i64) -> i64 {
        self.sext(self.add_bits(a as u64 & self.mask, b as u64 & self.mask))
    }

    /// In-place element-wise QCS add over raw words:
    /// `acc[i] = add(acc[i], ys[i])`.
    ///
    /// When two datapath words fit in a `u64` (`2·width ≤ 64`, e.g. the
    /// paper-default Q15.16), pairs of elements are packed into one word
    /// and added with carry-isolating SWAR masks, `packed.rs`-style —
    /// bit-identical to the scalar loop (pinned by tests).
    fn add_raw_slices(self, acc: &mut [i64], ys: &[i64]) {
        debug_assert_eq!(acc.len(), ys.len());
        let w = self.w;
        if 2 * w > 64 {
            for (a, &b) in acc.iter_mut().zip(ys) {
                *a = self.add_raws(*a, b);
            }
            return;
        }
        let m = self.mask;
        let k = self.k;
        let pairs = acc.len() / 2;
        if k == 0 {
            // Clearing the lane MSBs before the add confines every carry
            // chain to its own lane (each lane sum is then < 2^width);
            // the XOR restores the carry-less MSB sum afterwards.
            let h = (1u64 << (w - 1)) | (1u64 << (2 * w - 1));
            for i in 0..pairs {
                let a = (acc[2 * i] as u64 & m) | ((acc[2 * i + 1] as u64 & m) << w);
                let b = (ys[2 * i] as u64 & m) | ((ys[2 * i + 1] as u64 & m) << w);
                let s = ((a & !h).wrapping_add(b & !h)) ^ ((a ^ b) & h);
                acc[2 * i] = self.sext(s & m);
                acc[2 * i + 1] = self.sext((s >> w) & m);
            }
        } else {
            // Approximate levels: `a >> k` smears the upper lane's low
            // bits into the lower lane, so the per-lane high parts are
            // re-masked to (width − k) bits before adding. A sum of two
            // (width − k)-bit lanes needs width − k + 1 ≤ width bits, so
            // the plain add cannot carry across the lane boundary.
            let hm = (1u64 << (w - k)) - 1;
            let sm = hm | (hm << w);
            let lm = (1u64 << k) - 1;
            let km = lm | (lm << w);
            for i in 0..pairs {
                let a = (acc[2 * i] as u64 & m) | ((acc[2 * i + 1] as u64 & m) << w);
                let b = (ys[2 * i] as u64 & m) | ((ys[2 * i + 1] as u64 & m) << w);
                let hs = ((a >> k) & sm).wrapping_add((b >> k) & sm);
                let mut s = (hs & sm) << k;
                if self.or_low {
                    s |= (a | b) & km;
                }
                acc[2 * i] = self.sext(s & m);
                acc[2 * i + 1] = self.sext((s >> w) & m);
            }
        }
        if acc.len() % 2 == 1 {
            let i = acc.len() - 1;
            acc[i] = self.add_raws(acc[i], ys[i]);
        }
    }
}

/// The hoisted multiply configuration of a [`QcsContext`] kernel: the
/// datapath multiply with the format constants resolved once, plus a
/// narrow fast path that `QFormat::mul_raw` itself cannot take (the
/// scalar per-op baseline must keep its own timing characteristics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MulMode {
    format: QFormat,
    frac_bits: u32,
    half: i64,
    max_raw: i64,
    min_raw: i64,
    /// `width ≤ 32` ⇒ |raw| ≤ 2³¹, so products and the rounding bias fit
    /// in an `i64` and the kernels can skip the i128 datapath.
    narrow: bool,
}

impl MulMode {
    fn for_format(format: QFormat) -> Self {
        let w = format.width();
        Self {
            format,
            frac_bits: format.frac_bits(),
            half: 1i64 << (format.frac_bits().max(1) - 1),
            max_raw: ((1u64 << (w - 1)) - 1) as i64,
            min_raw: -1i64 << (w - 1),
            narrow: w <= 32,
        }
    }

    /// `QFormat::mul_raw`, bit-identical (pinned by tests), with the
    /// multiplication kept in `i64` when the width permits.
    #[inline]
    fn mul_raw(self, a: i64, b: i64) -> i64 {
        if self.narrow {
            let wide = a * b;
            let shifted = if wide >= 0 {
                (wide + self.half) >> self.frac_bits
            } else {
                -((-wide + self.half) >> self.frac_bits)
            };
            shifted.clamp(self.min_raw, self.max_raw)
        } else {
            self.format.mul_raw(a, b)
        }
    }
}

/// Stack-block length for the fused kernels' batched conversions: long
/// enough to amortize loop overhead and let `to_raw_slice` vectorize,
/// small enough that the `i64`/`f64` staging arrays stay in L1 and on
/// the stack (no allocation inside parallel workers).
const BLOCK: usize = 256;

/// Fabric-op threshold below which kernels stay serial even when an
/// executor is attached: spawning scoped workers costs tens of
/// microseconds, which only pays for itself on big-`n` work.
const PAR_MIN_OPS: usize = 4096;

/// Elements per parallel chunk. Fixed — never derived from the thread
/// count — so the work attached to a chunk index is the same for every
/// executor width (parx determinism rule 1).
const PAR_CHUNK: usize = 4096;

/// `out[i] = x[i] + y[i]` over one span, block-batched.
fn add_span(cv: RawConverter, mode: AddMode, xs: &[f64], ys: &[f64], out: &mut [f64]) {
    let mut ra = [0i64; BLOCK];
    let mut rb = [0i64; BLOCK];
    for ((xc, yc), oc) in xs
        .chunks(BLOCK)
        .zip(ys.chunks(BLOCK))
        .zip(out.chunks_mut(BLOCK))
    {
        let n = xc.len();
        cv.to_raw_slice(xc, &mut ra[..n]);
        cv.to_raw_slice(yc, &mut rb[..n]);
        mode.add_raw_slices(&mut ra[..n], &rb[..n]);
        cv.from_raw_slice(&ra[..n], oc);
    }
}

/// `out[i] = x[i] − y[i]` over one span: exact negation, then the add.
fn sub_span(cv: RawConverter, mode: AddMode, xs: &[f64], ys: &[f64], out: &mut [f64]) {
    let mut ra = [0i64; BLOCK];
    let mut rb = [0i64; BLOCK];
    let mut ny = [0f64; BLOCK];
    for ((xc, yc), oc) in xs
        .chunks(BLOCK)
        .zip(ys.chunks(BLOCK))
        .zip(out.chunks_mut(BLOCK))
    {
        let n = xc.len();
        for (nv, &y) in ny[..n].iter_mut().zip(yc) {
            *nv = -y;
        }
        cv.to_raw_slice(xc, &mut ra[..n]);
        cv.to_raw_slice(&ny[..n], &mut rb[..n]);
        mode.add_raw_slices(&mut ra[..n], &rb[..n]);
        cv.from_raw_slice(&ra[..n], oc);
    }
}

/// `y[i] = y[i] + x[i]` over one span, block-batched.
fn add_assign_span(cv: RawConverter, mode: AddMode, ys: &mut [f64], xs: &[f64]) {
    let mut ra = [0i64; BLOCK];
    let mut rb = [0i64; BLOCK];
    for (yc, xc) in ys.chunks_mut(BLOCK).zip(xs.chunks(BLOCK)) {
        let n = yc.len();
        cv.to_raw_slice(yc, &mut ra[..n]);
        cv.to_raw_slice(xc, &mut rb[..n]);
        mode.add_raw_slices(&mut ra[..n], &rb[..n]);
        cv.from_raw_slice(&ra[..n], yc);
    }
}

/// `out[i] = alpha · x[i]` over one span (alpha pre-converted).
fn scale_span(cv: RawConverter, mul: MulMode, ra_alpha: i64, xs: &[f64], out: &mut [f64]) {
    let mut rx = [0i64; BLOCK];
    for (xc, oc) in xs.chunks(BLOCK).zip(out.chunks_mut(BLOCK)) {
        let n = xc.len();
        cv.to_raw_slice(xc, &mut rx[..n]);
        for r in &mut rx[..n] {
            *r = mul.mul_raw(ra_alpha, *r);
        }
        cv.from_raw_slice(&rx[..n], oc);
    }
}

/// `out[i] = alpha · x[i] + y[i]` over one span, block-batched.
fn axpy_span(
    cv: RawConverter,
    mode: AddMode,
    mul: MulMode,
    ra_alpha: i64,
    xs: &[f64],
    ys: &[f64],
    out: &mut [f64],
) {
    let mut rp = [0i64; BLOCK];
    let mut ry = [0i64; BLOCK];
    let exact = mode.exact_roundtrip;
    for ((xc, yc), oc) in xs
        .chunks(BLOCK)
        .zip(ys.chunks(BLOCK))
        .zip(out.chunks_mut(BLOCK))
    {
        let n = xc.len();
        cv.to_raw_slice(xc, &mut rp[..n]);
        cv.to_raw_slice(yc, &mut ry[..n]);
        for p in &mut rp[..n] {
            let mut v = mul.mul_raw(ra_alpha, *p);
            if !exact {
                v = cv.to_raw(cv.from_raw(v));
            }
            *p = v;
        }
        mode.add_raw_slices(&mut rp[..n], &ry[..n]);
        cv.from_raw_slice(&rp[..n], oc);
    }
}

/// `y[i] = y[i] + alpha · x[i]` over one span, block-batched. The add's
/// operand order (`y` first) matches the scalar path exactly.
fn axpy_assign_span(
    cv: RawConverter,
    mode: AddMode,
    mul: MulMode,
    ra_alpha: i64,
    ys: &mut [f64],
    xs: &[f64],
) {
    let mut ra = [0i64; BLOCK];
    let mut rb = [0i64; BLOCK];
    let exact = mode.exact_roundtrip;
    for (yc, xc) in ys.chunks_mut(BLOCK).zip(xs.chunks(BLOCK)) {
        let n = yc.len();
        cv.to_raw_slice(yc, &mut ra[..n]);
        cv.to_raw_slice(xc, &mut rb[..n]);
        for p in &mut rb[..n] {
            let mut v = mul.mul_raw(ra_alpha, *p);
            if !exact {
                v = cv.to_raw(cv.from_raw(v));
            }
            *p = v;
        }
        mode.add_raw_slices(&mut ra[..n], &rb[..n]);
        cv.from_raw_slice(&ra[..n], yc);
    }
}

/// Partial dot reduction over one span on an exactly-round-tripping
/// width, folded left-to-right from `init` in the masked-bits domain.
///
/// Chunked reductions merge these partials with `add_bits`, which is
/// associative and commutative with identity 0 for *both* low-part
/// policies (the high parts add modulo 2^(width−k); the OR'd low parts
/// are an associative lattice join), so any chunking reproduces the
/// serial fold bit for bit. The wide (width > 54) path round-trips the
/// accumulator through `f64` after every step, which is *not*
/// associative — wide reductions therefore never take this path and
/// stay serial.
fn dot_span_bits(
    cv: RawConverter,
    mode: AddMode,
    mul: MulMode,
    xs: &[f64],
    ys: &[f64],
    init: u64,
) -> u64 {
    let mut ra = [0i64; BLOCK];
    let mut rb = [0i64; BLOCK];
    let mut acc = init;
    for (xc, yc) in xs.chunks(BLOCK).zip(ys.chunks(BLOCK)) {
        let n = xc.len();
        cv.to_raw_slice(xc, &mut ra[..n]);
        cv.to_raw_slice(yc, &mut rb[..n]);
        for (&a, &b) in ra[..n].iter().zip(&rb[..n]) {
            let p = mul.mul_raw(a, b);
            acc = mode.add_bits(acc, p as u64 & mode.mask);
        }
    }
    acc
}

/// Partial sum reduction over one span in the masked-bits domain; same
/// associativity contract as [`dot_span_bits`].
fn sum_span_bits(cv: RawConverter, mode: AddMode, xs: &[f64], init: u64) -> u64 {
    let mut rx = [0i64; BLOCK];
    let mut acc = init;
    for xc in xs.chunks(BLOCK) {
        let n = xc.len();
        cv.to_raw_slice(xc, &mut rx[..n]);
        for &r in &rx[..n] {
            acc = mode.add_bits(acc, r as u64 & mode.mask);
        }
    }
    acc
}

/// Dense rows `out[r] = Σⱼ rows[r·cols + j] · rx[j]` over one row span
/// (`rows` holds exactly `out.len()` rows). Row-partitioned parallelism
/// is safe at *any* width: each row's left-to-right reduction runs
/// intact inside one task.
fn matvec_rows(
    cv: RawConverter,
    mode: AddMode,
    mul: MulMode,
    rows: &[f64],
    cols: usize,
    rx: &[i64],
    out: &mut [f64],
) {
    let mut rr = [0i64; BLOCK];
    if mode.exact_roundtrip {
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
            let mut acc = 0u64;
            for (rc, xc) in row.chunks(BLOCK).zip(rx.chunks(BLOCK)) {
                let n = rc.len();
                cv.to_raw_slice(rc, &mut rr[..n]);
                for (&a, &bx) in rr[..n].iter().zip(xc) {
                    let p = mul.mul_raw(a, bx);
                    acc = mode.add_bits(acc, p as u64 & mode.mask);
                }
            }
            *o = cv.from_raw(mode.sext(acc));
        }
    } else {
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
            let mut acc: i64 = 0;
            for (rc, xc) in row.chunks(BLOCK).zip(rx.chunks(BLOCK)) {
                let n = rc.len();
                cv.to_raw_slice(rc, &mut rr[..n]);
                for (&a, &bx) in rr[..n].iter().zip(xc) {
                    let p = cv.to_raw(cv.from_raw(mul.mul_raw(a, bx)));
                    let bits = mode.add_bits(acc as u64 & mode.mask, p as u64 & mode.mask);
                    acc = cv.to_raw(cv.from_raw(mode.sext(bits)));
                }
            }
            *o = cv.from_raw(acc);
        }
    }
}

/// CSR rows `row_offset .. row_offset + out.len()` of the sparse
/// product (same row-partitioned contract as [`matvec_rows`]).
#[allow(clippy::too_many_arguments)]
fn spmv_rows(
    cv: RawConverter,
    mode: AddMode,
    mul: MulMode,
    values: &[f64],
    col_idx: &[usize],
    row_ptr: &[usize],
    rx: &[i64],
    row_offset: usize,
    out: &mut [f64],
) {
    let mut rv = [0i64; BLOCK];
    for (i, o) in out.iter_mut().enumerate() {
        let r = row_offset + i;
        let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
        if mode.exact_roundtrip {
            let mut acc = 0u64;
            for (vc, jc) in values[lo..hi]
                .chunks(BLOCK)
                .zip(col_idx[lo..hi].chunks(BLOCK))
            {
                let n = vc.len();
                cv.to_raw_slice(vc, &mut rv[..n]);
                for (&a, &j) in rv[..n].iter().zip(jc) {
                    let p = mul.mul_raw(a, rx[j]);
                    acc = mode.add_bits(acc, p as u64 & mode.mask);
                }
            }
            *o = cv.from_raw(mode.sext(acc));
        } else {
            let mut acc: i64 = 0;
            for (vc, jc) in values[lo..hi]
                .chunks(BLOCK)
                .zip(col_idx[lo..hi].chunks(BLOCK))
            {
                let n = vc.len();
                cv.to_raw_slice(vc, &mut rv[..n]);
                for (&a, &j) in rv[..n].iter().zip(jc) {
                    let p = cv.to_raw(cv.from_raw(mul.mul_raw(a, rx[j])));
                    let bits = mode.add_bits(acc as u64 & mode.mask, p as u64 & mode.mask);
                    acc = cv.to_raw(cv.from_raw(mode.sext(bits)));
                }
            }
            *o = cv.from_raw(acc);
        }
    }
}

/// Context for the quality-configurable datapath: fixed-point arithmetic
/// with the [`QcsAdder`] at a selectable accuracy level, plus energy and
/// operation accounting.
///
/// *Every* mode — including `Accurate` — runs on the same fixed-point
/// datapath: operands are quantized to the context's [`QFormat`] and the
/// add is performed by the QCS adder at the selected level. The accurate
/// mode differs only in that the full carry chain is enabled, exactly
/// like the hardware. A consequence worth internalizing: iterative
/// methods on this datapath converge by *freezing* — once an update
/// falls below the fixed-point resolution the state reproduces itself
/// bit-exactly — which is why the paper can use convergence tolerances
/// (e.g. 10⁻¹³) far below the datapath resolution.
///
/// The slice kernels are overridden with raw-word loops that convert
/// once per slice, hoist the level dispatch, and charge the meters in
/// one integer bump — bit-identical to the scalar path but several times
/// faster (see `bench --bin solverperf`). When an operand trace is being
/// recorded the kernels fall back to the per-op path so the trace stays
/// exactly what the scalar semantics would record.
///
/// # Example
///
/// ```
/// use approx_arith::{AccuracyLevel, ArithContext, QcsContext};
///
/// let mut ctx = QcsContext::with_paper_defaults();
/// let exact = ctx.add(0.125, 0.25);
/// assert_eq!(exact, 0.375); // representable in Q15.16: exact
///
/// ctx.set_level(AccuracyLevel::Level1);
/// let approx = ctx.add(0.125, 0.25);
/// // Level 1 mangles the low 20 bits — the result is off but bounded.
/// assert!((approx - 0.375).abs() < 32.0);
/// assert!(ctx.approx_energy() > 0.0);
///
/// // Slice kernels: one call, n ops' worth of results and accounting.
/// let mut out = [0.0; 3];
/// ctx.add_slice(&[1.0, 2.0, 3.0], &[0.5, 0.5, 0.5], &mut out);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QcsContext {
    qcs: QcsAdder,
    format: QFormat,
    profile: EnergyProfile,
    level: AccuracyLevel,
    mode: AddMode,
    mul_mode: MulMode,
    /// Deterministic executor for big-`n` kernels; `None` keeps every
    /// kernel serial (the default).
    par: Option<parx::Executor>,
    /// Adds tallied per accuracy level (indexed by
    /// [`AccuracyLevel::index`]); energy is derived lazily from these.
    add_counts: [u64; 5],
    muls: u64,
    divs: u64,
    trace: Option<Trace>,
}

#[derive(Debug, Clone, PartialEq)]
struct Trace {
    capacity: usize,
    pairs: Vec<(u64, u64)>,
}

impl QcsContext {
    /// Create a context over an explicit adder, format, and energy
    /// profile. The initial level is `Accurate`.
    ///
    /// # Panics
    /// Panics if the adder and format widths differ.
    #[must_use]
    pub fn new(qcs: QcsAdder, format: QFormat, profile: EnergyProfile) -> Self {
        assert_eq!(
            qcs.width(),
            format.width(),
            "adder width and fixed-point width must match"
        );
        let level = AccuracyLevel::Accurate;
        Self {
            qcs,
            format,
            profile,
            level,
            mode: AddMode::for_level(&qcs, format, level),
            mul_mode: MulMode::for_format(format),
            par: None,
            add_counts: [0; 5],
            muls: 0,
            divs: 0,
            trace: None,
        }
    }

    /// The configuration used throughout the reproduction:
    /// [`QcsAdder::paper_default`], [`QFormat::Q15_16`], and a freshly
    /// characterized [`EnergyProfile`].
    #[must_use]
    pub fn with_paper_defaults() -> Self {
        Self::new(
            QcsAdder::paper_default(),
            QFormat::Q15_16,
            EnergyProfile::paper_default(),
        )
    }

    /// Like [`QcsContext::with_paper_defaults`] but reusing an
    /// already-characterized profile (characterization simulates gate
    /// netlists; share it across contexts).
    #[must_use]
    pub fn with_profile(profile: EnergyProfile) -> Self {
        Self::new(QcsAdder::paper_default(), QFormat::Q15_16, profile)
    }

    /// The fixed-point format of the datapath.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The underlying QCS adder.
    #[must_use]
    pub fn adder(&self) -> &QcsAdder {
        &self.qcs
    }

    /// The energy profile in use.
    #[must_use]
    pub fn profile(&self) -> &EnergyProfile {
        &self.profile
    }

    /// Attach a deterministic executor: big-`n` kernels split their
    /// work across its workers. Element-wise ops and the row-partitioned
    /// matvec/spmv parallelize at any width; the dot/sum reductions
    /// chunk only on exactly-round-tripping widths (≤ 54 bits), where
    /// the QCS add's associativity makes chunked partials reproduce the
    /// serial fold bit for bit. Values, [`OpCounts`], and energy are
    /// bit-identical for every thread count — `with_threads(1)` is the
    /// reference the parallel-identity tests compare against.
    #[must_use]
    pub fn with_executor(mut self, exec: parx::Executor) -> Self {
        self.par = Some(exec);
        self
    }

    /// Replace (or remove, with `None`) the attached executor.
    pub fn set_executor(&mut self, exec: Option<parx::Executor>) {
        self.par = exec;
    }

    /// The attached executor, if any.
    #[must_use]
    pub fn executor(&self) -> Option<parx::Executor> {
        self.par
    }

    /// The executor to use for a kernel performing `fabric_ops`
    /// operations, when parallel execution would actually pay.
    #[inline]
    fn par_exec(&self, fabric_ops: usize) -> Option<parx::Executor> {
        self.par
            .filter(|e| e.threads() > 1 && fabric_ops >= PAR_MIN_OPS)
    }

    /// Start recording the operand bit patterns of approximate adds into
    /// a bounded trace (for trace-driven characterization). Recording
    /// stops silently once `capacity` pairs are stored.
    pub fn record_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace {
            capacity,
            pairs: Vec::with_capacity(capacity.min(4096)),
        });
    }

    /// The recorded operand trace, if recording was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&[(u64, u64)]> {
        self.trace.as_ref().map(|t| t.pairs.as_slice())
    }
}

impl ArithContext for QcsContext {
    #[inline]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.add_counts[self.level.index()] += 1;
        let ba = self.format.to_bits(self.format.to_raw(a));
        let bb = self.format.to_bits(self.format.to_raw(b));
        if let Some(trace) = &mut self.trace {
            if trace.pairs.len() < trace.capacity {
                trace.pairs.push((ba, bb));
            }
        }
        let bits = self.mode.add_bits(ba, bb);
        self.format.from_raw(self.format.from_bits(bits))
    }

    #[inline]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.muls += 1;
        let ra = self.format.to_raw(a);
        let rb = self.format.to_raw(b);
        self.format.from_raw(self.format.mul_raw(ra, rb))
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.divs += 1;
        // The sequential shift-subtract divider is built from the same
        // QCS adder, so its quotient inherits the level's approximation:
        // with the truncation policy the low `approx_bits` quotient bits
        // are never produced and the result lands on the level's coarse
        // grid.
        let qa = self.format.quantize(a);
        let qb = self.format.quantize(b);
        let raw = self.format.to_raw(qa / qb);
        let snapped = if self.mode.k > 0 && !self.mode.or_low {
            let bits = self.format.to_bits(raw);
            self.format.from_bits(bits & !width_mask(self.mode.k))
        } else {
            raw
        };
        self.format.from_raw(snapped)
    }

    fn level(&self) -> AccuracyLevel {
        self.level
    }

    fn set_level(&mut self, level: AccuracyLevel) {
        self.level = level;
        self.mode = AddMode::for_level(&self.qcs, self.format, level);
    }

    fn counts(&self) -> OpCounts {
        OpCounts {
            adds: self.add_counts.iter().sum(),
            muls: self.muls,
            divs: self.divs,
        }
    }

    fn approx_energy(&self) -> f64 {
        let mut energy = 0.0;
        for level in AccuracyLevel::ALL {
            energy += self.add_counts[level.index()] as f64 * self.profile.add_energy(level);
        }
        energy
    }

    fn total_energy(&self) -> f64 {
        self.approx_energy()
            + self.muls as f64 * self.profile.mul_energy()
            + self.divs as f64 * self.profile.div_energy()
    }

    fn reset_counters(&mut self) {
        self.add_counts = [0; 5];
        self.muls = 0;
        self.divs = 0;
        if let Some(trace) = &mut self.trace {
            trace.pairs.clear();
        }
    }

    fn datapath_format(&self) -> Option<QFormat> {
        Some(self.format)
    }

    fn range_config(&self) -> Option<RangeConfig> {
        Some(RangeConfig::for_qcs(&self.qcs, self.level, self.format))
    }

    fn add_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        if self.trace.is_some() {
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                *o = self.add(x, y);
            }
            return;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let cv = self.format.converter();
        let mode = self.mode;
        if let Some(exec) = self.par_exec(xs.len()) {
            exec.for_each_chunk(out, PAR_CHUNK, |ci, oc| {
                let s = ci * PAR_CHUNK;
                add_span(cv, mode, &xs[s..s + oc.len()], &ys[s..s + oc.len()], oc);
            });
        } else {
            add_span(cv, mode, xs, ys, out);
        }
    }

    fn sub_slice(&mut self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        if self.trace.is_some() {
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                *o = self.sub(x, y);
            }
            return;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let cv = self.format.converter();
        let mode = self.mode;
        if let Some(exec) = self.par_exec(xs.len()) {
            exec.for_each_chunk(out, PAR_CHUNK, |ci, oc| {
                let s = ci * PAR_CHUNK;
                sub_span(cv, mode, &xs[s..s + oc.len()], &ys[s..s + oc.len()], oc);
            });
        } else {
            sub_span(cv, mode, xs, ys, out);
        }
    }

    fn scale_slice(&mut self, alpha: f64, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        self.muls += xs.len() as u64;
        let cv = self.format.converter();
        let mul = self.mul_mode;
        let ra = cv.to_raw(alpha);
        if let Some(exec) = self.par_exec(xs.len()) {
            exec.for_each_chunk(out, PAR_CHUNK, |ci, oc| {
                let s = ci * PAR_CHUNK;
                scale_span(cv, mul, ra, &xs[s..s + oc.len()], oc);
            });
        } else {
            scale_span(cv, mul, ra, xs, out);
        }
    }

    fn axpy_slice(&mut self, alpha: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        assert_eq!(xs.len(), out.len(), "slice lengths must match");
        if self.trace.is_some() {
            for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                let p = self.mul(alpha, x);
                *o = self.add(p, y);
            }
            return;
        }
        self.muls += xs.len() as u64;
        self.add_counts[self.level.index()] += xs.len() as u64;
        let cv = self.format.converter();
        let mode = self.mode;
        let mul = self.mul_mode;
        let ra = cv.to_raw(alpha);
        if let Some(exec) = self.par_exec(xs.len()) {
            exec.for_each_chunk(out, PAR_CHUNK, |ci, oc| {
                let s = ci * PAR_CHUNK;
                axpy_span(
                    cv,
                    mode,
                    mul,
                    ra,
                    &xs[s..s + oc.len()],
                    &ys[s..s + oc.len()],
                    oc,
                );
            });
        } else {
            axpy_span(cv, mode, mul, ra, xs, ys, out);
        }
    }

    fn add_assign_slice(&mut self, ys: &mut [f64], xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        if self.trace.is_some() {
            for (y, &x) in ys.iter_mut().zip(xs) {
                *y = self.add(*y, x);
            }
            return;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let cv = self.format.converter();
        let mode = self.mode;
        if let Some(exec) = self.par_exec(xs.len()) {
            exec.for_each_chunk(ys, PAR_CHUNK, |ci, yc| {
                let s = ci * PAR_CHUNK;
                add_assign_span(cv, mode, yc, &xs[s..s + yc.len()]);
            });
        } else {
            add_assign_span(cv, mode, ys, xs);
        }
    }

    fn axpy_assign_slice(&mut self, ys: &mut [f64], alpha: f64, xs: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "slice lengths must match");
        if self.trace.is_some() {
            for (y, &x) in ys.iter_mut().zip(xs) {
                let p = self.mul(alpha, x);
                *y = self.add(*y, p);
            }
            return;
        }
        self.muls += xs.len() as u64;
        self.add_counts[self.level.index()] += xs.len() as u64;
        let cv = self.format.converter();
        let mode = self.mode;
        let mul = self.mul_mode;
        let ra = cv.to_raw(alpha);
        if let Some(exec) = self.par_exec(xs.len()) {
            exec.for_each_chunk(ys, PAR_CHUNK, |ci, yc| {
                let s = ci * PAR_CHUNK;
                axpy_assign_span(cv, mode, mul, ra, yc, &xs[s..s + yc.len()]);
            });
        } else {
            axpy_assign_span(cv, mode, mul, ra, ys, xs);
        }
    }

    fn dot_slice(&mut self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "dot operands must have equal length");
        if self.trace.is_some() {
            let mut acc = 0.0;
            for (&x, &y) in xs.iter().zip(ys) {
                let p = self.mul(x, y);
                acc = self.add(acc, p);
            }
            return acc;
        }
        self.muls += xs.len() as u64;
        self.add_counts[self.level.index()] += xs.len() as u64;
        let cv = self.format.converter();
        let mode = self.mode;
        let mul = self.mul_mode;
        if mode.exact_roundtrip {
            // The bits→raw→f64→raw→bits round-trip between fused ops is
            // the identity here, so the accumulator never has to leave
            // the masked-bits domain — and the bits-domain add is
            // associative (see `dot_span_bits`), so the reduction may be
            // chunked across workers and merged in chunk order.
            let acc_bits = if let Some(exec) = self.par_exec(xs.len()) {
                let partials = exec.map_chunks(xs.len() as u64, PAR_CHUNK as u64, |s, e| {
                    let (s, e) = (s as usize, e as usize);
                    dot_span_bits(cv, mode, mul, &xs[s..e], &ys[s..e], 0)
                });
                partials
                    .into_iter()
                    .fold(0u64, |acc, p| mode.add_bits(acc, p))
            } else {
                dot_span_bits(cv, mode, mul, xs, ys, 0)
            };
            cv.from_raw(mode.sext(acc_bits))
        } else {
            // Wide path: the per-step f64 round-trip is not associative,
            // so the fold stays serial (block-batched conversions only).
            let mut ra = [0i64; BLOCK];
            let mut rb = [0i64; BLOCK];
            let mut acc: i64 = 0;
            for (xc, yc) in xs.chunks(BLOCK).zip(ys.chunks(BLOCK)) {
                let n = xc.len();
                cv.to_raw_slice(xc, &mut ra[..n]);
                cv.to_raw_slice(yc, &mut rb[..n]);
                for (&a, &b) in ra[..n].iter().zip(&rb[..n]) {
                    let p = cv.to_raw(cv.from_raw(mul.mul_raw(a, b)));
                    let bits = mode.add_bits(acc as u64 & mode.mask, p as u64 & mode.mask);
                    acc = cv.to_raw(cv.from_raw(mode.sext(bits)));
                }
            }
            cv.from_raw(acc)
        }
    }

    fn matvec_slice(&mut self, rows: &[f64], cols: usize, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), cols, "vector length must equal column count");
        assert_eq!(rows.len(), cols * out.len(), "matrix shape mismatch");
        if cols == 0 {
            out.fill(0.0);
            return;
        }
        if self.trace.is_some() {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(cols)) {
                *o = self.dot_slice(row, x);
            }
            return;
        }
        let n = rows.len() as u64;
        self.muls += n;
        self.add_counts[self.level.index()] += n;
        let cv = self.format.converter();
        let mode = self.mode;
        let mul = self.mul_mode;
        // The shared vector is converted exactly once; every row's
        // reduction then reuses the raw words.
        let mut rx = vec![0i64; x.len()];
        cv.to_raw_slice(x, &mut rx);
        if let Some(exec) = self.par_exec(rows.len()) {
            // Row-partitioned: each chunk of output rows is one task, so
            // every row's reduction runs intact inside a single worker —
            // safe at any width. Rows per chunk depend only on the shape.
            let rpc = (PAR_CHUNK / cols).max(1);
            exec.for_each_chunk(out, rpc, |ci, oc| {
                let r0 = ci * rpc;
                let span = &rows[r0 * cols..(r0 + oc.len()) * cols];
                matvec_rows(cv, mode, mul, span, cols, &rx, oc);
            });
        } else {
            matvec_rows(cv, mode, mul, rows, cols, &rx, out);
        }
    }

    fn spmv_slice(
        &mut self,
        values: &[f64],
        col_idx: &[usize],
        row_ptr: &[usize],
        x: &[f64],
        out: &mut [f64],
    ) {
        check_csr_shape(values, col_idx, row_ptr, out.len());
        if self.trace.is_some() {
            for (r, o) in out.iter_mut().enumerate() {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                let mut acc = 0.0;
                for (&a, &j) in values[lo..hi].iter().zip(&col_idx[lo..hi]) {
                    let p = self.mul(a, x[j]);
                    acc = self.add(acc, p);
                }
                *o = acc;
            }
            return;
        }
        let nnz = values.len() as u64;
        self.muls += nnz;
        self.add_counts[self.level.index()] += nnz;
        let cv = self.format.converter();
        let mode = self.mode;
        let mul = self.mul_mode;
        // The shared vector is converted exactly once; every stored
        // entry's product then reuses the raw words. (Gathering x[j] is
        // exact index arithmetic — only the product and the reduction
        // touch the fabric.)
        let mut rx = vec![0i64; x.len()];
        cv.to_raw_slice(x, &mut rx);
        if let Some(exec) = self.par_exec(values.len()) {
            // Row-partitioned like matvec: rows per chunk derive from
            // the mean stored entries per row — a function of the matrix
            // only, so the chunking (and hence every row's task) is the
            // same for every thread count.
            let mean_nnz = (values.len() / out.len().max(1)).max(1);
            let rpc = (PAR_CHUNK / mean_nnz).max(1);
            exec.for_each_chunk(out, rpc, |ci, oc| {
                spmv_rows(cv, mode, mul, values, col_idx, row_ptr, &rx, ci * rpc, oc);
            });
        } else {
            spmv_rows(cv, mode, mul, values, col_idx, row_ptr, &rx, 0, out);
        }
    }

    fn sum_slice(&mut self, xs: &[f64]) -> f64 {
        if self.trace.is_some() {
            let mut acc = 0.0;
            for &x in xs {
                acc = self.add(acc, x);
            }
            return acc;
        }
        self.add_counts[self.level.index()] += xs.len() as u64;
        let cv = self.format.converter();
        let mode = self.mode;
        if mode.exact_roundtrip {
            // Same chunked-reduction contract as `dot_slice`.
            let acc_bits = if let Some(exec) = self.par_exec(xs.len()) {
                let partials = exec.map_chunks(xs.len() as u64, PAR_CHUNK as u64, |s, e| {
                    sum_span_bits(cv, mode, &xs[s as usize..e as usize], 0)
                });
                partials
                    .into_iter()
                    .fold(0u64, |acc, p| mode.add_bits(acc, p))
            } else {
                sum_span_bits(cv, mode, xs, 0)
            };
            cv.from_raw(mode.sext(acc_bits))
        } else {
            let mut rx = [0i64; BLOCK];
            let mut acc: i64 = 0;
            for xc in xs.chunks(BLOCK) {
                let n = xc.len();
                cv.to_raw_slice(xc, &mut rx[..n]);
                for &r in &rx[..n] {
                    let bits = mode.add_bits(acc as u64 & mode.mask, r as u64 & mode.mask);
                    acc = cv.to_raw(cv.from_raw(mode.sext(bits)));
                }
            }
            cv.from_raw(acc)
        }
    }
}

/// A wrapper that forces every slice kernel of `C` through the per-op
/// scalar defaults, while delegating the scalar ops and meters.
///
/// This is the reference the batched kernels are pinned against: for any
/// inner context, `ScalarPath<C>` computes the exact values, counts, and
/// energy the pre-kernel per-op code path produced. The `solverperf`
/// benchmark times it as the scalar baseline, and the kernel property
/// tests compare overrides to it bit for bit.
///
/// # Example
///
/// ```
/// use approx_arith::{ArithContext, QcsContext, ScalarPath};
///
/// let mut fast = QcsContext::with_paper_defaults();
/// let mut slow = ScalarPath::new(fast.clone());
/// let x = [1.5, 2.5, 3.5];
/// let y = [0.25, 0.5, 0.75];
/// assert_eq!(fast.dot_slice(&x, &y), slow.dot_slice(&x, &y));
/// assert_eq!(fast.counts(), slow.counts());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarPath<C> {
    inner: C,
}

impl<C: ArithContext> ScalarPath<C> {
    /// Wrap a context so slice kernels take the scalar-loop defaults.
    #[must_use]
    pub fn new(inner: C) -> Self {
        Self { inner }
    }

    /// The wrapped context.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap the context.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: ArithContext> ArithContext for ScalarPath<C> {
    #[inline]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.inner.add(a, b)
    }

    #[inline]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.inner.mul(a, b)
    }

    #[inline]
    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.inner.div(a, b)
    }

    #[inline]
    fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.inner.sub(a, b)
    }

    fn level(&self) -> AccuracyLevel {
        self.inner.level()
    }

    fn set_level(&mut self, level: AccuracyLevel) {
        self.inner.set_level(level);
    }

    fn counts(&self) -> OpCounts {
        self.inner.counts()
    }

    fn approx_energy(&self) -> f64 {
        self.inner.approx_energy()
    }

    fn total_energy(&self) -> f64 {
        self.inner.total_energy()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }

    fn datapath_format(&self) -> Option<QFormat> {
        self.inner.datapath_format()
    }

    fn range_config(&self) -> Option<RangeConfig> {
        self.inner.range_config()
    }

    // Slice kernels intentionally NOT overridden: they run the trait
    // defaults, which loop over the delegated scalar ops.
}

/// An idealized infinite-precision (`f64`) context with accurate-mode
/// energy accounting.
///
/// This is a *software* baseline for tests and reference solutions
/// (e.g. normal equations) — it is **not** the paper's `Truth` hardware,
/// which is the fixed-point [`QcsContext`] in `Accurate` mode. It
/// refuses level changes, so baseline runs cannot accidentally be
/// degraded.
///
/// It keeps the default (scalar-loop) slice kernels: `f64` adds are a
/// single instruction, so there is nothing for a batched override to
/// save, and one code path means one set of semantics to trust.
///
/// # Example
///
/// ```
/// use approx_arith::{ArithContext, ExactContext};
///
/// let mut ctx = ExactContext::new();
/// assert_eq!(ctx.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// assert_eq!(ctx.counts().muls, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExactContext {
    profile: EnergyProfile,
    counts: OpCounts,
    approx_energy: f64,
    other_energy: f64,
}

impl ExactContext {
    /// Create an exact context with a freshly characterized paper-default
    /// energy profile.
    #[must_use]
    pub fn new() -> Self {
        Self::with_profile(EnergyProfile::paper_default())
    }

    /// Create an exact context reusing an existing profile.
    #[must_use]
    pub fn with_profile(profile: EnergyProfile) -> Self {
        Self {
            profile,
            counts: OpCounts::default(),
            approx_energy: 0.0,
            other_energy: 0.0,
        }
    }
}

impl Default for ExactContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithContext for ExactContext {
    #[inline]
    fn add(&mut self, a: f64, b: f64) -> f64 {
        self.counts.adds += 1;
        self.approx_energy += self.profile.add_energy(AccuracyLevel::Accurate);
        a + b
    }

    #[inline]
    fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.counts.muls += 1;
        self.other_energy += self.profile.mul_energy();
        a * b
    }

    #[inline]
    fn div(&mut self, a: f64, b: f64) -> f64 {
        self.counts.divs += 1;
        self.other_energy += self.profile.div_energy();
        a / b
    }

    fn level(&self) -> AccuracyLevel {
        AccuracyLevel::Accurate
    }

    /// # Panics
    /// Panics if `level` is not `Accurate` — exact baselines must not be
    /// silently degraded.
    fn set_level(&mut self, level: AccuracyLevel) {
        assert!(
            level.is_accurate(),
            "ExactContext cannot run at approximate level {level}"
        );
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn approx_energy(&self) -> f64 {
        self.approx_energy
    }

    fn total_energy(&self) -> f64 {
        self.approx_energy + self.other_energy
    }

    fn reset_counters(&mut self) {
        self.counts = OpCounts::default();
        self.approx_energy = 0.0;
        self.other_energy = 0.0;
    }
}

/// Explicitly endorse a fabric-derived value for exact-only consumption
/// (the EnerJ-style `endorse` cast).
///
/// ApproxIt's control plane — quality metrics, convergence predicates,
/// controller decisions — must depend only on exact values; the static
/// taint audit (`auditor::taint`) enforces that boundary. Where the
/// *design* deliberately reads approximate state (the runner measuring
/// an iterate to decide its fate, a solver detecting a degenerate
/// search direction), the read is wrapped in `endorse` to make the
/// crossing explicit, reviewable, and greppable. The function itself is
/// the identity: endorsement is a statement of intent, not a
/// computation.
#[inline]
#[must_use]
pub fn endorse<T>(value: T) -> T {
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_profile() -> EnergyProfile {
        EnergyProfile::from_constants([1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 100.0)
    }

    fn test_ctx() -> QcsContext {
        QcsContext::new(QcsAdder::paper_default(), QFormat::Q15_16, test_profile())
    }

    #[test]
    fn accurate_mode_is_exact_on_representable_values() {
        let mut ctx = test_ctx();
        assert_eq!(ctx.add(0.125, 0.25), 0.375);
        assert_eq!(ctx.mul(1.5, -2.5), -3.75);
        assert_eq!(ctx.div(3.0, 2.0), 1.5);
    }

    #[test]
    fn accurate_mode_quantizes_to_the_datapath() {
        // The accurate mode is still fixed-point hardware: results are
        // quantized to Q31.16, so 0.1 + 0.2 is *close to* but not equal
        // to the f64 sum.
        let mut ctx = test_ctx();
        let got = ctx.add(0.1, 0.2);
        assert!((got - 0.3).abs() <= QFormat::Q15_16.resolution());
        assert_eq!(got, QFormat::Q15_16.quantize(got)); // representable
    }

    #[test]
    fn sub_is_add_of_negation() {
        let mut ctx = test_ctx();
        ctx.set_level(AccuracyLevel::Level3);
        let s = ctx.sub(1.5, 0.75);
        ctx.set_level(AccuracyLevel::Level3);
        let a = ctx.add(1.5, -0.75);
        assert_eq!(s, a);
    }

    #[test]
    fn energy_accrues_per_level() {
        let mut ctx = test_ctx();
        ctx.add(1.0, 1.0); // accurate: 5.0
        ctx.set_level(AccuracyLevel::Level1);
        ctx.add(1.0, 1.0); // level1: 1.0
        assert_eq!(ctx.approx_energy(), 6.0);
        assert_eq!(ctx.counts().adds, 2);
        ctx.mul(2.0, 2.0);
        assert_eq!(ctx.total_energy(), 56.0);
        assert_eq!(ctx.approx_energy(), 6.0); // muls don't touch the approx meter
    }

    #[test]
    fn reset_preserves_level() {
        let mut ctx = test_ctx();
        ctx.set_level(AccuracyLevel::Level2);
        ctx.add(1.0, 2.0);
        ctx.reset_counters();
        assert_eq!(ctx.counts(), OpCounts::default());
        assert_eq!(ctx.approx_energy(), 0.0);
        assert_eq!(ctx.level(), AccuracyLevel::Level2);
    }

    #[test]
    fn hoisted_add_mode_matches_adder_dispatch() {
        // The per-op fast path (AddMode) must agree with QcsAdder::add's
        // per-call dispatch for every level and policy.
        for policy in [LowPartPolicy::Zero, LowPartPolicy::Or] {
            let qcs = QcsAdder::with_policy(32, [20, 15, 10, 5], policy);
            let mut rng = crate::rng::Pcg32::seeded(41, 7);
            for level in AccuracyLevel::ALL {
                let mode = AddMode::for_level(&qcs, QFormat::Q15_16, level);
                for _ in 0..200 {
                    let a = rng.next_u64() & mode.mask;
                    let b = rng.next_u64() & mode.mask;
                    assert_eq!(
                        mode.add_bits(a, b),
                        qcs.add(a, b, level),
                        "policy {policy:?} level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn mul_mode_matches_format_mul_raw() {
        // The narrow (i64-only) kernel multiply must agree with the
        // i128 datapath multiply everywhere, including the saturation
        // boundaries and the frac_bits = 0 rounding quirk.
        for fmt in [
            QFormat::Q15_16,
            QFormat::new(32, 0),
            QFormat::new(20, 7),
            QFormat::new(8, 3),
            QFormat::Q31_16,
            QFormat::Q31_32,
        ] {
            let mul = MulMode::for_format(fmt);
            let cv = fmt.converter();
            let max = cv.to_raw(f64::INFINITY);
            let min = cv.to_raw(f64::NEG_INFINITY);
            for (a, b) in [(max, max), (max, min), (min, min), (0, max), (1, -1)] {
                assert_eq!(mul.mul_raw(a, b), fmt.mul_raw(a, b), "{fmt} ({a}, {b})");
            }
            let mut rng = crate::rng::Pcg32::seeded(97, fmt.width() as u64);
            for _ in 0..5_000 {
                let a = cv.to_raw(rng.uniform(fmt.min_value(), fmt.max_value()));
                let b = cv.to_raw(rng.uniform(fmt.min_value(), fmt.max_value()));
                assert_eq!(mul.mul_raw(a, b), fmt.mul_raw(a, b), "{fmt} ({a}, {b})");
            }
        }
    }

    #[test]
    fn swar_packed_add_matches_scalar_adds() {
        // The two-lane SWAR path must agree with the element-wise QCS
        // add for every level and policy, including the odd-length tail.
        for policy in [LowPartPolicy::Zero, LowPartPolicy::Or] {
            for fmt in [QFormat::Q15_16, QFormat::new(24, 8), QFormat::new(8, 3)] {
                let w = fmt.width();
                let qcs = QcsAdder::with_policy(
                    w,
                    [(w * 5 / 8).min(w), w / 2, w / 4, (w / 8).max(1)],
                    policy,
                );
                let mut rng = crate::rng::Pcg32::seeded(23, u64::from(w));
                for level in AccuracyLevel::ALL {
                    let mode = AddMode::for_level(&qcs, fmt, level);
                    for len in [1usize, 2, 7, 64] {
                        let xs: Vec<i64> = (0..len)
                            .map(|_| mode.sext(rng.next_u64() & mode.mask))
                            .collect();
                        let ys: Vec<i64> = (0..len)
                            .map(|_| mode.sext(rng.next_u64() & mode.mask))
                            .collect();
                        let mut got = xs.clone();
                        mode.add_raw_slices(&mut got, &ys);
                        for i in 0..len {
                            let want = mode.add_raws(xs[i], ys[i]);
                            assert_eq!(got[i], want, "{fmt} {policy:?} {level} len={len} i={i}");
                            // And both agree with the adder's own dispatch.
                            let ref_bits =
                                qcs.add(xs[i] as u64 & mode.mask, ys[i] as u64 & mode.mask, level);
                            assert_eq!(got[i], mode.sext(ref_bits));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn executor_attached_kernels_stay_bit_identical() {
        // In-module smoke pin; the cross-format sweep lives in
        // tests/parallel_identity.rs. n is above PAR_MIN_OPS so the
        // parallel path actually engages.
        let n = PAR_MIN_OPS + 513;
        let mut rng = crate::rng::Pcg32::seeded(5, 1);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let mut serial = test_ctx();
        let mut par = test_ctx().with_executor(parx::Executor::with_threads(3));
        serial.set_level(AccuracyLevel::Level2);
        par.set_level(AccuracyLevel::Level2);
        let mut o1 = vec![0.0; n];
        let mut o2 = vec![0.0; n];
        serial.add_slice(&xs, &ys, &mut o1);
        par.add_slice(&xs, &ys, &mut o2);
        assert_eq!(o1, o2);
        serial.axpy_slice(1.5, &xs, &ys, &mut o1);
        par.axpy_slice(1.5, &xs, &ys, &mut o2);
        assert_eq!(o1, o2);
        assert_eq!(
            serial.dot_slice(&xs, &ys).to_bits(),
            par.dot_slice(&xs, &ys).to_bits()
        );
        assert_eq!(
            serial.sum_slice(&xs).to_bits(),
            par.sum_slice(&xs).to_bits()
        );
        assert_eq!(serial.counts(), par.counts());
        assert_eq!(
            serial.total_energy().to_bits(),
            par.total_energy().to_bits()
        );
    }

    #[test]
    fn approximate_error_is_bounded_by_level() {
        let mut ctx = test_ctx();
        let mut worst = [0f64; 4];
        let mut rng = crate::rng::Pcg32::seeded(17, 0);
        for _ in 0..500 {
            let a = rng.uniform(-100.0, 100.0);
            let b = rng.uniform(-100.0, 100.0);
            for level in AccuracyLevel::APPROXIMATE {
                ctx.set_level(level);
                let got = ctx.add(a, b);
                worst[level.index()] = worst[level.index()].max((got - (a + b)).abs());
            }
        }
        // Error bound per level: ~2^(k - frac) value units.
        for (i, k) in [20u32, 15, 10, 5].iter().enumerate() {
            let bound = (f64::from(*k) - 16.0 + 1.0).exp2() + 1e-9;
            assert!(
                worst[i] <= bound,
                "level{} worst error {} exceeds {}",
                i + 1,
                worst[i],
                bound
            );
        }
        // And level errors shrink as accuracy rises.
        assert!(worst[0] > worst[3]);
    }

    #[test]
    fn trace_records_bit_patterns() {
        let mut ctx = test_ctx();
        ctx.record_trace(2);
        ctx.set_level(AccuracyLevel::Level2);
        ctx.add(1.0, 2.0);
        ctx.add(3.0, 4.0);
        ctx.add(5.0, 6.0); // beyond capacity: dropped
        let trace = ctx.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace[0].0,
            QFormat::Q15_16.to_bits(QFormat::Q15_16.to_raw(1.0))
        );
    }

    #[test]
    fn kernels_fall_back_to_per_op_path_while_tracing() {
        let mut ctx = test_ctx();
        ctx.record_trace(16);
        ctx.set_level(AccuracyLevel::Level3);
        let mut out = [0.0; 3];
        ctx.add_slice(&[1.0, 2.0, 3.0], &[0.5, 0.5, 0.5], &mut out);
        let _ = ctx.dot_slice(&[1.0, 2.0], &[3.0, 4.0]);
        // 3 adds from add_slice + 2 from the dot reduction.
        assert_eq!(ctx.trace().unwrap().len(), 5);
        assert_eq!(ctx.counts().adds, 5);
        assert_eq!(ctx.counts().muls, 2);
    }

    #[test]
    fn batched_kernels_match_scalar_path_counts_and_energy() {
        // A compact in-module pin of the bit-identity contract; the
        // exhaustive sweep lives in tests/kernel_properties.rs.
        let mut fast = test_ctx();
        let mut slow = ScalarPath::new(test_ctx());
        let x = [1.5, -2.25, 100.125, 0.0078125, -64.5];
        let y = [0.5, 7.75, -3.125, 2.0, 0.25];
        for level in AccuracyLevel::ALL {
            fast.set_level(level);
            slow.set_level(level);
            let mut of = [0.0; 5];
            let mut os = [0.0; 5];
            fast.add_slice(&x, &y, &mut of);
            slow.add_slice(&x, &y, &mut os);
            assert_eq!(of, os, "add_slice at {level}");
            fast.axpy_slice(1.5, &x, &y, &mut of);
            slow.axpy_slice(1.5, &x, &y, &mut os);
            assert_eq!(of, os, "axpy_slice at {level}");
            let rows: Vec<f64> = x.iter().chain(&y).chain(&x).copied().collect();
            let mut mf = [0.0; 3];
            let mut ms = [0.0; 3];
            fast.matvec_slice(&rows, 5, &y, &mut mf);
            slow.matvec_slice(&rows, 5, &y, &mut ms);
            assert_eq!(mf, ms, "matvec_slice at {level}");
            assert_eq!(
                fast.dot_slice(&x, &y).to_bits(),
                slow.dot_slice(&x, &y).to_bits(),
                "dot_slice at {level}"
            );
        }
        assert_eq!(fast.counts(), slow.counts());
        assert_eq!(
            fast.approx_energy().to_bits(),
            slow.approx_energy().to_bits()
        );
        assert_eq!(fast.total_energy().to_bits(), slow.total_energy().to_bits());
    }

    #[test]
    fn empty_slices_are_no_ops() {
        let mut ctx = test_ctx();
        let mut out: [f64; 0] = [];
        ctx.add_slice(&[], &[], &mut out);
        ctx.axpy_slice(2.0, &[], &[], &mut out);
        assert_eq!(ctx.dot_slice(&[], &[]), 0.0);
        assert_eq!(ctx.sum_slice(&[]), 0.0);
        assert_eq!(ctx.counts(), OpCounts::default());
        assert_eq!(ctx.approx_energy(), 0.0);
    }

    #[test]
    fn exact_context_matches_f64_and_counts() {
        let mut ctx = ExactContext::with_profile(test_profile());
        let d = ctx.dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(d, 32.0);
        assert_eq!(ctx.counts().adds, 3);
        assert_eq!(ctx.counts().muls, 3);
        assert_eq!(ctx.approx_energy(), 15.0);
    }

    #[test]
    #[should_panic(expected = "cannot run at approximate level")]
    fn exact_context_rejects_degradation() {
        ExactContext::with_profile(test_profile()).set_level(AccuracyLevel::Level1);
    }

    #[test]
    fn sum_folds_left_to_right() {
        let mut ctx = ExactContext::with_profile(test_profile());
        assert_eq!(ctx.sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
        assert_eq!(ctx.counts().adds, 4);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_length_mismatch_panics() {
        let mut ctx = ExactContext::with_profile(test_profile());
        let _ = ctx.dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn kernel_length_mismatch_panics() {
        let mut ctx = test_ctx();
        let mut out = [0.0; 2];
        ctx.add_slice(&[1.0], &[1.0, 2.0], &mut out);
    }

    #[test]
    fn scalar_path_delegates_meters() {
        let mut wrapped = ScalarPath::new(test_ctx());
        wrapped.set_level(AccuracyLevel::Level2);
        assert_eq!(wrapped.level(), AccuracyLevel::Level2);
        let _ = wrapped.add(1.0, 2.0);
        assert_eq!(wrapped.counts().adds, 1);
        assert_eq!(wrapped.approx_energy(), 2.0);
        assert!(wrapped.datapath_format().is_some());
        assert!(wrapped.range_config().is_some());
        wrapped.reset_counters();
        assert_eq!(wrapped.inner().counts(), OpCounts::default());
        let inner = wrapped.into_inner();
        assert_eq!(inner.level(), AccuracyLevel::Level2);
    }

    #[test]
    fn contexts_are_object_safe() {
        let mut ctx = test_ctx();
        let dynamic: &mut dyn ArithContext = &mut ctx;
        assert_eq!(dynamic.add(1.0, 2.0), 3.0);
        let mut out = [0.0; 2];
        dynamic.add_slice(&[1.0, 2.0], &[3.0, 4.0], &mut out);
        assert_eq!(out, [4.0, 6.0]);
    }
}
