//! Accuracy-configurable / windowed-carry speculative adder (ACA style).

use gatesim::builders::{self, AdderPorts};
use gatesim::Netlist;

use crate::adder::{width_mask, Adder};

/// Windowed-carry speculative adder in the spirit of the
/// accuracy-configurable adder of Kahng & Kang (DAC'12): the carry into
/// bit `i` is computed from only the `lookahead` preceding bit positions
/// (with carry-in 0 at the window start), so the critical path — and the
/// accuracy — is set by the window length.
///
/// # Example
///
/// ```
/// use approx_arith::{Adder, WindowedCarryAdder};
///
/// let adder = WindowedCarryAdder::new(16, 16);
/// assert_eq!(adder.add(0xFFFF, 1), 0); // full window == exact (modular)
///
/// let short = WindowedCarryAdder::new(16, 2);
/// // A carry chain longer than the window is broken.
/// assert_ne!(short.add(0x00FF, 0x0001), 0x0100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedCarryAdder {
    width: u32,
    lookahead: u32,
}

impl WindowedCarryAdder {
    /// Create an adder whose carry window spans `lookahead` bits.
    ///
    /// A `lookahead` of `width` makes the adder exact.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=64` or `lookahead` is 0 or exceeds
    /// `width`.
    #[must_use]
    pub fn new(width: u32, lookahead: u32) -> Self {
        let _ = width_mask(width);
        assert!(
            (1..=width).contains(&lookahead),
            "lookahead must be in 1..=width"
        );
        Self { width, lookahead }
    }

    /// Carry window length in bits.
    #[must_use]
    pub fn lookahead(&self) -> u32 {
        self.lookahead
    }

    /// Carry into bit `i` computed over the window `[i-L, i)`.
    fn carry_into(&self, a: u64, b: u64, i: u32) -> u64 {
        if i == 0 {
            return 0;
        }
        let start = i.saturating_sub(self.lookahead);
        let len = i - start;
        let m = width_mask(len);
        let aw = (a >> start) & m;
        let bw = (b >> start) & m;
        u64::from(aw + bw > m)
    }
}

impl Adder for WindowedCarryAdder {
    fn name(&self) -> String {
        format!("aca{}/l{}", self.width, self.lookahead)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let mask = self.mask();
        let (a, b) = (a & mask, b & mask);
        let mut result = 0u64;
        for i in 0..self.width {
            let s = ((a >> i) ^ (b >> i) ^ self.carry_into(a, b, i)) & 1;
            result |= s << i;
        }
        result
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        let w = self.width as usize;
        let l = self.lookahead as usize;
        let mut nl = Netlist::new();
        let (a, b) = builders::declare_ab(&mut nl, w);
        let zero = nl.constant(false);
        for i in 0..w {
            let carry = if i == 0 {
                zero
            } else {
                let start = i.saturating_sub(l);
                let mut c = zero;
                for j in start..i {
                    c = nl.maj3(a[j], b[j], c);
                }
                c
            };
            let axb = nl.xor2(a[i], b[i]);
            let sum = nl.xor2(axb, carry);
            nl.mark_output(sum, format!("sum{i}"));
        }
        let ports = AdderPorts::new(a, b, None, false);
        (nl, ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_netlist_matches;
    use crate::RippleCarryAdder;

    #[test]
    fn full_lookahead_is_exact() {
        let aca = WindowedCarryAdder::new(16, 16);
        let rca = RippleCarryAdder::new(16);
        for (a, b) in [(0u64, 0), (0xFFFF, 0xFFFF), (0xABC, 0x123), (1, 0xFFFF)] {
            assert_eq!(aca.add(a, b), rca.add(a, b));
        }
    }

    #[test]
    fn accuracy_improves_with_lookahead() {
        // Count errors over a grid for two window lengths.
        let exact = RippleCarryAdder::new(12);
        let count_errors = |l: u32| {
            let aca = WindowedCarryAdder::new(12, l);
            let mut errs = 0u32;
            for a in (0..4096u64).step_by(17) {
                for b in (0..4096u64).step_by(23) {
                    if aca.add(a, b) != exact.add(a, b) {
                        errs += 1;
                    }
                }
            }
            errs
        };
        assert!(count_errors(2) > count_errors(6));
        assert_eq!(count_errors(12), 0);
    }

    #[test]
    fn netlist_agrees_with_functional_model() {
        assert_netlist_matches(&WindowedCarryAdder::new(16, 4), 300);
        assert_netlist_matches(&WindowedCarryAdder::new(16, 16), 100);
        assert_netlist_matches(&WindowedCarryAdder::new(48, 8), 50);
    }

    #[test]
    #[should_panic(expected = "lookahead must be in 1..=width")]
    fn zero_lookahead_panics() {
        let _ = WindowedCarryAdder::new(8, 0);
    }
}
