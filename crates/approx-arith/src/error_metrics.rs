//! Low-level error metrics for approximate adders (WCE, ER, ME, MED,
//! NMED, MRED).
//!
//! The paper points out that these circuit-level metrics cannot directly
//! predict application-level quality (Section 3.1) — which is exactly why
//! ApproxIt adds the iteration-level *quality error*. They are still the
//! standard vocabulary for characterizing the units themselves, and the
//! offline stage uses them as sanity checks on the hardware models.

use crate::adder::Adder;
use crate::rng::Pcg32;

/// Aggregate error statistics of an approximate adder against the exact
/// modular sum.
///
/// All errors are computed on the unsigned interpretation of the
/// `width`-bit outputs, the convention used in the approximate-arithmetic
/// literature (Liang, Han & Lombardi, IEEE TC 2013).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of operand pairs evaluated.
    pub samples: u64,
    /// Fraction of operand pairs with a wrong output (ER).
    pub error_rate: f64,
    /// Mean signed error (ME) — reveals systematic bias.
    pub mean_error: f64,
    /// Mean absolute error distance (MED).
    pub mean_error_distance: f64,
    /// MED normalized by the output range `2^width − 1` (NMED).
    pub normalized_med: f64,
    /// Mean relative error distance (MRED), with zero exact results
    /// contributing `|error|/1`.
    pub mean_relative_error: f64,
    /// Worst-case absolute error observed (WCE).
    pub worst_case_error: u64,
}

impl ErrorStats {
    /// `true` if not a single sampled pair erred.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.error_rate == 0.0
    }
}

fn accumulate(adder: &dyn Adder, pairs: impl Iterator<Item = (u64, u64)>) -> ErrorStats {
    let mask = adder.mask();
    let mut samples = 0u64;
    let mut errors = 0u64;
    let mut sum_signed = 0f64;
    let mut sum_abs = 0f64;
    let mut sum_rel = 0f64;
    let mut wce = 0u64;
    for (a, b) in pairs {
        let (a, b) = (a & mask, b & mask);
        let exact = a.wrapping_add(b) & mask;
        let approx = adder.add(a, b);
        let diff = approx as i128 - exact as i128;
        let abs = diff.unsigned_abs() as u64;
        samples += 1;
        if abs != 0 {
            errors += 1;
        }
        sum_signed += diff as f64;
        sum_abs += abs as f64;
        sum_rel += abs as f64 / (exact.max(1)) as f64;
        wce = wce.max(abs);
    }
    assert!(samples > 0, "at least one operand pair is required");
    let n = samples as f64;
    ErrorStats {
        samples,
        error_rate: errors as f64 / n,
        mean_error: sum_signed / n,
        mean_error_distance: sum_abs / n,
        normalized_med: (sum_abs / n) / mask as f64,
        mean_relative_error: sum_rel / n,
        worst_case_error: wce,
    }
}

/// Exhaustively characterize an adder over all `4^width` operand pairs.
///
/// # Panics
/// Panics if the adder is wider than 12 bits (16.7M pairs is the
/// practical ceiling for exhaustive sweeps).
#[must_use]
pub fn characterize_exhaustive(adder: &dyn Adder) -> ErrorStats {
    let w = adder.width();
    assert!(
        w <= 12,
        "exhaustive characterization is limited to width <= 12"
    );
    let n = 1u64 << w;
    accumulate(adder, (0..n).flat_map(move |a| (0..n).map(move |b| (a, b))))
}

/// Monte-Carlo characterization over `samples` uniformly random operand
/// pairs.
///
/// # Panics
/// Panics if `samples` is 0.
#[must_use]
pub fn characterize_monte_carlo(adder: &dyn Adder, samples: u64, rng: &mut Pcg32) -> ErrorStats {
    assert!(samples > 0, "samples must be positive");
    accumulate(
        adder,
        (0..samples).map(|_| (rng.next_u64(), rng.next_u64())),
    )
}

/// Characterize an adder on a recorded operand trace (e.g. captured from
/// an application run), which reflects the *actual* operand distribution
/// rather than uniform noise.
///
/// # Panics
/// Panics if the trace is empty.
#[must_use]
pub fn characterize_trace(adder: &dyn Adder, trace: &[(u64, u64)]) -> ErrorStats {
    assert!(!trace.is_empty(), "operand trace must be non-empty");
    accumulate(adder, trace.iter().copied())
}

/// Per-output-bit error rates: entry `i` is the fraction of random
/// operand pairs for which the adder's output bit `i` differs from the
/// exact sum's bit `i`.
///
/// This is the spatial view the aggregate metrics hide — it shows
/// exactly which bit positions an architecture sacrifices (the low `k`
/// bits for truncation/LOA families, the positions right after each
/// speculation window for ETAII/ACA/GeAr).
///
/// # Panics
/// Panics if `samples` is 0.
///
/// # Example
///
/// ```
/// use approx_arith::rng::Pcg32;
/// use approx_arith::{bit_error_rates, LowerZeroAdder};
///
/// let mut rng = Pcg32::seeded(1, 0);
/// let rates = bit_error_rates(&LowerZeroAdder::new(16, 4), 2000, &mut rng);
/// // The zeroed low bits err whenever the exact sum bit is 1 (~50%)...
/// assert!(rates[0] > 0.4);
/// // ...while the top bits are (almost) clean.
/// assert!(rates[15] < 0.05);
/// ```
#[must_use]
pub fn bit_error_rates(adder: &dyn Adder, samples: u64, rng: &mut Pcg32) -> Vec<f64> {
    assert!(samples > 0, "samples must be positive");
    let mask = adder.mask();
    let w = adder.width() as usize;
    let mut flips = vec![0u64; w];
    for _ in 0..samples {
        let a = rng.next_u64() & mask;
        let b = rng.next_u64() & mask;
        let exact = a.wrapping_add(b) & mask;
        let diff = adder.add(a, b) ^ exact;
        for (i, flip) in flips.iter_mut().enumerate() {
            *flip += (diff >> i) & 1;
        }
    }
    flips.iter().map(|&f| f as f64 / samples as f64).collect()
}

/// Histogram of signed error magnitudes in power-of-two buckets: the
/// returned map's key `k` counts errors `e` with `2^(k−1) < |e| ≤ 2^k`
/// (key 0 counts `|e| = 1`); exact results are not counted.
///
/// # Panics
/// Panics if `samples` is 0.
#[must_use]
pub fn error_histogram(
    adder: &dyn Adder,
    samples: u64,
    rng: &mut Pcg32,
) -> std::collections::BTreeMap<u32, u64> {
    assert!(samples > 0, "samples must be positive");
    let mask = adder.mask();
    let mut histogram = std::collections::BTreeMap::new();
    for _ in 0..samples {
        let a = rng.next_u64() & mask;
        let b = rng.next_u64() & mask;
        let exact = a.wrapping_add(b) & mask;
        let approx = adder.add(a, b);
        let magnitude = (approx as i128 - exact as i128).unsigned_abs();
        if magnitude > 0 {
            let bucket = 128 - magnitude.leading_zeros() - 1;
            *histogram.entry(bucket).or_insert(0) += 1;
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AccuracyLevel;
    use crate::{EtaIiAdder, LowerOrAdder, QcsAdder, RippleCarryAdder, WindowedCarryAdder};

    #[test]
    fn bit_error_rates_localize_the_damage() {
        let mut rng = Pcg32::seeded(3, 0);
        let rates = bit_error_rates(&LowerOrAdder::new(16, 6, false), 4000, &mut rng);
        // Low (OR'd) bits err often; top bits only through the one lost
        // carry.
        let low_mean: f64 = rates[..6].iter().sum::<f64>() / 6.0;
        let high_mean: f64 = rates[10..].iter().sum::<f64>() / 6.0;
        assert!(
            low_mean > 5.0 * high_mean,
            "low {low_mean} high {high_mean}"
        );
    }

    #[test]
    fn bit_error_rates_are_zero_for_exact_adders() {
        let mut rng = Pcg32::seeded(5, 0);
        let rates = bit_error_rates(&RippleCarryAdder::new(12), 1000, &mut rng);
        assert!(rates.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn error_histogram_buckets_by_magnitude() {
        let mut rng = Pcg32::seeded(7, 0);
        let hist = error_histogram(&crate::LowerZeroAdder::new(16, 4), 4000, &mut rng);
        let total: u64 = hist.values().sum();
        assert!(total > 0);
        // Truncating 4 bits keeps most errors below 2^5 (up to one lost
        // carry); wrap-around cases can land anywhere but must be rare.
        let small: u64 = hist.range(..6).map(|(_, c)| c).sum();
        assert!(
            small as f64 / total as f64 > 0.9,
            "histogram too heavy-tailed: {hist:?}"
        );
        let mut rng = Pcg32::seeded(7, 0);
        let exact_hist = error_histogram(&RippleCarryAdder::new(16), 1000, &mut rng);
        assert!(exact_hist.is_empty());
    }

    #[test]
    fn exact_adder_has_zero_error() {
        let stats = characterize_exhaustive(&RippleCarryAdder::new(6));
        assert!(stats.is_exact());
        assert_eq!(stats.worst_case_error, 0);
        assert_eq!(stats.mean_error, 0.0);
        assert_eq!(stats.samples, 4096);
    }

    #[test]
    fn loa_errs_but_not_everywhere() {
        let stats = characterize_exhaustive(&LowerOrAdder::new(8, 3, false));
        assert!(stats.error_rate > 0.0);
        assert!(stats.error_rate < 1.0);
        // Note: the *unsigned* worst-case error can span the whole output
        // range when a lost carry wraps the modular sum — that is the
        // standard convention and exactly why circuit-level metrics don't
        // predict application quality (paper §3.1).
        assert!(stats.mean_error_distance > 0.0);
    }

    #[test]
    fn metrics_order_adder_accuracy() {
        let mut rng = Pcg32::seeded(31, 0);
        let coarse = characterize_monte_carlo(&LowerOrAdder::new(32, 16, false), 5000, &mut rng);
        let mut rng = Pcg32::seeded(31, 0);
        let fine = characterize_monte_carlo(&LowerOrAdder::new(32, 4, false), 5000, &mut rng);
        assert!(coarse.mean_error_distance > fine.mean_error_distance);
        assert!(coarse.normalized_med > fine.normalized_med);
    }

    #[test]
    fn qcs_levels_are_ordered_by_every_metric() {
        let qcs = QcsAdder::paper_default();
        let mut stats = Vec::new();
        for level in AccuracyLevel::ALL {
            let mut rng = Pcg32::seeded(77, 0); // same operands per level
            stats.push(characterize_monte_carlo(&qcs.at(level), 3000, &mut rng));
        }
        for pair in stats.windows(2) {
            assert!(pair[0].mean_error_distance >= pair[1].mean_error_distance);
            assert!(pair[0].error_rate >= pair[1].error_rate);
        }
        assert!(stats.last().unwrap().is_exact());
    }

    #[test]
    fn eta_and_aca_err_less_than_full_or() {
        let mut rng = Pcg32::seeded(5, 1);
        let eta = characterize_monte_carlo(&EtaIiAdder::new(16, 4), 4000, &mut rng);
        let mut rng = Pcg32::seeded(5, 1);
        let aca = characterize_monte_carlo(&WindowedCarryAdder::new(16, 4), 4000, &mut rng);
        let mut rng = Pcg32::seeded(5, 1);
        let or_all = characterize_monte_carlo(&LowerOrAdder::new(16, 16, false), 4000, &mut rng);
        assert!(eta.mean_error_distance < or_all.mean_error_distance);
        assert!(aca.mean_error_distance < or_all.mean_error_distance);
    }

    #[test]
    fn trace_characterization_sees_data_distribution() {
        // A trace of tiny operands never exercises the broken high carries
        // of a speculative adder with a wide window.
        let adder = WindowedCarryAdder::new(32, 8);
        let trace: Vec<(u64, u64)> = (0..100).map(|i| (i, i + 1)).collect();
        let stats = characterize_trace(&adder, &trace);
        assert!(stats.is_exact());
    }

    #[test]
    #[should_panic(expected = "limited to width")]
    fn exhaustive_on_wide_adder_panics() {
        let _ = characterize_exhaustive(&RippleCarryAdder::new(32));
    }
}
