//! Two's-complement fixed-point formats (Q notation).

use crate::adder::width_mask;

/// A signed fixed-point format: `width` total bits (including sign) of
/// which `frac_bits` are fractional — i.e. Q(width−frac−1).(frac).
///
/// Raw values are kept sign-extended in an `i64`; [`QFormat::to_bits`] /
/// [`QFormat::from_bits`] convert to and from the `width`-bit two's
/// complement patterns the adder hardware consumes.
///
/// # Example
///
/// ```
/// use approx_arith::QFormat;
///
/// let q = QFormat::Q31_16;
/// let raw = q.to_raw(2.5);
/// assert_eq!(raw, 2 * 65536 + 32768);
/// assert_eq!(q.from_raw(raw), 2.5);
/// // Round-trip quantization error is bounded by half a ULP.
/// let x = 0.123_456_789;
/// assert!((q.quantize(x) - x).abs() <= q.resolution() / 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    width: u32,
    frac_bits: u32,
}

impl QFormat {
    /// The framework default: 48-bit datapath with a 16-bit fraction
    /// (range ±2³¹, resolution 2⁻¹⁶ ≈ 1.5·10⁻⁵).
    pub const Q31_16: QFormat = QFormat {
        width: 48,
        frac_bits: 16,
    };

    /// A narrow 32-bit format (Q15.16) for width-sweep ablations.
    pub const Q15_16: QFormat = QFormat {
        width: 32,
        frac_bits: 16,
    };

    /// A wide 64-bit format (Q31.32).
    pub const Q31_32: QFormat = QFormat {
        width: 64,
        frac_bits: 32,
    };

    /// Create a custom format.
    ///
    /// # Panics
    /// Panics if `width` is not in `2..=64` or `frac_bits >= width`.
    #[must_use]
    pub fn new(width: u32, frac_bits: u32) -> Self {
        assert!((2..=64).contains(&width), "width must be in 2..=64");
        assert!(
            frac_bits < width,
            "frac_bits ({frac_bits}) must be less than width ({width})"
        );
        Self { width, frac_bits }
    }

    /// Total bit width, including the sign bit.
    #[must_use]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Number of fractional bits.
    #[must_use]
    pub const fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The value of one least-significant bit.
    #[must_use]
    #[inline]
    pub fn resolution(&self) -> f64 {
        f64::from(-(self.frac_bits as i32)).exp2()
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.from_raw(self.max_raw())
    }

    /// Smallest (most negative) representable value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.from_raw(self.min_raw())
    }

    #[inline]
    fn max_raw(&self) -> i64 {
        ((1u64 << (self.width - 1)) - 1) as i64
    }

    #[inline]
    fn min_raw(&self) -> i64 {
        // −2^(width−1). Computed by shifting so the width-64 case lands
        // exactly on i64::MIN instead of negating it (which overflows).
        -1i64 << (self.width - 1)
    }

    /// Precompute the conversion constants (scale factors, saturation
    /// bounds) for this format. [`QFormat::to_raw`] and
    /// [`QFormat::from_raw`] delegate here per call; kernel inner loops
    /// hoist one [`RawConverter`] and amortize the `exp2` evaluations
    /// over the whole slice — the results are bit-identical either way.
    #[must_use]
    #[inline]
    pub fn converter(&self) -> RawConverter {
        RawConverter {
            scale: (self.frac_bits as f64).exp2(),
            inv_scale: self.resolution(),
            max_raw: self.max_raw(),
            min_raw: self.min_raw(),
        }
    }

    /// Convert to raw fixed point with rounding-to-nearest and saturation.
    ///
    /// Non-finite inputs saturate: `+∞` to the maximum, `−∞` to the
    /// minimum, and `NaN` to zero (the datapath has no trap mechanism —
    /// this mirrors how a saturating hardware converter behaves).
    #[must_use]
    #[inline]
    pub fn to_raw(&self, x: f64) -> i64 {
        self.converter().to_raw(x)
    }

    /// Convert a raw fixed-point value back to `f64`.
    #[must_use]
    #[inline]
    pub fn from_raw(&self, raw: i64) -> f64 {
        self.converter().from_raw(raw)
    }

    /// Round-trip a value through the format (quantize).
    #[must_use]
    #[inline]
    pub fn quantize(&self, x: f64) -> f64 {
        self.from_raw(self.to_raw(x))
    }

    /// The `width`-bit two's-complement pattern of a raw value, as the
    /// adder hardware sees it.
    #[must_use]
    #[inline]
    pub fn to_bits(&self, raw: i64) -> u64 {
        (raw as u64) & width_mask(self.width)
    }

    /// Sign-extend a `width`-bit pattern back to a raw `i64`.
    #[must_use]
    #[inline]
    pub fn from_bits(&self, bits: u64) -> i64 {
        let bits = bits & width_mask(self.width);
        let sign = 1u64 << (self.width - 1);
        if bits & sign != 0 {
            (bits | !width_mask(self.width)) as i64
        } else {
            bits as i64
        }
    }

    /// Exact fixed-point multiply with rounding and saturation:
    /// `(a·b) >> frac_bits`.
    ///
    /// Multipliers are *not* approximated in this reproduction (the paper
    /// approximates adders only — "Adder Impact" in its Table 2), so this
    /// is the reference datapath multiply.
    #[must_use]
    #[inline]
    pub fn mul_raw(&self, a: i64, b: i64) -> i64 {
        let wide = i128::from(a) * i128::from(b);
        // Round half away from zero at the bits we shift out. The shift
        // floors, so the negative branch negates first to keep the
        // rounding symmetric.
        let half = 1i128 << (self.frac_bits.max(1) - 1);
        let shifted = if wide >= 0 {
            (wide + half) >> self.frac_bits
        } else {
            -((-wide + half) >> self.frac_bits)
        };
        shifted.clamp(i128::from(self.min_raw()), i128::from(self.max_raw())) as i64
    }
}

/// Precomputed f64 ↔ raw conversion constants for one [`QFormat`].
///
/// Exists so slice kernels can hoist the scale factors (`2^frac` and
/// `2^-frac`) out of their inner loops instead of re-deriving them per
/// element; conversions through a converter are bit-identical to the
/// [`QFormat`] methods, which delegate here.
#[derive(Debug, Clone, Copy)]
pub struct RawConverter {
    scale: f64,
    inv_scale: f64,
    max_raw: i64,
    min_raw: i64,
}

impl RawConverter {
    /// [`QFormat::to_raw`] with the scale and bounds precomputed.
    #[must_use]
    #[inline]
    pub fn to_raw(&self, x: f64) -> i64 {
        if x.is_nan() {
            return 0;
        }
        let scaled = x * self.scale;
        if scaled >= self.max_raw as f64 {
            self.max_raw
        } else if scaled <= self.min_raw as f64 {
            self.min_raw
        } else {
            // Round half away from zero, like a hardware rounder.
            // Branch-free equivalent of `scaled.round() as i64` (which
            // would be a libm call on baseline x86-64): truncate, then
            // bump by one when the discarded fraction reaches ±0.5. The
            // fraction is exact — below 2⁵² the subtraction is lossless,
            // and at or above 2⁵² every f64 is already an integer.
            let t = scaled as i64;
            let frac = scaled - t as f64;
            t + i64::from(frac >= 0.5) - i64::from(frac <= -0.5)
        }
    }

    /// [`QFormat::from_raw`] with the resolution precomputed.
    #[must_use]
    #[inline]
    pub fn from_raw(&self, raw: i64) -> f64 {
        raw as f64 * self.inv_scale
    }

    /// Convert a whole slice to raw fixed point, bit-identical to
    /// calling [`RawConverter::to_raw`] per element.
    ///
    /// The loop body is select-based rather than early-returning so the
    /// compiler can vectorize it: truncate-and-round runs
    /// unconditionally (Rust float→int casts saturate, so out-of-range
    /// intermediates are defined) and the saturation cases overwrite the
    /// result. The NaN case needs no select of its own — `NaN as i64`
    /// is 0 and every comparison on NaN is false, so a NaN input falls
    /// through to 0 exactly like the scalar early return.
    ///
    /// # Panics
    /// Panics if `xs` and `out` have different lengths.
    pub fn to_raw_slice(&self, xs: &[f64], out: &mut [i64]) {
        assert_eq!(xs.len(), out.len(), "to_raw_slice length mismatch");
        let max_f = self.max_raw as f64;
        let min_f = self.min_raw as f64;
        for (o, &x) in out.iter_mut().zip(xs) {
            let scaled = x * self.scale;
            let t = scaled as i64;
            let frac = scaled - t as f64;
            // Wrapping: the bump can only wrap when the cast saturated,
            // and those lanes are overwritten by the selects below.
            let rounded = t
                .wrapping_add(i64::from(frac >= 0.5))
                .wrapping_sub(i64::from(frac <= -0.5));
            let r = if scaled >= max_f {
                self.max_raw
            } else {
                rounded
            };
            *o = if scaled <= min_f { self.min_raw } else { r };
        }
    }

    /// Convert a whole raw slice back to `f64`, bit-identical to calling
    /// [`RawConverter::from_raw`] per element.
    ///
    /// # Panics
    /// Panics if `raws` and `out` have different lengths.
    pub fn from_raw_slice(&self, raws: &[i64], out: &mut [f64]) {
        assert_eq!(raws.len(), out.len(), "from_raw_slice length mismatch");
        for (o, &raw) in out.iter_mut().zip(raws) {
            *o = raw as f64 * self.inv_scale;
        }
    }
}

impl std::fmt::Display for QFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}.{}", self.width - self.frac_bits - 1, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_formats_have_expected_geometry() {
        assert_eq!(QFormat::Q31_16.width(), 48);
        assert_eq!(QFormat::Q31_16.frac_bits(), 16);
        assert_eq!(QFormat::Q31_16.to_string(), "Q31.16");
        assert!((QFormat::Q31_16.resolution() - 1.0 / 65536.0).abs() < 1e-18);
    }

    #[test]
    fn round_trip_is_exact_for_representable_values() {
        let q = QFormat::Q31_16;
        for x in [-1000.5, -0.25, 0.0, 0.5, 3.140625, 32767.75] {
            assert_eq!(q.quantize(x), x);
        }
    }

    #[test]
    fn conversion_saturates() {
        let q = QFormat::Q15_16;
        assert_eq!(q.to_raw(1e30), q.to_raw(q.max_value()));
        assert_eq!(q.to_raw(f64::INFINITY), q.to_raw(q.max_value()));
        assert_eq!(q.from_raw(q.to_raw(f64::NEG_INFINITY)), q.min_value());
        assert_eq!(q.to_raw(f64::NAN), 0);
    }

    #[test]
    fn bits_round_trip_for_negative_values() {
        let q = QFormat::Q31_16;
        for x in [-1.0, -12345.678, -0.0001, 5.0, 30000.25] {
            let raw = q.to_raw(x);
            assert_eq!(q.from_bits(q.to_bits(raw)), raw);
        }
    }

    #[test]
    fn twos_complement_addition_matches_value_addition() {
        let q = QFormat::Q31_16;
        let adder = crate::RippleCarryAdder::new(q.width());
        use crate::Adder;
        for (x, y) in [(1.5, 2.25), (-3.5, 1.25), (-100.0, -200.0), (0.0, -0.5)] {
            let bits = adder.add(q.to_bits(q.to_raw(x)), q.to_bits(q.to_raw(y)));
            assert_eq!(q.from_raw(q.from_bits(bits)), x + y);
        }
    }

    #[test]
    fn mul_raw_rounds_and_saturates() {
        let q = QFormat::Q15_16;
        let a = q.to_raw(1.5);
        let b = q.to_raw(2.0);
        assert_eq!(q.from_raw(q.mul_raw(a, b)), 3.0);
        // Saturation on overflow.
        let big = q.to_raw(30000.0);
        assert_eq!(q.mul_raw(big, big), q.to_raw(q.max_value()));
        let neg = q.to_raw(-30000.0);
        assert_eq!(q.mul_raw(big, neg), q.to_raw(q.min_value()));
    }

    #[test]
    fn converter_rounding_matches_f64_round() {
        // The branch-free rounder must agree with `f64::round` (round
        // half away from zero) everywhere, including exact halves and
        // the nearest-below-half boundary value.
        let q = QFormat::Q31_16;
        let cv = q.converter();
        let res = q.resolution();
        for x in [
            0.5 * res,
            -0.5 * res,
            1.5 * res,
            -1.5 * res,
            0.499_999_999_999_999_94 * res,
            2.5,
            -2.5,
        ] {
            assert_eq!(cv.to_raw(x), (x / res).round() as i64, "x = {x:e}");
        }
        let mut rng = crate::rng::Pcg32::seeded(11, 5);
        for _ in 0..20_000 {
            let x = rng.uniform(-3e4, 3e4);
            assert_eq!(cv.to_raw(x), (x * 65536.0).round() as i64, "x = {x}");
        }
    }

    #[test]
    fn slice_conversions_are_bit_identical_to_scalar() {
        for q in [QFormat::Q15_16, QFormat::Q31_16, QFormat::Q31_32] {
            let cv = q.converter();
            let mut xs = vec![
                0.0,
                -0.0,
                0.5 * q.resolution(),
                -0.5 * q.resolution(),
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                1e300,
                -1e300,
                q.max_value(),
                q.min_value(),
                q.max_value() + 1.0,
                q.min_value() - 1.0,
            ];
            let mut rng = crate::rng::Pcg32::seeded(3, 9);
            for _ in 0..10_000 {
                xs.push(rng.uniform(-4e4, 4e4));
            }
            let mut raws = vec![0i64; xs.len()];
            cv.to_raw_slice(&xs, &mut raws);
            for (&x, &r) in xs.iter().zip(&raws) {
                assert_eq!(r, cv.to_raw(x), "to_raw_slice vs to_raw at x={x:e} ({q})");
            }
            let mut back = vec![0.0; raws.len()];
            cv.from_raw_slice(&raws, &mut back);
            for (&r, &b) in raws.iter().zip(&back) {
                assert_eq!(b.to_bits(), cv.from_raw(r).to_bits(), "raw={r} ({q})");
            }
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_ulp() {
        let q = QFormat::Q31_16;
        let mut rng = crate::rng::Pcg32::seeded(7, 3);
        for _ in 0..10_000 {
            let x = rng.uniform(-1e4, 1e4);
            assert!((q.quantize(x) - x).abs() <= q.resolution() / 2.0 + 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn frac_equal_width_panics() {
        let _ = QFormat::new(16, 16);
    }
}
