//! Lower-part OR adder (LOA).

use gatesim::builders::{self, AdderPorts};
use gatesim::Netlist;

use crate::adder::{width_mask, Adder};

/// Lower-part OR adder: the low `approx_bits` result bits are computed as
/// the bitwise OR of the operands (no carries), the upper part is an exact
/// ripple-carry adder.
///
/// With `speculate` enabled, the carry into the exact part is speculated
/// as `a[k-1] & b[k-1]` (the classic LOA of Mahdiani et al.); otherwise
/// the exact part receives no carry-in.
///
/// # Example
///
/// ```
/// use approx_arith::{Adder, LowerOrAdder};
///
/// let adder = LowerOrAdder::new(16, 4, false);
/// // Low nibble is OR'd: 0b1001 | 0b0011 = 0b1011, no carry into bit 4.
/// assert_eq!(adder.add(0b1001, 0b0011), 0b1011);
/// // The exact upper part still adds correctly.
/// assert_eq!(adder.add(0x10, 0x20), 0x30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOrAdder {
    width: u32,
    approx_bits: u32,
    speculate: bool,
}

impl LowerOrAdder {
    /// Create a LOA with `approx_bits` OR-approximated low bits.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=64` or `approx_bits > width`.
    #[must_use]
    pub fn new(width: u32, approx_bits: u32, speculate: bool) -> Self {
        let _ = width_mask(width);
        assert!(
            approx_bits <= width,
            "approx_bits ({approx_bits}) must not exceed width ({width})"
        );
        Self {
            width,
            approx_bits,
            speculate,
        }
    }

    /// Number of OR-approximated low bits.
    #[must_use]
    pub fn approx_bits(&self) -> u32 {
        self.approx_bits
    }

    /// Whether carry speculation into the exact part is enabled.
    #[must_use]
    pub fn speculates(&self) -> bool {
        self.speculate
    }
}

impl Adder for LowerOrAdder {
    fn name(&self) -> String {
        let spec = if self.speculate { "s" } else { "" };
        format!("loa{}/k{}{}", self.width, self.approx_bits, spec)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let mask = self.mask();
        let (a, b) = (a & mask, b & mask);
        let k = self.approx_bits;
        if k == 0 {
            return a.wrapping_add(b) & mask;
        }
        if k == self.width {
            return (a | b) & mask;
        }
        let low_mask = width_mask(k);
        let low = (a | b) & low_mask;
        let cin = if self.speculate {
            (a >> (k - 1)) & (b >> (k - 1)) & 1
        } else {
            0
        };
        let high = (a >> k).wrapping_add(b >> k).wrapping_add(cin);
        ((high << k) | low) & mask
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        let w = self.width as usize;
        let k = self.approx_bits as usize;
        let mut nl = Netlist::new();
        let (a, b) = builders::declare_ab(&mut nl, w);
        let mut sums = Vec::with_capacity(w);
        // Approximate low part: one OR gate per bit.
        for i in 0..k {
            sums.push(nl.or2(a[i], b[i]));
        }
        // Carry into the exact part.
        let mut carry = if self.speculate && k > 0 {
            nl.and2(a[k - 1], b[k - 1])
        } else {
            nl.constant(false)
        };
        for i in k..w {
            let (s, c) = builders::full_adder(&mut nl, a[i], b[i], carry);
            sums.push(s);
            carry = c;
        }
        for (i, s) in sums.iter().enumerate() {
            nl.mark_output(*s, format!("sum{i}"));
        }
        let ports = AdderPorts::new(a, b, None, false);
        (nl, ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_netlist_matches;
    use crate::RippleCarryAdder;

    #[test]
    fn zero_approx_bits_is_exact() {
        let loa = LowerOrAdder::new(32, 0, false);
        let rca = RippleCarryAdder::new(32);
        for (a, b) in [(0u64, 0u64), (7, 9), (0xFFFF_FFFF, 1), (123_456, 654_321)] {
            assert_eq!(loa.add(a, b), rca.add(a, b));
        }
    }

    #[test]
    fn full_width_approx_is_bitwise_or() {
        let loa = LowerOrAdder::new(8, 8, false);
        assert_eq!(loa.add(0b1010_1010, 0b0101_0101), 0b1111_1111);
        assert_eq!(loa.add(3, 3), 3);
    }

    #[test]
    fn error_is_bounded_by_low_part() {
        let loa = LowerOrAdder::new(16, 6, false);
        let exact = RippleCarryAdder::new(16);
        let bound = 1i64 << 7; // error < 2^(k+1)
        for a in (0..=0xFFFFu64).step_by(37) {
            for b in (0..=0xFFFFu64).step_by(53) {
                let approx = loa.add(a, b) as i64;
                let truth = exact.add(a, b) as i64;
                // Compare on the shared modulus ring.
                let diff = (approx - truth).rem_euclid(1 << 16);
                let diff = diff.min((1 << 16) - diff);
                assert!(diff < bound, "a={a} b={b} diff={diff}");
            }
        }
    }

    #[test]
    fn speculation_recovers_some_carries() {
        // a = b = 0b1000 in the low nibble: both MSBs of the low part are
        // set, so the carry into the exact part is recovered.
        let plain = LowerOrAdder::new(8, 4, false);
        let spec = LowerOrAdder::new(8, 4, true);
        let (a, b) = (0b1000u64, 0b1000u64);
        assert_eq!(plain.add(a, b), 0b0000_1000);
        assert_eq!(spec.add(a, b), 0b0001_1000); // carry propagated
    }

    #[test]
    fn netlist_agrees_with_functional_model() {
        assert_netlist_matches(&LowerOrAdder::new(16, 6, false), 300);
        assert_netlist_matches(&LowerOrAdder::new(16, 6, true), 300);
        assert_netlist_matches(&LowerOrAdder::new(48, 20, false), 100);
        assert_netlist_matches(&LowerOrAdder::new(48, 0, true), 50);
        assert_netlist_matches(&LowerOrAdder::new(12, 12, false), 100);
    }

    #[test]
    #[should_panic(expected = "must not exceed width")]
    fn approx_bits_beyond_width_panics() {
        let _ = LowerOrAdder::new(8, 9, false);
    }
}
