//! Static fixed-point range analysis by abstract interpretation.
//!
//! The analyzer proves — at analysis time, before any simulation — that a
//! datapath expressed over a [`QFormat`] cannot overflow or hit the
//! saturating converter for declared input ranges. Two abstract domains
//! run in lockstep and their results are intersected per expression:
//!
//! * **interval arithmetic** — cheap, sound, but blind to correlation
//!   (`x − x` gets the width of `2x`);
//! * **affine arithmetic** — tracks first-order correlations through
//!   shared noise symbols, so linear cancellation is exact
//!   (`x − x = 0`), at the price of a conservative quadratic remainder
//!   on multiplication.
//!
//! Approximation error enters as a per-operation slack taken from the
//! configured adder family: a [`RangeConfig`] built by
//! [`RangeConfig::for_qcs`] widens every add by the worst-case error of
//! the selected accuracy level (plus half-ulp rounding), so the proof
//! covers the *approximate* datapath, not an idealized exact one.
//!
//! # Example
//!
//! ```
//! use approx_arith::range::{RangeConfig, RangeGraph};
//! use approx_arith::QFormat;
//!
//! let mut g = RangeGraph::new();
//! let x = g.input("x", -100.0, 100.0);
//! let y = g.input("y", -100.0, 100.0);
//! let p = g.mul(x, y);
//! let s = g.named(p, "x*y");
//! let _acc = g.sum_of(s, 3);
//! let report = g.analyze(&RangeConfig::exact(QFormat::Q15_16));
//! assert!(report.proven(), "{}", report.verdict);
//! ```

use crate::adder::AccuracyLevel;
use crate::fixed::QFormat;
use crate::recon::QcsAdder;

/// A closed real interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

// Not the std operator traits on purpose: interval `div` is partial
// (returns `Option` on zero-straddling divisors) and the others read
// best alongside it as plain methods.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// Create an interval.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is NaN.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    #[must_use]
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// The whole real line (used when a division cannot be bounded).
    #[must_use]
    pub fn everything() -> Self {
        Self::new(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Interval sum.
    #[must_use]
    pub fn add(self, rhs: Self) -> Self {
        Self::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }

    /// Interval difference.
    #[must_use]
    pub fn sub(self, rhs: Self) -> Self {
        Self::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }

    /// Interval negation.
    #[must_use]
    pub fn neg(self) -> Self {
        Self::new(-self.hi, -self.lo)
    }

    /// Interval product (min/max over the four endpoint products).
    #[must_use]
    pub fn mul(self, rhs: Self) -> Self {
        let products = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = products.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = products.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::new(lo, hi)
    }

    /// Interval quotient; `None` when the divisor straddles zero.
    #[must_use]
    pub fn div(self, rhs: Self) -> Option<Self> {
        if rhs.lo <= 0.0 && rhs.hi >= 0.0 {
            return None;
        }
        Some(self.mul(Self::new(1.0 / rhs.hi, 1.0 / rhs.lo)))
    }

    /// Widen symmetrically by `slack ≥ 0`.
    #[must_use]
    pub fn widen(self, slack: f64) -> Self {
        Self::new(self.lo - slack, self.hi + slack)
    }

    /// Convex hull of two intervals.
    #[must_use]
    pub fn union(self, rhs: Self) -> Self {
        Self::new(self.lo.min(rhs.lo), self.hi.max(rhs.hi))
    }

    /// Intersection, when non-empty; otherwise the tighter of the two
    /// (the analyzer only intersects sound over-approximations of the
    /// same value, so an empty intersection cannot arise — this keeps
    /// the operation total under floating-point rounding).
    #[must_use]
    pub fn intersect(self, rhs: Self) -> Self {
        let lo = self.lo.max(rhs.lo);
        let hi = self.hi.min(rhs.hi);
        if lo <= hi {
            Self::new(lo, hi)
        } else if self.hi - self.lo <= rhs.hi - rhs.lo {
            self
        } else {
            rhs
        }
    }

    /// `true` if `self` lies entirely within `outer`.
    #[must_use]
    pub fn within(self, outer: Self) -> bool {
        self.lo >= outer.lo && self.hi <= outer.hi
    }

    /// Midpoint.
    #[must_use]
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Half-width (radius).
    #[must_use]
    pub fn radius(self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Largest absolute value in the interval.
    #[must_use]
    pub fn abs_bound(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// `true` if `x` lies in the interval.
    #[must_use]
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.6}, {:.6}]", self.lo, self.hi)
    }
}

/// First-order affine form `center + Σ coeffᵢ·εᵢ + extra·ε*` with all
/// `ε ∈ [−1, 1]` and `ε*` fresh.
#[derive(Debug, Clone, PartialEq)]
struct AffineForm {
    center: f64,
    /// Sorted by symbol id; symbols are shared across forms so linear
    /// correlation cancels exactly.
    terms: Vec<(u32, f64)>,
    /// Radius of uncorrelated noise (rounding, approximation slack,
    /// multiplication remainder).
    extra: f64,
}

impl AffineForm {
    fn constant(x: f64) -> Self {
        Self {
            center: x,
            terms: Vec::new(),
            extra: 0.0,
        }
    }

    fn from_interval_with_symbol(iv: Interval, symbol: u32) -> Self {
        Self {
            center: iv.mid(),
            terms: vec![(symbol, iv.radius())],
            extra: 0.0,
        }
    }

    fn from_interval(iv: Interval) -> Self {
        Self {
            center: iv.mid(),
            terms: Vec::new(),
            extra: iv.radius(),
        }
    }

    /// Total noise radius (linear terms plus extra).
    fn radius(&self) -> f64 {
        self.terms.iter().map(|(_, c)| c.abs()).sum::<f64>() + self.extra
    }

    fn to_interval(&self) -> Interval {
        let r = self.radius();
        if r.is_finite() && self.center.is_finite() {
            Interval::new(self.center - r, self.center + r)
        } else {
            Interval::everything()
        }
    }

    fn merge_terms(a: &[(u32, f64)], b: &[(u32, f64)], b_sign: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&(sa, ca)), Some(&(sb, cb))) if sa == sb => {
                    let c = ca + b_sign * cb;
                    if c != 0.0 {
                        out.push((sa, c));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&(sa, ca)), Some(&(sb, _))) if sa < sb => {
                    out.push((sa, ca));
                    i += 1;
                }
                (Some(_), Some(&(sb, cb))) => {
                    out.push((sb, b_sign * cb));
                    j += 1;
                }
                (Some(&(sa, ca)), None) => {
                    out.push((sa, ca));
                    i += 1;
                }
                (None, Some(&(sb, cb))) => {
                    out.push((sb, b_sign * cb));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        out
    }

    fn add(&self, rhs: &Self, slack: f64) -> Self {
        Self {
            center: self.center + rhs.center,
            terms: Self::merge_terms(&self.terms, &rhs.terms, 1.0),
            extra: self.extra + rhs.extra + slack,
        }
    }

    fn sub(&self, rhs: &Self, slack: f64) -> Self {
        Self {
            center: self.center - rhs.center,
            terms: Self::merge_terms(&self.terms, &rhs.terms, -1.0),
            extra: self.extra + rhs.extra + slack,
        }
    }

    fn neg(&self) -> Self {
        Self {
            center: -self.center,
            terms: self.terms.iter().map(|&(s, c)| (s, -c)).collect(),
            extra: self.extra,
        }
    }

    /// Affine product with the standard conservative remainder
    /// `rad(f)·rad(g)` folded into the uncorrelated noise.
    fn mul(&self, rhs: &Self, slack: f64) -> Self {
        let a = self.center;
        let b = rhs.center;
        let mut terms = Self::merge_terms(
            &self
                .terms
                .iter()
                .map(|&(s, c)| (s, c * b))
                .collect::<Vec<_>>(),
            &rhs.terms
                .iter()
                .map(|&(s, c)| (s, c * a))
                .collect::<Vec<_>>(),
            1.0,
        );
        terms.retain(|(_, c)| *c != 0.0);
        Self {
            center: a * b,
            terms,
            extra: a.abs() * rhs.extra
                + b.abs() * self.extra
                + self.radius() * rhs.radius()
                + slack,
        }
    }

    /// `count` independent copies summed: centers scale, radii scale (no
    /// cancellation between copies is assumed).
    fn sum_copies(&self, count: usize, slack_per_add: f64) -> Self {
        let k = count as f64;
        Self {
            center: self.center * k,
            terms: Vec::new(),
            extra: self.radius() * k + slack_per_add * k,
        }
    }
}

/// Per-operation error model for the analysis.
///
/// `add_slack` is the worst-case absolute error of one datapath add (in
/// value units); `mul_slack` the same for one multiply. Both include the
/// half-ulp rounding of the fixed-point converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeConfig {
    /// The datapath format whose representable range must not be left.
    pub format: QFormat,
    /// Worst-case per-add error in value units.
    pub add_slack: f64,
    /// Worst-case per-multiply error in value units.
    pub mul_slack: f64,
}

impl RangeConfig {
    /// A configuration for an exact datapath: only half-ulp rounding per
    /// operation.
    #[must_use]
    pub fn exact(format: QFormat) -> Self {
        let half_ulp = 0.5 * format.resolution();
        Self {
            format,
            add_slack: half_ulp,
            mul_slack: half_ulp,
        }
    }

    /// A configuration for the QCS adder at the given accuracy level: the
    /// family's worst-case error bound (`< 2^(k+1)` raw units for both
    /// low-part policies, where `k` is the level's approximate bit count)
    /// plus half-ulp rounding, in value units.
    #[must_use]
    pub fn for_qcs(qcs: &QcsAdder, level: AccuracyLevel, format: QFormat) -> Self {
        let k = qcs.approx_bits(level);
        let raw_bound = if k == 0 { 0.0 } else { 2f64.powi(k as i32 + 1) };
        let half_ulp = 0.5 * format.resolution();
        Self {
            format,
            add_slack: raw_bound * format.resolution() + half_ulp,
            mul_slack: half_ulp,
        }
    }

    /// The representable interval of the configured format.
    #[must_use]
    pub fn representable(&self) -> Interval {
        Interval::new(self.format.min_value(), self.format.max_value())
    }
}

/// Handle to an expression inside a [`RangeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// Raw index of the expression in the graph.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a handle from a raw index — only for crate-internal
    /// passes that walk a graph they did not build (see
    /// [`crate::errorprop`]).
    pub(crate) fn from_index(idx: usize) -> Self {
        Self(u32::try_from(idx).expect("graph larger than u32 nodes"))
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RangeNode {
    Input(Interval),
    Const(f64),
    Add(ExprId, ExprId),
    Sub(ExprId, ExprId),
    Neg(ExprId),
    Mul(ExprId, ExprId),
    Div(ExprId, ExprId),
    /// `count` independent draws of `item`, summed left to right. The
    /// bound covers every partial sum, not only the final value.
    SumOf(ExprId, usize),
}

/// An append-only expression DAG over declared input ranges.
///
/// Build the datapath once per workload, then [`RangeGraph::analyze`]
/// under any [`RangeConfig`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangeGraph {
    nodes: Vec<(RangeNode, Option<String>)>,
}

impl RangeGraph {
    /// Create an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: RangeNode, name: Option<String>) -> ExprId {
        let id = ExprId(u32::try_from(self.nodes.len()).expect("graph larger than u32 nodes"));
        self.nodes.push((node, name));
        id
    }

    fn check(&self, id: ExprId) {
        assert!(
            id.index() < self.nodes.len(),
            "expression {id:?} does not belong to this graph"
        );
    }

    /// The structural node behind an expression — used by the
    /// error-propagation pass in [`crate::errorprop`], which walks the
    /// same DAG with a different abstract domain.
    pub(crate) fn node(&self, id: ExprId) -> &RangeNode {
        &self.nodes[id.index()].0
    }

    /// Declare an input with the given range.
    pub fn input(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> ExprId {
        self.push(RangeNode::Input(Interval::new(lo, hi)), Some(name.into()))
    }

    /// A constant.
    pub fn constant(&mut self, x: f64) -> ExprId {
        self.push(RangeNode::Const(x), None)
    }

    /// Datapath addition (widened by the config's `add_slack`).
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.check(a);
        self.check(b);
        self.push(RangeNode::Add(a, b), None)
    }

    /// Datapath subtraction (exact negation plus one add).
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.check(a);
        self.check(b);
        self.push(RangeNode::Sub(a, b), None)
    }

    /// Exact negation.
    pub fn neg(&mut self, a: ExprId) -> ExprId {
        self.check(a);
        self.push(RangeNode::Neg(a), None)
    }

    /// Datapath multiplication.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.check(a);
        self.check(b);
        self.push(RangeNode::Mul(a, b), None)
    }

    /// Datapath division. If the divisor's range straddles zero the
    /// analysis reports [`RangeVerdict::Unbounded`].
    pub fn div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.check(a);
        self.check(b);
        self.push(RangeNode::Div(a, b), None)
    }

    /// A left-to-right sum of `count` independent draws of `item`. The
    /// resulting bound covers all partial sums, so an accumulator proved
    /// in range here cannot overflow mid-loop either.
    ///
    /// # Panics
    /// Panics if `count` is 0.
    pub fn sum_of(&mut self, item: ExprId, count: usize) -> ExprId {
        self.check(item);
        assert!(count > 0, "sums must have at least one term");
        self.push(RangeNode::SumOf(item, count), None)
    }

    /// A dot product of `count` element pairs: sugar for
    /// `sum_of(mul(x, y), count)`.
    ///
    /// # Panics
    /// Panics if `count` is 0.
    pub fn dot(&mut self, x: ExprId, y: ExprId, count: usize) -> ExprId {
        let p = self.mul(x, y);
        self.sum_of(p, count)
    }

    /// Attach a display name to an expression (returned unchanged), so
    /// verdicts point at something readable.
    pub fn named(&mut self, id: ExprId, name: impl Into<String>) -> ExprId {
        self.check(id);
        self.nodes[id.index()].1 = Some(name.into());
        id
    }

    /// Number of expressions in the graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no expressions were declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Human-readable name of an expression.
    #[must_use]
    pub fn name_of(&self, id: ExprId) -> String {
        match &self.nodes[id.index()].1 {
            Some(name) => name.clone(),
            None => format!("expr#{}", id.index()),
        }
    }

    /// Run the analysis: forward abstract interpretation in both
    /// domains, intersected per node, then a containment check of every
    /// expression against the format's representable interval.
    #[must_use]
    pub fn analyze(&self, config: &RangeConfig) -> RangeReport {
        let mut intervals: Vec<Interval> = Vec::with_capacity(self.nodes.len());
        let mut pure_intervals: Vec<Interval> = Vec::with_capacity(self.nodes.len());
        let mut affines: Vec<AffineForm> = Vec::with_capacity(self.nodes.len());
        let mut next_symbol = 0u32;
        let mut unbounded: Option<ExprId> = None;
        for (idx, (node, _)) in self.nodes.iter().enumerate() {
            let id = ExprId(idx as u32);
            // Pure interval domain, propagated without affine refinement
            // — kept for diagnostics and the soundness property tests.
            let pure = match node {
                RangeNode::Input(range) => *range,
                RangeNode::Const(x) => Interval::point(*x),
                RangeNode::Add(a, b) => pure_intervals[a.index()]
                    .add(pure_intervals[b.index()])
                    .widen(config.add_slack),
                RangeNode::Sub(a, b) => pure_intervals[a.index()]
                    .sub(pure_intervals[b.index()])
                    .widen(config.add_slack),
                RangeNode::Neg(a) => pure_intervals[a.index()].neg(),
                RangeNode::Mul(a, b) => pure_intervals[a.index()]
                    .mul(pure_intervals[b.index()])
                    .widen(config.mul_slack),
                RangeNode::Div(a, b) => pure_intervals[a.index()]
                    .div(pure_intervals[b.index()])
                    .map_or(Interval::everything(), |iv| iv.widen(config.mul_slack)),
                RangeNode::SumOf(item, count) => {
                    let per_item = pure_intervals[item.index()].union(Interval::point(0.0));
                    let k = *count as f64;
                    Interval::new(per_item.lo * k, per_item.hi * k).widen(config.add_slack * k)
                }
            };
            pure_intervals.push(pure);
            let (iv, af) = match node {
                RangeNode::Input(range) => {
                    let symbol = next_symbol;
                    next_symbol += 1;
                    (
                        *range,
                        AffineForm::from_interval_with_symbol(*range, symbol),
                    )
                }
                RangeNode::Const(x) => (Interval::point(*x), AffineForm::constant(*x)),
                RangeNode::Add(a, b) => (
                    intervals[a.index()]
                        .add(intervals[b.index()])
                        .widen(config.add_slack),
                    affines[a.index()].add(&affines[b.index()], config.add_slack),
                ),
                RangeNode::Sub(a, b) => (
                    intervals[a.index()]
                        .sub(intervals[b.index()])
                        .widen(config.add_slack),
                    affines[a.index()].sub(&affines[b.index()], config.add_slack),
                ),
                RangeNode::Neg(a) => (intervals[a.index()].neg(), affines[a.index()].neg()),
                RangeNode::Mul(a, b) => (
                    intervals[a.index()]
                        .mul(intervals[b.index()])
                        .widen(config.mul_slack),
                    affines[a.index()].mul(&affines[b.index()], config.mul_slack),
                ),
                RangeNode::Div(a, b) => {
                    match intervals[a.index()].div(intervals[b.index()]) {
                        Some(iv) => {
                            let widened = iv.widen(config.mul_slack);
                            // Division drops to the interval domain: the
                            // affine reciprocal is not worth its
                            // remainder here.
                            (widened, AffineForm::from_interval(widened))
                        }
                        None => {
                            unbounded.get_or_insert(id);
                            (
                                Interval::everything(),
                                AffineForm::from_interval(Interval::everything()),
                            )
                        }
                    }
                }
                RangeNode::SumOf(item, count) => {
                    // Cover every partial sum: hull with zero before
                    // scaling.
                    let per_item = intervals[item.index()].union(Interval::point(0.0));
                    let k = *count as f64;
                    let iv =
                        Interval::new(per_item.lo * k, per_item.hi * k).widen(config.add_slack * k);
                    let af = affines[item.index()].sum_copies(*count, config.add_slack);
                    // The affine form tracks the *final* sum; hull its
                    // interval with zero so partials are covered too.
                    let af_iv = af.to_interval().union(Interval::point(0.0));
                    (iv, AffineForm::from_interval(af_iv))
                }
            };
            let combined = iv.intersect(af.to_interval());
            intervals.push(combined);
            affines.push(af);
        }
        let affine_intervals: Vec<Interval> = affines.iter().map(AffineForm::to_interval).collect();

        let representable = config.representable();
        let mut verdict = RangeVerdict::Proven;
        if let Some(id) = unbounded {
            verdict = RangeVerdict::Unbounded {
                expr: self.name_of(id),
            };
        } else {
            for (idx, &iv) in intervals.iter().enumerate() {
                if !iv.within(representable) {
                    verdict = RangeVerdict::MayOverflow {
                        expr: self.name_of(ExprId(idx as u32)),
                        interval: iv,
                        representable,
                    };
                    break;
                }
            }
        }
        RangeReport {
            verdict,
            intervals,
            interval_domain: pure_intervals,
            affine_domain: affine_intervals,
            format: config.format,
        }
    }
}

/// Outcome of a range analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum RangeVerdict {
    /// Every expression stays within the representable range: the
    /// datapath cannot overflow or saturate for the declared inputs.
    Proven,
    /// An expression's bound escapes the representable interval.
    MayOverflow {
        /// Name of the violating expression.
        expr: String,
        /// Its computed bound.
        interval: Interval,
        /// The format's representable interval.
        representable: Interval,
    },
    /// A division's divisor range straddles zero, so no finite bound
    /// exists.
    Unbounded {
        /// Name of the unbounded division.
        expr: String,
    },
}

impl RangeVerdict {
    /// `true` for [`RangeVerdict::Proven`].
    #[must_use]
    pub fn is_proven(&self) -> bool {
        matches!(self, RangeVerdict::Proven)
    }
}

impl std::fmt::Display for RangeVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangeVerdict::Proven => write!(f, "proven: no overflow or saturation"),
            RangeVerdict::MayOverflow {
                expr,
                interval,
                representable,
            } => write!(
                f,
                "may overflow: {expr} ranges over {interval}, outside {representable}"
            ),
            RangeVerdict::Unbounded { expr } => {
                write!(f, "unbounded: divisor of {expr} straddles zero")
            }
        }
    }
}

/// Result of [`RangeGraph::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct RangeReport {
    /// The overall verdict.
    pub verdict: RangeVerdict,
    intervals: Vec<Interval>,
    interval_domain: Vec<Interval>,
    affine_domain: Vec<Interval>,
    format: QFormat,
}

impl RangeReport {
    /// `true` if the datapath was proven overflow-free.
    #[must_use]
    pub fn proven(&self) -> bool {
        self.verdict.is_proven()
    }

    /// The computed bound of an expression.
    #[must_use]
    pub fn interval(&self, id: ExprId) -> Interval {
        self.intervals[id.index()]
    }

    /// The two abstract domains' bounds for an expression, *before*
    /// intersection: `(interval-domain, affine-domain)`. Both are sound
    /// over-approximations on their own; [`RangeReport::interval`] is
    /// their intersection. Exposed for the soundness property tests and
    /// for diagnosing which domain a tight (or loose) bound came from.
    #[must_use]
    pub fn domain_bounds(&self, id: ExprId) -> (Interval, Interval) {
        (
            self.interval_domain[id.index()],
            self.affine_domain[id.index()],
        )
    }

    /// The format the proof is against.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn q() -> QFormat {
        QFormat::Q15_16
    }

    #[test]
    fn interval_arithmetic_endpoints() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(1.0, 4.0);
        assert_eq!(a.add(b), Interval::new(-1.0, 7.0));
        assert_eq!(a.sub(b), Interval::new(-6.0, 2.0));
        assert_eq!(a.mul(b), Interval::new(-8.0, 12.0));
        assert_eq!(a.neg(), Interval::new(-3.0, 2.0));
        assert_eq!(
            b.div(Interval::new(2.0, 2.0)),
            Some(Interval::new(0.5, 2.0))
        );
        assert_eq!(b.div(a), None, "divisor straddles zero");
    }

    #[test]
    fn affine_cancellation_beats_plain_intervals() {
        let mut g = RangeGraph::new();
        let x = g.input("x", -100.0, 100.0);
        let d = g.sub(x, x);
        let cfg = RangeConfig {
            format: q(),
            add_slack: 0.0,
            mul_slack: 0.0,
        };
        let report = g.analyze(&cfg);
        // Interval domain alone would give [-200, 200]; the affine
        // domain proves exact cancellation.
        assert_eq!(report.interval(d), Interval::point(0.0));
    }

    #[test]
    fn predicted_intervals_contain_brute_force_fixed_point_sweeps() {
        // y = a*b + c on the exact Q15.16 datapath, checked against a
        // brute-force sweep through QFormat::to_raw.
        let (a_lo, a_hi) = (-3.0, 5.0);
        let (b_lo, b_hi) = (-2.0, 2.0);
        let (c_lo, c_hi) = (-50.0, 50.0);
        let mut g = RangeGraph::new();
        let a = g.input("a", a_lo, a_hi);
        let b = g.input("b", b_lo, b_hi);
        let c = g.input("c", c_lo, c_hi);
        let p = g.mul(a, b);
        let y = g.add(p, c);
        let report = g.analyze(&RangeConfig::exact(q()));
        assert!(report.proven(), "{}", report.verdict);

        let fmt = q();
        let steps = 17;
        let lerp = |lo: f64, hi: f64, i: usize| lo + (hi - lo) * i as f64 / (steps - 1) as f64;
        for i in 0..steps {
            for j in 0..steps {
                for k in 0..steps {
                    let av = fmt.quantize(lerp(a_lo, a_hi, i));
                    let bv = fmt.quantize(lerp(b_lo, b_hi, j));
                    let cv = fmt.quantize(lerp(c_lo, c_hi, k));
                    let pv = fmt.from_raw(fmt.mul_raw(fmt.to_raw(av), fmt.to_raw(bv)));
                    let yv = fmt.from_raw(fmt.to_raw(pv + cv));
                    assert!(
                        report.interval(p).contains(pv),
                        "p={pv} outside {}",
                        report.interval(p)
                    );
                    assert!(
                        report.interval(y).contains(yv),
                        "y={yv} outside {}",
                        report.interval(y)
                    );
                }
            }
        }
    }

    #[test]
    fn qcs_slack_covers_measured_approximate_error() {
        // The for_qcs config must contain every result the real Level1
        // adder produces for operands in range.
        let qcs = QcsAdder::paper_default();
        let fmt = q();
        let level = AccuracyLevel::Level1;
        let cfg = RangeConfig::for_qcs(&qcs, level, fmt);
        let mut g = RangeGraph::new();
        let a = g.input("a", -100.0, 100.0);
        let b = g.input("b", -100.0, 100.0);
        let s = g.add(a, b);
        let report = g.analyze(&cfg);
        assert!(report.proven(), "{}", report.verdict);
        let bound = report.interval(s);

        let mut rng = Pcg32::seeded(0xFEED, 7);
        for _ in 0..2000 {
            let av = rng.uniform(-100.0, 100.0);
            let bv = rng.uniform(-100.0, 100.0);
            let ba = fmt.to_bits(fmt.to_raw(av));
            let bb = fmt.to_bits(fmt.to_raw(bv));
            let got = fmt.from_raw(fmt.from_bits(qcs.add(ba, bb, level)));
            assert!(
                bound.contains(got),
                "approximate sum {got} escapes {bound} for {av} + {bv}"
            );
        }
    }

    #[test]
    fn sum_of_covers_partial_sums() {
        let mut g = RangeGraph::new();
        let x = g.input("x", 0.0, 2.0);
        let s = g.sum_of(x, 100);
        let cfg = RangeConfig::exact(q());
        let report = g.analyze(&cfg);
        let iv = report.interval(s);
        // 100 draws of [0, 2]: every partial sum is within [0, 200].
        assert!(iv.lo <= 0.0 && iv.hi >= 200.0, "{iv}");
        assert!(report.proven());
    }

    #[test]
    fn overflow_is_detected_and_named() {
        let mut g = RangeGraph::new();
        let x = g.input("x", 0.0, 1000.0);
        let p = g.mul(x, x);
        g.named(p, "x_squared");
        let report = g.analyze(&RangeConfig::exact(q()));
        match &report.verdict {
            RangeVerdict::MayOverflow { expr, interval, .. } => {
                assert_eq!(expr, "x_squared");
                assert!(interval.hi >= 1_000_000.0);
            }
            other => panic!("expected overflow, got {other}"),
        }
        assert!(!report.proven());
    }

    #[test]
    fn zero_straddling_division_is_unbounded() {
        let mut g = RangeGraph::new();
        let x = g.input("x", 1.0, 2.0);
        let d = g.input("d", -1.0, 1.0);
        let q_expr = g.div(x, d);
        g.named(q_expr, "x/d");
        let report = g.analyze(&RangeConfig::exact(q()));
        assert_eq!(
            report.verdict,
            RangeVerdict::Unbounded { expr: "x/d".into() }
        );
    }

    #[test]
    fn verdicts_render_readably() {
        assert_eq!(
            RangeVerdict::Proven.to_string(),
            "proven: no overflow or saturation"
        );
        let v = RangeVerdict::Unbounded { expr: "α".into() };
        assert!(v.to_string().contains("α"));
    }

    #[test]
    fn exact_adder_accurate_level_has_rounding_only_slack() {
        let qcs = QcsAdder::paper_default();
        let cfg = RangeConfig::for_qcs(&qcs, AccuracyLevel::Accurate, q());
        assert_eq!(cfg.add_slack, 0.5 * q().resolution());
        let lvl1 = RangeConfig::for_qcs(&qcs, AccuracyLevel::Level1, q());
        assert!(lvl1.add_slack > cfg.add_slack);
        // Level 1 mangles 20 bits: slack ≈ 2^21 raw units = 2^5 = 32.0.
        assert!((lvl1.add_slack - (32.0 + cfg.add_slack)).abs() < 1e-9);
    }
}
