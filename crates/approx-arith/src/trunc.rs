//! Truncation (lower-part-zero) adder.

use gatesim::builders::{self, AdderPorts};
use gatesim::Netlist;

use crate::adder::{width_mask, Adder};

/// Truncation adder in the spirit of the truncation-error-tolerant
/// adders of Zhu et al. (TVLSI 2010): the low `approx_bits` result bits
/// are tied to zero and the upper part adds the truncated operands
/// exactly (no carry from the dropped part).
///
/// Compared to the OR-based [`LowerOrAdder`](crate::LowerOrAdder) this
/// family quantizes its *results* onto a coarser grid (multiples of
/// `2^approx_bits`), which is what makes iterative methods running on it
/// freeze earlier than exact hardware — the effect behind the paper's
/// approximate runs converging in fewer iterations than `Truth`.
///
/// # Example
///
/// ```
/// use approx_arith::{Adder, LowerZeroAdder};
///
/// let adder = LowerZeroAdder::new(16, 4);
/// // Low nibbles are dropped before the add: 0x13 + 0x25 -> 0x10 + 0x20.
/// assert_eq!(adder.add(0x13, 0x25), 0x30);
/// assert_eq!(adder.add(0x0F, 0x0F), 0x00); // everything below 2^4 vanishes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerZeroAdder {
    width: u32,
    approx_bits: u32,
}

impl LowerZeroAdder {
    /// Create a truncation adder dropping the low `approx_bits` bits.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=64` or `approx_bits >= width`.
    #[must_use]
    pub fn new(width: u32, approx_bits: u32) -> Self {
        let _ = width_mask(width);
        assert!(
            approx_bits < width,
            "approx_bits ({approx_bits}) must be less than width ({width})"
        );
        Self { width, approx_bits }
    }

    /// Number of zeroed low bits.
    #[must_use]
    pub fn approx_bits(&self) -> u32 {
        self.approx_bits
    }
}

impl Adder for LowerZeroAdder {
    fn name(&self) -> String {
        format!("trunc{}/k{}", self.width, self.approx_bits)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let mask = self.mask();
        let (a, b) = (a & mask, b & mask);
        let k = self.approx_bits;
        if k == 0 {
            return a.wrapping_add(b) & mask;
        }
        let high = (a >> k).wrapping_add(b >> k);
        (high << k) & mask
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        let w = self.width as usize;
        let k = self.approx_bits as usize;
        let mut nl = Netlist::new();
        let (a, b) = builders::declare_ab(&mut nl, w);
        let zero = nl.constant(false);
        let mut sums = vec![zero; w];
        let mut carry = zero;
        for i in k..w {
            let (s, c) = builders::full_adder(&mut nl, a[i], b[i], carry);
            sums[i] = s;
            carry = c;
        }
        for (i, s) in sums.iter().enumerate() {
            nl.mark_output(*s, format!("sum{i}"));
        }
        let ports = AdderPorts::new(a, b, None, false);
        (nl, ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_netlist_matches;
    use crate::RippleCarryAdder;

    #[test]
    fn zero_approx_bits_is_exact() {
        let t = LowerZeroAdder::new(32, 0);
        let rca = RippleCarryAdder::new(32);
        for (a, b) in [(0u64, 0u64), (0xFFFF_FFFF, 1), (12345, 67890)] {
            assert_eq!(t.add(a, b), rca.add(a, b));
        }
    }

    #[test]
    fn results_land_on_the_coarse_grid() {
        let t = LowerZeroAdder::new(16, 6);
        for a in (0..0xFFFFu64).step_by(97) {
            for b in (0..0xFFFFu64).step_by(89) {
                assert_eq!(t.add(a, b) % 64, 0);
            }
        }
    }

    #[test]
    fn error_is_a_bounded_underestimate() {
        // Truncation drops the low parts of both operands, so on the
        // non-wrapping range the result underestimates by less than
        // 2^(k+1).
        let t = LowerZeroAdder::new(16, 5);
        for a in (0..0x7FFFu64).step_by(53) {
            for b in (0..0x7FFFu64).step_by(61) {
                let exact = a + b;
                let approx = t.add(a, b);
                assert!(approx <= exact);
                assert!(exact - approx < 1 << 6, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn small_operands_vanish_entirely() {
        // The failure mode that makes level 1 catastrophic: operands
        // below the truncation quantum never accumulate.
        let t = LowerZeroAdder::new(32, 20);
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc = t.add(acc, 1 << 10); // value far below 2^20
        }
        assert_eq!(acc, 0);
    }

    #[test]
    fn netlist_agrees_with_functional_model() {
        assert_netlist_matches(&LowerZeroAdder::new(16, 4), 300);
        assert_netlist_matches(&LowerZeroAdder::new(32, 20), 150);
        assert_netlist_matches(&LowerZeroAdder::new(32, 5), 150);
        assert_netlist_matches(&LowerZeroAdder::new(12, 11), 100);
    }

    #[test]
    #[should_panic(expected = "must be less than width")]
    fn full_truncation_panics() {
        let _ = LowerZeroAdder::new(8, 8);
    }
}
