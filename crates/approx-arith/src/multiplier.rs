//! Array multipliers (exact and truncated), as netlists and functional
//! models.
//!
//! The paper approximates adders only, so multipliers are exact in the
//! main datapath; the truncated multiplier here supports the extension
//! ablations, and the exact array multiplier netlist calibrates the
//! energy cost of a multiply relative to an add.

use gatesim::builders;
use gatesim::{Netlist, NodeId};

use crate::adder::width_mask;

/// An unsigned array multiplier: `width × width → 2·width` bits, with the
/// partial-product columns below `truncated_columns` dropped (0 = exact).
///
/// # Example
///
/// ```
/// use approx_arith::ArrayMultiplier;
///
/// let exact = ArrayMultiplier::new(8, 0);
/// assert_eq!(exact.mul(13, 11), 143);
///
/// let trunc = ArrayMultiplier::new(8, 6);
/// // Truncation only ever under-estimates.
/// assert!(trunc.mul(255, 255) <= 255 * 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayMultiplier {
    width: u32,
    truncated_columns: u32,
}

impl ArrayMultiplier {
    /// Create a multiplier; `truncated_columns` low product columns are
    /// dropped (their partial products are never generated).
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=32` or `truncated_columns`
    /// exceeds `2·width`.
    #[must_use]
    pub fn new(width: u32, truncated_columns: u32) -> Self {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        assert!(
            truncated_columns <= 2 * width,
            "cannot truncate more columns than the product has"
        );
        Self {
            width,
            truncated_columns,
        }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of truncated low product columns.
    #[must_use]
    pub fn truncated_columns(&self) -> u32 {
        self.truncated_columns
    }

    /// Multiply (operand bits above `width` are ignored). The result has
    /// up to `2·width` significant bits.
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        let mask = width_mask(self.width);
        let (a, b) = (a & mask, b & mask);
        if self.truncated_columns == 0 {
            return a * b;
        }
        // Sum only the partial products whose column index is kept.
        let mut acc = 0u64;
        for i in 0..self.width {
            if (b >> i) & 1 == 0 {
                continue;
            }
            for j in 0..self.width {
                let col = i + j;
                if col >= self.truncated_columns && (a >> j) & 1 == 1 {
                    acc += 1u64 << col;
                }
            }
        }
        acc
    }

    /// Build the carry-save array netlist implementing exactly
    /// [`ArrayMultiplier::mul`].
    ///
    /// Inputs are declared `a[0..w]` then `b[0..w]`; outputs are
    /// `p[0..2w]`, LSB first.
    #[must_use]
    pub fn netlist(&self) -> Netlist {
        let w = self.width as usize;
        let t = self.truncated_columns as usize;
        let mut nl = Netlist::new();
        let a: Vec<NodeId> = (0..w).map(|i| nl.input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..w).map(|i| nl.input(format!("b{i}"))).collect();
        // Column-wise lists of partial-product bits.
        let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * w];
        #[allow(clippy::needless_range_loop)] // i and j index both operands symmetrically
        for i in 0..w {
            for j in 0..w {
                let col = i + j;
                if col >= t {
                    let pp = nl.and2(a[j], b[i]);
                    columns[col].push(pp);
                }
            }
        }
        // Reduce each column with half/full adders, pushing carries into
        // the next column (ripple-style Wallace-ish reduction).
        let zero = nl.constant(false);
        let mut product = Vec::with_capacity(2 * w);
        for col in 0..2 * w {
            let mut bits = std::mem::take(&mut columns[col]);
            while bits.len() > 1 {
                if bits.len() >= 3 {
                    let (x, y, z) = (bits.remove(0), bits.remove(0), bits.remove(0));
                    let (s, c) = builders::full_adder(&mut nl, x, y, z);
                    bits.push(s);
                    if col + 1 < 2 * w {
                        columns[col + 1].push(c);
                    }
                } else {
                    let (x, y) = (bits.remove(0), bits.remove(0));
                    let (s, c) = builders::half_adder(&mut nl, x, y);
                    bits.push(s);
                    if col + 1 < 2 * w {
                        columns[col + 1].push(c);
                    }
                }
            }
            product.push(bits.pop().unwrap_or(zero));
        }
        for (i, p) in product.iter().enumerate() {
            nl.mark_output(*p, format!("p{i}"));
        }
        nl
    }

    /// Pack operands for the netlist's input convention.
    #[must_use]
    pub fn pack_operands(&self, a: u64, b: u64) -> Vec<bool> {
        let w = self.width;
        let mut v = Vec::with_capacity(2 * w as usize);
        v.extend((0..w).map(|i| (a >> i) & 1 == 1));
        v.extend((0..w).map(|i| (b >> i) & 1 == 1));
        v
    }

    /// Unpack the netlist's output vector into the product value.
    ///
    /// # Panics
    /// Panics if `outputs` does not have `2·width` entries.
    #[must_use]
    pub fn unpack_product(&self, outputs: &[bool]) -> u64 {
        assert_eq!(outputs.len(), 2 * self.width as usize);
        outputs
            .iter()
            .enumerate()
            .filter(|(_, &bit)| bit)
            .fold(0u64, |acc, (i, _)| acc | (1u64 << i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::Simulator;

    #[test]
    fn exact_multiplier_exhaustive_6bit() {
        let m = ArrayMultiplier::new(6, 0);
        for a in 0..64u64 {
            for b in 0..64u64 {
                assert_eq!(m.mul(a, b), a * b);
            }
        }
    }

    #[test]
    fn truncation_underestimates_and_is_monotone() {
        let exact = ArrayMultiplier::new(8, 0);
        let t4 = ArrayMultiplier::new(8, 4);
        let t8 = ArrayMultiplier::new(8, 8);
        for a in (0..256u64).step_by(7) {
            for b in (0..256u64).step_by(11) {
                let e = exact.mul(a, b);
                let p4 = t4.mul(a, b);
                let p8 = t8.mul(a, b);
                assert!(p4 <= e);
                assert!(p8 <= p4);
            }
        }
    }

    #[test]
    fn netlist_matches_functional_model_exact() {
        let m = ArrayMultiplier::new(8, 0);
        let nl = m.netlist();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let mut rng = crate::rng::Pcg32::seeded(21, 0);
        for _ in 0..200 {
            let a = rng.below(256);
            let b = rng.below(256);
            let out = sim.evaluate(&m.pack_operands(a, b)).unwrap();
            assert_eq!(m.unpack_product(&out), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn netlist_matches_functional_model_truncated() {
        let m = ArrayMultiplier::new(8, 5);
        let nl = m.netlist();
        let mut sim = Simulator::new(&nl);
        let mut rng = crate::rng::Pcg32::seeded(22, 0);
        for _ in 0..200 {
            let a = rng.below(256);
            let b = rng.below(256);
            let out = sim.evaluate(&m.pack_operands(a, b)).unwrap();
            assert_eq!(m.unpack_product(&out), m.mul(a, b), "a={a} b={b}");
        }
    }

    #[test]
    fn truncated_array_is_smaller() {
        let exact = ArrayMultiplier::new(8, 0).netlist();
        let trunc = ArrayMultiplier::new(8, 8).netlist();
        assert!(trunc.len() < exact.len());
        assert!(trunc.transistor_count() < exact.transistor_count());
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn over_truncation_panics() {
        let _ = ArrayMultiplier::new(8, 17);
    }
}
