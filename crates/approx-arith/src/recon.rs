//! The quality-configurable (reconfiguration-oriented) adder used by
//! ApproxIt.

use gatesim::builders::AdderPorts;
use gatesim::Netlist;

use crate::adder::{width_mask, AccuracyLevel, Adder};
use crate::exact::RippleCarryAdder;
use crate::loa::LowerOrAdder;
use crate::trunc::LowerZeroAdder;

/// How the QCS adder's approximated low bits are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LowPartPolicy {
    /// Low bits are tied to zero (truncation-error-tolerant style, Zhu
    /// et al. TVLSI'10 — the paper's ref \[14\]). Results land on a
    /// coarse grid, which makes iterative methods freeze earlier than on
    /// exact hardware.
    #[default]
    Zero,
    /// Low bits are the carry-free OR of the operands (LOA style,
    /// Mahdiani et al.).
    Or,
}

/// A quality-configurable adder with four approximate accuracy levels plus
/// a fully accurate mode, in the spirit of the reconfiguration-oriented
/// approximate adder of Ye et al. (ICCAD'13) that the paper evaluates.
///
/// Each approximate level handles the low `approx_bits[level]` result
/// bits with carry-free cells per the [`LowPartPolicy`] and the
/// remaining high bits exactly; the accurate mode is a plain ripple-carry
/// adder. Reconfiguration between levels corresponds to power-gating
/// segments of the carry chain, which is why lower levels cost less
/// energy per operation.
///
/// # Example
///
/// ```
/// use approx_arith::{AccuracyLevel, QcsAdder};
///
/// let qcs = QcsAdder::paper_default();
/// let exact = qcs.add(1 << 20, 3 << 20, AccuracyLevel::Accurate);
/// let approx = qcs.add(1 << 20, 3 << 20, AccuracyLevel::Level4);
/// // High-order bits are always exact.
/// assert_eq!(exact, approx);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QcsAdder {
    width: u32,
    approx_bits: [u32; 4],
    policy: LowPartPolicy,
}

impl QcsAdder {
    /// The configuration used throughout the reproduction: a 32-bit
    /// datapath (Q15.16 fixed point) with 20/15/10/5 OR-approximated
    /// low bits for levels 1–4.
    ///
    /// With a 16-bit fraction this yields worst-case per-add errors of
    /// roughly 2⁵, 1, 2⁻⁵ and 2⁻¹⁰ in value units — the staircase the
    /// paper's single-mode tables exhibit (catastrophic at level 1,
    /// mildly degraded at level 4) — while the measured per-level energy
    /// ratios land near the paper's 0.46…0.93 range (level 1 gates out
    /// 20 of 32 full-adder cells).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(32, [20, 15, 10, 5])
    }

    /// Create a QCS adder with explicit per-level approximate-bit counts
    /// and the default (truncation) low-part policy.
    ///
    /// `approx_bits` is indexed by level (level 1 first) and must be
    /// strictly decreasing: a higher accuracy level approximates fewer
    /// bits.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=64`, any entry reaches `width`,
    /// or the entries are not strictly decreasing.
    #[must_use]
    pub fn new(width: u32, approx_bits: [u32; 4]) -> Self {
        Self::with_policy(width, approx_bits, LowPartPolicy::default())
    }

    /// Create a QCS adder with an explicit low-part policy.
    ///
    /// # Panics
    /// Panics on the same conditions as [`QcsAdder::new`].
    #[must_use]
    pub fn with_policy(width: u32, approx_bits: [u32; 4], policy: LowPartPolicy) -> Self {
        let _ = width_mask(width);
        for pair in approx_bits.windows(2) {
            assert!(
                pair[0] > pair[1],
                "approx_bits must be strictly decreasing (higher level = more accurate)"
            );
        }
        assert!(
            approx_bits[0] < width,
            "approx_bits must be less than width"
        );
        Self {
            width,
            approx_bits,
            policy,
        }
    }

    /// The low-part policy of this adder family.
    #[must_use]
    pub fn policy(&self) -> LowPartPolicy {
        self.policy
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of OR-approximated low bits in the given mode (0 for
    /// `Accurate`).
    #[must_use]
    pub fn approx_bits(&self, level: AccuracyLevel) -> u32 {
        match level {
            AccuracyLevel::Accurate => 0,
            l => self.approx_bits[l.index()],
        }
    }

    /// Add under the given accuracy level, mod `2^width`.
    #[must_use]
    pub fn add(&self, a: u64, b: u64, level: AccuracyLevel) -> u64 {
        self.at(level).add(a, b)
    }

    /// A single-mode view of this adder implementing [`Adder`], suitable
    /// for netlist construction and error/energy characterization.
    #[must_use]
    pub fn at(&self, level: AccuracyLevel) -> QcsModeAdder {
        let k = self.approx_bits(level);
        let inner = if level.is_accurate() {
            ModeImpl::Exact(RippleCarryAdder::new(self.width))
        } else {
            match self.policy {
                LowPartPolicy::Zero => ModeImpl::Zero(LowerZeroAdder::new(self.width, k)),
                LowPartPolicy::Or => ModeImpl::Or(LowerOrAdder::new(self.width, k, false)),
            }
        };
        QcsModeAdder { level, inner }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeImpl {
    Exact(RippleCarryAdder),
    Zero(LowerZeroAdder),
    Or(LowerOrAdder),
}

impl ModeImpl {
    fn as_adder(&self) -> &dyn Adder {
        match self {
            ModeImpl::Exact(a) => a,
            ModeImpl::Zero(a) => a,
            ModeImpl::Or(a) => a,
        }
    }
}

/// One accuracy mode of a [`QcsAdder`], viewed as a standalone [`Adder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QcsModeAdder {
    level: AccuracyLevel,
    inner: ModeImpl,
}

impl QcsModeAdder {
    /// The accuracy level this view is fixed to.
    #[must_use]
    pub fn level(&self) -> AccuracyLevel {
        self.level
    }
}

impl Adder for QcsModeAdder {
    fn name(&self) -> String {
        format!("qcs{}/{}", self.width(), self.level)
    }

    fn width(&self) -> u32 {
        self.inner.as_adder().width()
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        self.inner.as_adder().add(a, b)
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        // In accurate mode the QCS hardware is the full carry chain; the
        // RCA netlist models its activity.
        self.inner.as_adder().netlist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_netlist_matches;

    #[test]
    fn accurate_mode_is_exact() {
        let qcs = QcsAdder::paper_default();
        let mask = width_mask(32);
        for (a, b) in [
            (0u64, 0u64),
            (mask, 1),
            (0x1234_5678_9ABC, 0xBA98_7654_3210),
        ] {
            assert_eq!(
                qcs.add(a, b, AccuracyLevel::Accurate),
                a.wrapping_add(b) & mask
            );
        }
    }

    #[test]
    fn error_shrinks_with_level() {
        let qcs = QcsAdder::paper_default();
        let mut rng = crate::rng::Pcg32::seeded(99, 0);
        let mask = width_mask(32);
        let mut mean_abs = [0f64; 4];
        let samples = 2000;
        for _ in 0..samples {
            let a = rng.next_u64() & mask;
            let b = rng.next_u64() & mask;
            let exact = a.wrapping_add(b) & mask;
            for level in AccuracyLevel::APPROXIMATE {
                let approx = qcs.add(a, b, level);
                let diff = (approx as i128 - exact as i128).unsigned_abs();
                mean_abs[level.index()] += diff as f64 / samples as f64;
            }
        }
        for w in mean_abs.windows(2) {
            assert!(w[0] > w[1], "error must shrink with accuracy: {mean_abs:?}");
        }
    }

    #[test]
    fn mode_views_match_family() {
        let qcs = QcsAdder::paper_default();
        let mut rng = crate::rng::Pcg32::seeded(5, 0);
        for _ in 0..100 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            for level in AccuracyLevel::ALL {
                assert_eq!(qcs.add(a, b, level), qcs.at(level).add(a, b));
            }
        }
    }

    #[test]
    fn netlists_agree_for_every_mode() {
        let qcs = QcsAdder::new(16, [10, 8, 6, 4]);
        for level in AccuracyLevel::ALL {
            assert_netlist_matches(&qcs.at(level), 150);
        }
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn non_monotone_levels_panic() {
        let _ = QcsAdder::new(32, [8, 8, 6, 4]);
    }
}
