//! GeAr — the generalized approximate adder model.

use gatesim::builders::{self, AdderPorts};
use gatesim::Netlist;

use crate::adder::{width_mask, Adder};

/// Generalized approximate adder GeAr(N, R, P) after Shafique et al.
/// (DAC'15): the word is produced by overlapping sub-adders, each
/// emitting `resultant_bits` (R) result bits computed from a window that
/// also sees the `prediction_bits` (P) preceding bits (with carry-in 0
/// at the window start).
///
/// The model subsumes the classic speculative architectures:
///
/// * `GeAr(N, R, R)` behaves like ETAII with block size R;
/// * `GeAr(N, 1, P)` is the windowed-carry ACA with lookahead P + 1.
///
/// # Example
///
/// ```
/// use approx_arith::{Adder, GeArAdder, EtaIiAdder};
///
/// // GeAr(16, 4, 4) == ETAII(16, block 4) on every input.
/// let gear = GeArAdder::new(16, 4, 4);
/// let eta = EtaIiAdder::new(16, 4);
/// for (a, b) in [(0x00FFu64, 0x0001u64), (0x1234, 0x4321), (0xFFFF, 0xFFFF)] {
///     assert_eq!(gear.add(a, b), eta.add(a, b));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeArAdder {
    width: u32,
    resultant_bits: u32,
    prediction_bits: u32,
}

impl GeArAdder {
    /// Create a GeAr adder.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=64`, `resultant_bits` is 0 or
    /// does not divide `width`, or `prediction_bits + resultant_bits`
    /// exceeds `width`.
    #[must_use]
    pub fn new(width: u32, resultant_bits: u32, prediction_bits: u32) -> Self {
        let _ = width_mask(width);
        assert!(resultant_bits > 0, "resultant bits must be positive");
        assert_eq!(
            width % resultant_bits,
            0,
            "resultant bits ({resultant_bits}) must divide width ({width})"
        );
        assert!(
            resultant_bits + prediction_bits <= width,
            "sub-adder length exceeds width"
        );
        Self {
            width,
            resultant_bits,
            prediction_bits,
        }
    }

    /// Result bits per sub-adder (R).
    #[must_use]
    pub fn resultant_bits(&self) -> u32 {
        self.resultant_bits
    }

    /// Carry-prediction bits per sub-adder (P).
    #[must_use]
    pub fn prediction_bits(&self) -> u32 {
        self.prediction_bits
    }

    /// Number of sub-adders.
    #[must_use]
    pub fn sub_adders(&self) -> u32 {
        self.width / self.resultant_bits
    }
}

impl Adder for GeArAdder {
    fn name(&self) -> String {
        format!(
            "gear{}/r{}p{}",
            self.width, self.resultant_bits, self.prediction_bits
        )
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let mask = self.mask();
        let (a, b) = (a & mask, b & mask);
        let r = self.resultant_bits;
        let p = self.prediction_bits;
        let mut result = 0u64;
        for i in 0..self.sub_adders() {
            let res_start = i * r;
            let win_start = res_start.saturating_sub(p);
            let win_len = res_start - win_start + r;
            let m = width_mask(win_len);
            let aw = (a >> win_start) & m;
            let bw = (b >> win_start) & m;
            let sum = aw + bw;
            let bits = (sum >> (res_start - win_start)) & width_mask(r);
            result |= bits << res_start;
        }
        result
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        let w = self.width as usize;
        let r = self.resultant_bits as usize;
        let p = self.prediction_bits as usize;
        let mut nl = Netlist::new();
        let (a, b) = builders::declare_ab(&mut nl, w);
        let zero = nl.constant(false);
        let mut sums = vec![zero; w];
        for i in 0..w / r {
            let res_start = i * r;
            let win_start = res_start.saturating_sub(p);
            // One ripple chain over the window; only the top R sums are
            // kept (the prediction bits exist purely to form the carry).
            let mut carry = zero;
            for bit in win_start..res_start + r {
                let (s, c) = builders::full_adder(&mut nl, a[bit], b[bit], carry);
                if bit >= res_start {
                    sums[bit] = s;
                }
                carry = c;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            nl.mark_output(*s, format!("sum{i}"));
        }
        let ports = AdderPorts::new(a, b, None, false);
        (nl, ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;
    use crate::test_util::assert_netlist_matches;
    use crate::{EtaIiAdder, RippleCarryAdder, WindowedCarryAdder};

    #[test]
    fn full_prediction_is_exact() {
        // R = width means a single sub-adder spanning everything.
        let gear = GeArAdder::new(16, 16, 0);
        let rca = RippleCarryAdder::new(16);
        for (a, b) in [(0u64, 0u64), (0xFFFF, 1), (0xABCD, 0x1234)] {
            assert_eq!(gear.add(a, b), rca.add(a, b));
        }
    }

    #[test]
    fn gear_r_equals_p_matches_etaii() {
        let gear = GeArAdder::new(32, 8, 8);
        let eta = EtaIiAdder::new(32, 8);
        let mut rng = Pcg32::seeded(61, 0);
        for _ in 0..500 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            assert_eq!(gear.add(a, b), eta.add(a, b), "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn gear_r1_matches_windowed_carry() {
        // GeAr(16, 1, P): each bit sees P predecessors -> ACA with
        // lookahead P (window [i-P, i) for the carry plus the bit itself).
        let gear = GeArAdder::new(16, 1, 4);
        let aca = WindowedCarryAdder::new(16, 4);
        let mut rng = Pcg32::seeded(62, 0);
        for _ in 0..500 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            assert_eq!(gear.add(a, b), aca.add(a, b), "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn accuracy_improves_with_prediction_bits() {
        let exact = RippleCarryAdder::new(16);
        let errors = |p: u32| {
            let gear = GeArAdder::new(16, 2, p);
            let mut errs = 0u32;
            for a in (0..0xFFFFu64).step_by(37) {
                for b in (0..0xFFFFu64).step_by(53) {
                    if gear.add(a, b) != exact.add(a, b) {
                        errs += 1;
                    }
                }
            }
            errs
        };
        assert!(errors(2) > errors(6));
        assert!(errors(6) > errors(10));
        assert_eq!(errors(14), 0);
    }

    #[test]
    fn netlist_agrees_with_functional_model() {
        assert_netlist_matches(&GeArAdder::new(16, 4, 4), 300);
        assert_netlist_matches(&GeArAdder::new(32, 8, 4), 150);
        assert_netlist_matches(&GeArAdder::new(32, 1, 7), 100);
        assert_netlist_matches(&GeArAdder::new(12, 3, 6), 200);
    }

    #[test]
    fn shorter_windows_are_faster() {
        use gatesim::timing::DelayModel;
        let model = DelayModel::default();
        let (exact, _) = GeArAdder::new(32, 32, 0).netlist();
        let (fast, _) = GeArAdder::new(32, 4, 4).netlist();
        assert!(model.critical_path(&fast) < model.critical_path(&exact) / 2.0);
    }

    #[test]
    #[should_panic(expected = "must divide width")]
    fn non_dividing_r_panics() {
        let _ = GeArAdder::new(16, 5, 2);
    }
}
