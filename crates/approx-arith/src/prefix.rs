//! Kogge–Stone parallel-prefix adder.

use gatesim::builders::{self, AdderPorts};
use gatesim::Netlist;

use crate::adder::{width_mask, Adder};

/// Exact Kogge–Stone adder: a parallel-prefix carry network with
/// O(log w) logic depth — the standard *fast* exact baseline against
/// which speculative approximate adders are judged (they beat it on
/// area/energy, not on correctness).
///
/// # Example
///
/// ```
/// use approx_arith::{Adder, KoggeStoneAdder, RippleCarryAdder};
/// use gatesim::timing::DelayModel;
///
/// let ks = KoggeStoneAdder::new(32);
/// assert_eq!(ks.add(0xFFFF_FFFF, 1), 0); // exact, modular
///
/// // Logarithmic vs linear critical path:
/// let model = DelayModel::default();
/// let (ks_nl, _) = ks.netlist();
/// let (rca_nl, _) = RippleCarryAdder::new(32).netlist();
/// assert!(model.critical_path(&ks_nl) < model.critical_path(&rca_nl) / 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KoggeStoneAdder {
    width: u32,
}

impl KoggeStoneAdder {
    /// Create an exact prefix adder of the given width.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        let _ = width_mask(width);
        Self { width }
    }
}

impl Adder for KoggeStoneAdder {
    fn name(&self) -> String {
        format!("ks{}", self.width)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let mask = self.mask();
        (a & mask).wrapping_add(b & mask) & mask
    }

    fn netlist(&self) -> (Netlist, AdderPorts) {
        let w = self.width as usize;
        let mut nl = Netlist::new();
        let (a, b) = builders::declare_ab(&mut nl, w);
        // Bit-level generate/propagate.
        let mut g: Vec<_> = (0..w).map(|i| nl.and2(a[i], b[i])).collect();
        let mut p: Vec<_> = (0..w).map(|i| nl.xor2(a[i], b[i])).collect();
        let sum_p = p.clone(); // the half-sum bits feed the final XOR row
                               // Kogge–Stone prefix tree: at distance d, combine (g, p)[i] with
                               // (g, p)[i − d]:  g' = g + p·g_prev,  p' = p·p_prev.
        let mut d = 1;
        while d < w {
            let mut g_next = g.clone();
            let mut p_next = p.clone();
            for i in d..w {
                let pg = nl.and2(p[i], g[i - d]);
                g_next[i] = nl.or2(g[i], pg);
                p_next[i] = nl.and2(p[i], p[i - d]);
            }
            g = g_next;
            p = p_next;
            d *= 2;
        }
        // g[i] is now the carry OUT of bit i; sum_i = p_i ^ carry_in_i.
        let zero = nl.constant(false);
        for i in 0..w {
            let carry_in = if i == 0 { zero } else { g[i - 1] };
            let s = nl.xor2(sum_p[i], carry_in);
            nl.mark_output(s, format!("sum{i}"));
        }
        let ports = AdderPorts::new(a, b, None, false);
        (nl, ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_netlist_matches;
    use gatesim::timing::DelayModel;

    #[test]
    fn netlist_agrees_with_integer_addition() {
        assert_netlist_matches(&KoggeStoneAdder::new(8), 300);
        assert_netlist_matches(&KoggeStoneAdder::new(32), 200);
        assert_netlist_matches(&KoggeStoneAdder::new(48), 100);
        assert_netlist_matches(&KoggeStoneAdder::new(13), 200); // non-power-of-two
    }

    #[test]
    fn depth_is_logarithmic() {
        let depth_of = |w: u32| {
            let (nl, _) = KoggeStoneAdder::new(w).netlist();
            DelayModel::logic_depth(&nl)
        };
        // Depth grows by O(1) per doubling, not by O(w).
        let d8 = depth_of(8);
        let d16 = depth_of(16);
        let d32 = depth_of(32);
        let d64 = depth_of(64);
        assert!(d16 <= d8 + 3);
        assert!(d32 <= d16 + 3);
        assert!(d64 <= d32 + 3);
        assert!(d64 < 16, "depth {d64} not logarithmic");
    }

    #[test]
    fn area_is_larger_than_ripple_carry() {
        use crate::RippleCarryAdder;
        let (ks, _) = KoggeStoneAdder::new(32).netlist();
        let (rca, _) = RippleCarryAdder::new(32).netlist();
        // The prefix tree trades O(w log w) cells for O(log w) depth.
        assert!(ks.transistor_count() > rca.transistor_count());
    }

    #[test]
    fn exhaustive_small_width() {
        let ks = KoggeStoneAdder::new(5);
        for a in 0..32u64 {
            for b in 0..32u64 {
                assert_eq!(ks.add(a, b), (a + b) & 31);
            }
        }
    }
}
