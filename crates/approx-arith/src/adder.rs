//! The adder abstraction and the accuracy-level vocabulary shared by the
//! whole framework.

use gatesim::builders::AdderPorts;
use gatesim::Netlist;

/// Accuracy level of the quality-configurable adder.
///
/// Mirrors the paper's `Level = {level1, …, level4}` plus the fully
/// accurate mode: a larger level index means higher accuracy, and
/// `Accurate` is exact hardware.
///
/// # Example
///
/// ```
/// use approx_arith::AccuracyLevel;
///
/// assert!(AccuracyLevel::Level1 < AccuracyLevel::Level4);
/// assert!(AccuracyLevel::Accurate.is_accurate());
/// assert_eq!(AccuracyLevel::Level3.next_higher(), Some(AccuracyLevel::Level4));
/// assert_eq!(AccuracyLevel::Accurate.next_higher(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccuracyLevel {
    /// Lowest accuracy, lowest energy.
    Level1,
    /// Second accuracy level.
    Level2,
    /// Third accuracy level.
    Level3,
    /// Highest approximate accuracy level.
    Level4,
    /// Fully accurate (exact) mode.
    Accurate,
}

impl AccuracyLevel {
    /// All modes from least to most accurate.
    pub const ALL: [AccuracyLevel; 5] = [
        AccuracyLevel::Level1,
        AccuracyLevel::Level2,
        AccuracyLevel::Level3,
        AccuracyLevel::Level4,
        AccuracyLevel::Accurate,
    ];

    /// The four approximate levels (excludes `Accurate`).
    pub const APPROXIMATE: [AccuracyLevel; 4] = [
        AccuracyLevel::Level1,
        AccuracyLevel::Level2,
        AccuracyLevel::Level3,
        AccuracyLevel::Level4,
    ];

    /// Zero-based index into [`AccuracyLevel::ALL`].
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            AccuracyLevel::Level1 => 0,
            AccuracyLevel::Level2 => 1,
            AccuracyLevel::Level3 => 2,
            AccuracyLevel::Level4 => 3,
            AccuracyLevel::Accurate => 4,
        }
    }

    /// Inverse of [`AccuracyLevel::index`].
    ///
    /// Returns `None` for indices ≥ 5.
    #[must_use]
    pub const fn from_index(index: usize) -> Option<Self> {
        match index {
            0 => Some(AccuracyLevel::Level1),
            1 => Some(AccuracyLevel::Level2),
            2 => Some(AccuracyLevel::Level3),
            3 => Some(AccuracyLevel::Level4),
            4 => Some(AccuracyLevel::Accurate),
            _ => None,
        }
    }

    /// `true` for the exact mode.
    #[must_use]
    pub const fn is_accurate(self) -> bool {
        matches!(self, AccuracyLevel::Accurate)
    }

    /// The adjacent mode with higher accuracy, or `None` from `Accurate`.
    ///
    /// This is the only transition the paper's *incremental* strategy
    /// allows.
    #[must_use]
    pub const fn next_higher(self) -> Option<Self> {
        Self::from_index(self.index() + 1)
    }

    /// The adjacent mode with lower accuracy, or `None` from `Level1`.
    #[must_use]
    pub const fn next_lower(self) -> Option<Self> {
        match self.index() {
            0 => None,
            i => Self::from_index(i - 1),
        }
    }
}

impl std::fmt::Display for AccuracyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AccuracyLevel::Level1 => "level1",
            AccuracyLevel::Level2 => "level2",
            AccuracyLevel::Level3 => "level3",
            AccuracyLevel::Level4 => "level4",
            AccuracyLevel::Accurate => "acc",
        };
        f.write_str(s)
    }
}

/// A (possibly approximate) fixed-width binary adder.
///
/// Implementations provide both a fast bit-parallel functional model
/// ([`Adder::add`]) and a gate netlist ([`Adder::netlist`]); the two are
/// required to agree bit-exactly and the crate's tests enforce it. The
/// netlist is what the energy characterization simulates.
///
/// Addition is modular: the result is reduced mod `2^width` and any carry
/// out of the top bit is discarded, exactly like the hardware.
pub trait Adder: std::fmt::Debug + Send + Sync {
    /// Human-readable architecture name, e.g. `"loa48/k16"`.
    fn name(&self) -> String;

    /// Operand width in bits (1..=64).
    fn width(&self) -> u32;

    /// Compute `(a + b) mod 2^width` under this architecture's
    /// approximation. Operand bits above `width` are ignored.
    fn add(&self, a: u64, b: u64) -> u64;

    /// Build the gate-level netlist implementing exactly [`Adder::add`].
    fn netlist(&self) -> (Netlist, AdderPorts);

    /// Mask selecting the `width` low bits.
    fn mask(&self) -> u64 {
        width_mask(self.width())
    }
}

/// Mask with the `width` low bits set.
///
/// # Panics
/// Panics if `width` is 0 or greater than 64.
#[must_use]
#[inline]
pub fn width_mask(width: u32) -> u64 {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        let mut prev = None;
        for level in AccuracyLevel::ALL {
            if let Some(p) = prev {
                assert!(p < level);
            }
            prev = Some(level);
        }
    }

    #[test]
    fn index_round_trips() {
        for level in AccuracyLevel::ALL {
            assert_eq!(AccuracyLevel::from_index(level.index()), Some(level));
        }
        assert_eq!(AccuracyLevel::from_index(5), None);
    }

    #[test]
    fn next_higher_walks_to_accurate() {
        let mut level = AccuracyLevel::Level1;
        let mut hops = 0;
        while let Some(next) = level.next_higher() {
            level = next;
            hops += 1;
        }
        assert_eq!(level, AccuracyLevel::Accurate);
        assert_eq!(hops, 4);
    }

    #[test]
    fn next_lower_inverts_next_higher() {
        for level in AccuracyLevel::ALL {
            if let Some(up) = level.next_higher() {
                assert_eq!(up.next_lower(), Some(level));
            }
        }
        assert_eq!(AccuracyLevel::Level1.next_lower(), None);
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(AccuracyLevel::Level1.to_string(), "level1");
        assert_eq!(AccuracyLevel::Accurate.to_string(), "acc");
    }

    #[test]
    fn width_mask_edges() {
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(48), (1u64 << 48) - 1);
        assert_eq!(width_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn width_mask_zero_panics() {
        let _ = width_mask(0);
    }
}
