//! Small deterministic PRNGs.
//!
//! The experiment harness must be bit-reproducible across platforms and
//! library versions, so dataset generation and Monte-Carlo
//! characterization use this self-contained generator instead of an
//! external crate (see DESIGN.md §2).

/// SplitMix64: tiny, fast, full-period 64-bit generator.
///
/// Used both directly and to seed [`Pcg32`].
///
/// # Example
///
/// ```
/// use approx_arith::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG32 (XSH-RR 64/32): the main generator for datasets and Monte-Carlo
/// sampling. Deterministic, seedable, with an independent stream per
/// `(seed, stream)` pair.
///
/// # Example
///
/// ```
/// use approx_arith::rng::Pcg32;
///
/// let mut rng = Pcg32::seeded(7, 0);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
    /// Cached second Box-Muller variate.
    gauss_spare: Option<f64>,
}

impl Pcg32 {
    /// Create a generator from a seed and stream id.
    #[must_use]
    pub fn seeded(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let init_state = sm.next_u64();
        let inc = (stream << 1) | 1;
        let mut rng = Self {
            state: 0,
            inc,
            gauss_spare: None,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(init_state);
        rng.step();
        rng
    }

    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
    }

    /// Next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection keeps the distribution exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(r) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Standard normal variate via Box-Muller (polar form avoided for
    /// determinism: the trigonometric form consumes a fixed two uniforms).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.next_gaussian()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        let mut rng2 = SplitMix64::new(0);
        assert_eq!(rng2.next_u64(), a);
    }

    #[test]
    fn pcg_streams_differ() {
        let mut s0 = Pcg32::seeded(1, 0);
        let mut s1 = Pcg32::seeded(1, 1);
        let a: Vec<u32> = (0..8).map(|_| s0.next_u32()).collect();
        let b: Vec<u32> = (0..8).map(|_| s1.next_u32()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seeded(3, 0);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seeded(5, 0);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Pcg32::seeded(11, 0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seeded(13, 0);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Pcg32::seeded(1, 0).below(0);
    }
}
