//! Per-operation energy characterization of arithmetic units.
//!
//! Energy is measured, not asserted: each adder mode's netlist is
//! simulated on an operand stream and the switching-activity energy of
//! the run is divided by the number of operations. The resulting
//! per-operation constants are then used by the
//! [`contexts`](crate::context) so that application runs do not pay
//! gate-level simulation costs per arithmetic operation.
//!
//! The simulation itself runs on gatesim's bit-parallel
//! [`PackedSimulator`](gatesim::PackedSimulator) backend via
//! [`trace_toggles`], split across cores; because the packed backend is
//! toggle-identical to the scalar simulator, every energy constant is
//! bit-identical to what the old one-vector-at-a-time loop measured
//! (pinned by this module's tests), just measured much faster.

use gatesim::packed::trace_toggles;
use gatesim::EnergyModel;
use parx::Executor;

use crate::adder::{AccuracyLevel, Adder};
use crate::multiplier::ArrayMultiplier;
use crate::recon::QcsAdder;
use crate::rng::Pcg32;

/// Mean energy per addition of `adder`, measured by gate-level simulation
/// over `samples` uniformly random operand pairs.
///
/// # Panics
/// Panics if `samples` is 0.
#[must_use]
pub fn characterize_adder_energy(
    adder: &dyn Adder,
    samples: u64,
    seed: u64,
    model: &EnergyModel,
) -> f64 {
    assert!(samples > 0, "samples must be positive");
    let (netlist, ports) = adder.netlist();
    // Draw the operand stream up front in the exact order the scalar
    // loop consumed it, so the measured toggles (and hence the energy)
    // stay bit-identical to the historical serial path.
    let mut rng = Pcg32::seeded(seed, 0);
    let mask = adder.mask();
    let vectors: Vec<Vec<bool>> = (0..samples)
        .map(|_| {
            let a = rng.next_u64() & mask;
            let b = rng.next_u64() & mask;
            ports.pack_operands(a, b, false)
        })
        .collect();
    let toggles =
        trace_toggles(&netlist, &vectors, &Executor::new()).expect("ports match their own netlist");
    model.energy(&netlist, &toggles, samples) / samples as f64
}

/// Mean energy per addition on a recorded operand trace, reflecting the
/// application's real operand distribution.
///
/// # Panics
/// Panics if the trace is empty.
#[must_use]
pub fn characterize_adder_energy_on_trace(
    adder: &dyn Adder,
    trace: &[(u64, u64)],
    model: &EnergyModel,
) -> f64 {
    assert!(!trace.is_empty(), "operand trace must be non-empty");
    let (netlist, ports) = adder.netlist();
    let mask = adder.mask();
    let vectors: Vec<Vec<bool>> = trace
        .iter()
        .map(|&(a, b)| ports.pack_operands(a & mask, b & mask, false))
        .collect();
    let toggles =
        trace_toggles(&netlist, &vectors, &Executor::new()).expect("ports match their own netlist");
    model.energy(&netlist, &toggles, trace.len() as u64) / trace.len() as f64
}

/// Per-operation energy constants of the datapath, indexed by accuracy
/// level for additions.
///
/// Multiplication energy is measured on an 8×8 array-multiplier netlist
/// and scaled quadratically to the datapath width (array multipliers are
/// O(w²) in cells); division is modelled as a sequential shift-subtract
/// unit costing one add per result bit. Neither multiplies nor divides
/// are approximated — the paper scales adders only.
///
/// # Example
///
/// ```
/// use approx_arith::{AccuracyLevel, EnergyProfile};
///
/// let profile = EnergyProfile::paper_default();
/// // Lower accuracy must cost less energy per add.
/// assert!(profile.add_energy(AccuracyLevel::Level1)
///     < profile.add_energy(AccuracyLevel::Accurate));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyProfile {
    add: [f64; 5],
    mul: f64,
    div: f64,
}

impl EnergyProfile {
    /// Measure a profile for the given QCS adder by gate-level simulation
    /// of every mode's netlist.
    ///
    /// # Panics
    /// Panics if `samples` is 0.
    #[must_use]
    pub fn characterize(qcs: &QcsAdder, samples: u64, seed: u64, model: &EnergyModel) -> Self {
        let mut add = [0f64; 5];
        for level in AccuracyLevel::ALL {
            add[level.index()] = characterize_adder_energy(&qcs.at(level), samples, seed, model);
        }
        // 8×8 exact array multiplier, scaled quadratically to the datapath
        // width.
        let m8 = ArrayMultiplier::new(8, 0);
        let nl = m8.netlist();
        let mut rng = Pcg32::seeded(seed ^ 0xA5A5, 0);
        let vectors: Vec<Vec<bool>> = (0..samples)
            .map(|_| {
                let a = rng.below(256);
                let b = rng.below(256);
                m8.pack_operands(a, b)
            })
            .collect();
        let toggles = trace_toggles(&nl, &vectors, &Executor::new())
            .expect("multiplier ports match their netlist");
        let mul8 = model.energy(&nl, &toggles, samples) / samples as f64;
        let scale = (f64::from(qcs.width()) / 8.0).powi(2);
        let mul = mul8 * scale;
        // Sequential divider: one exact add per quotient bit.
        let div = add[AccuracyLevel::Accurate.index()] * f64::from(qcs.width());
        Self { add, mul, div }
    }

    /// The profile of [`QcsAdder::paper_default`] measured with 512
    /// samples — the constants every example and benchmark uses.
    ///
    /// Computing this performs a one-off gate-level characterization
    /// (a few milliseconds); cache the result rather than calling it in a
    /// loop.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::characterize(
            &QcsAdder::paper_default(),
            512,
            0x5EED,
            &EnergyModel::default(),
        )
    }

    /// Construct a profile from explicit constants (e.g. deserialized
    /// from a characterization report).
    ///
    /// # Panics
    /// Panics if any energy is not strictly positive or the add energies
    /// are not non-decreasing with accuracy.
    #[must_use]
    pub fn from_constants(add: [f64; 5], mul: f64, div: f64) -> Self {
        assert!(
            add.iter().all(|&e| e > 0.0) && mul > 0.0 && div > 0.0,
            "energies must be positive"
        );
        for pair in add.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "add energy must be non-decreasing with accuracy level"
            );
        }
        Self { add, mul, div }
    }

    /// Energy of one addition at the given accuracy level.
    #[must_use]
    pub fn add_energy(&self, level: AccuracyLevel) -> f64 {
        self.add[level.index()]
    }

    /// Energy of one (exact) multiplication.
    #[must_use]
    pub fn mul_energy(&self) -> f64 {
        self.mul
    }

    /// Energy of one (exact) division.
    #[must_use]
    pub fn div_energy(&self) -> f64 {
        self.div
    }

    /// Per-add energy of each level relative to the accurate mode — the
    /// `J` vector of the paper's Equation (5).
    #[must_use]
    pub fn relative_add_energies(&self) -> [f64; 5] {
        let acc = self.add[AccuracyLevel::Accurate.index()];
        let mut rel = self.add;
        for e in &mut rel {
            *e /= acc;
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RippleCarryAdder;

    #[test]
    fn energy_is_positive_and_repeatable() {
        let model = EnergyModel::default();
        let e1 = characterize_adder_energy(&RippleCarryAdder::new(16), 100, 7, &model);
        let e2 = characterize_adder_energy(&RippleCarryAdder::new(16), 100, 7, &model);
        assert!(e1 > 0.0);
        assert_eq!(e1, e2);
    }

    #[test]
    fn wider_adders_cost_more() {
        let model = EnergyModel::default();
        let e16 = characterize_adder_energy(&RippleCarryAdder::new(16), 200, 7, &model);
        let e48 = characterize_adder_energy(&RippleCarryAdder::new(48), 200, 7, &model);
        assert!(e48 > 2.0 * e16);
    }

    #[test]
    fn profile_orders_levels() {
        let profile = EnergyProfile::characterize(
            &QcsAdder::paper_default(),
            200,
            3,
            &EnergyModel::default(),
        );
        let rel = profile.relative_add_energies();
        for pair in rel.windows(2) {
            assert!(pair[0] < pair[1], "relative energies {rel:?}");
        }
        assert!((rel[4] - 1.0).abs() < 1e-12);
        // The coarsest mode should save a sizable fraction of energy.
        assert!(rel[0] < 0.75, "level1 relative energy {}", rel[0]);
        // Multiplies dominate adds.
        assert!(profile.mul_energy() > profile.add_energy(AccuracyLevel::Accurate));
    }

    /// The historical serial measurement loop, kept as a reference to
    /// pin the packed parallel path bit-for-bit.
    fn scalar_reference_energy(
        adder: &dyn Adder,
        samples: u64,
        seed: u64,
        model: &EnergyModel,
    ) -> f64 {
        let (netlist, ports) = adder.netlist();
        let mut sim = gatesim::Simulator::new(&netlist);
        let mut rng = Pcg32::seeded(seed, 0);
        let mask = adder.mask();
        for _ in 0..samples {
            let a = rng.next_u64() & mask;
            let b = rng.next_u64() & mask;
            sim.evaluate(&ports.pack_operands(a, b, false))
                .expect("ports match their own netlist");
        }
        sim.energy(model) / samples as f64
    }

    #[test]
    fn packed_measurement_is_bit_identical_to_scalar_loop() {
        let model = EnergyModel::default();
        // Every QCS mode netlist (all four approximate levels plus the
        // accurate carry chain), and a plain RCA for good measure.
        let qcs = QcsAdder::paper_default();
        for level in AccuracyLevel::ALL {
            let mode = qcs.at(level);
            let packed = characterize_adder_energy(&mode, 128, 42, &model);
            let scalar = scalar_reference_energy(&mode, 128, 42, &model);
            assert_eq!(packed.to_bits(), scalar.to_bits(), "level {level}");
        }
        let rca = RippleCarryAdder::new(24);
        let packed = characterize_adder_energy(&rca, 200, 7, &model);
        let scalar = scalar_reference_energy(&rca, 200, 7, &model);
        assert_eq!(packed.to_bits(), scalar.to_bits());
    }

    #[test]
    fn trace_energy_reflects_activity() {
        let model = EnergyModel::default();
        let adder = RippleCarryAdder::new(32);
        // A constant trace toggles nothing after the first vector.
        let quiet: Vec<(u64, u64)> = vec![(5, 9); 64];
        let busy: Vec<(u64, u64)> = (0..64u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9), !i))
            .collect();
        let eq = characterize_adder_energy_on_trace(&adder, &quiet, &model);
        let eb = characterize_adder_energy_on_trace(&adder, &busy, &model);
        assert!(eb > eq);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_constants_validates_ordering() {
        let _ = EnergyProfile::from_constants([5.0, 4.0, 3.0, 2.0, 1.0], 10.0, 10.0);
    }
}
