//! Approximate arithmetic for the ApproxIt reproduction: adder
//! architectures (exact and approximate), fixed-point formats, error
//! metrics, measured per-operation energy, and the energy-accounting
//! [`ArithContext`] that applications route their error-resilient
//! datapath through.
//!
//! Every adder exists twice — as a fast bit-parallel functional model and
//! as a [`gatesim`] netlist — and the test suite enforces bit-exact
//! agreement between the two. Energy constants are *measured* from the
//! netlists' switching activity, never asserted.
//!
//! # Quick tour
//!
//! ```
//! use approx_arith::{
//!     AccuracyLevel, Adder, ArithContext, QcsAdder, QcsContext,
//! };
//!
//! // The quality-configurable adder the framework reconfigures at runtime:
//! let qcs = QcsAdder::paper_default();
//! assert_eq!(qcs.add(100, 200, AccuracyLevel::Accurate), 300);
//!
//! // The datapath view applications use:
//! let mut ctx = QcsContext::with_paper_defaults();
//! ctx.set_level(AccuracyLevel::Level4);
//! let y = ctx.add(1.5, 2.5);
//! assert!((y - 4.0).abs() < 0.01); // level 4 is nearly exact
//! assert!(ctx.approx_energy() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aca;
mod adder;
mod context;
mod energy;
mod error_metrics;
mod eta;
mod exact;
mod fault;
mod fixed;
mod gear;
mod loa;
mod multiplier;
mod prefix;
mod recon;
mod trunc;

pub mod errorprop;
pub mod range;
pub mod rng;

pub use aca::WindowedCarryAdder;
pub use adder::{width_mask, AccuracyLevel, Adder};
pub use context::{endorse, ArithContext, ExactContext, OpCounts, QcsContext, ScalarPath};
pub use energy::{characterize_adder_energy, characterize_adder_energy_on_trace, EnergyProfile};
pub use error_metrics::{
    bit_error_rates, characterize_exhaustive, characterize_monte_carlo, characterize_trace,
    error_histogram, ErrorStats,
};
pub use errorprop::{propagate_error, ErrorPropReport, ErrorRecurrence};
pub use eta::EtaIiAdder;
pub use exact::RippleCarryAdder;
pub use fault::{FaultInjector, FaultModel, FaultTargets};
pub use fixed::{QFormat, RawConverter};
pub use gear::GeArAdder;
pub use loa::LowerOrAdder;
pub use multiplier::ArrayMultiplier;
pub use prefix::KoggeStoneAdder;
pub use range::{ExprId, Interval, RangeConfig, RangeGraph, RangeReport, RangeVerdict};
pub use recon::{LowPartPolicy, QcsAdder, QcsModeAdder};
pub use trunc::LowerZeroAdder;

#[cfg(test)]
pub(crate) mod test_util {
    use gatesim::Simulator;

    use crate::adder::Adder;
    use crate::rng::Pcg32;

    /// Assert that an adder's netlist agrees bit-exactly with its
    /// functional model over `samples` random operand pairs (plus a few
    /// corner cases).
    pub(crate) fn assert_netlist_matches(adder: &dyn Adder, samples: u64) {
        let (netlist, ports) = adder.netlist();
        netlist.validate().expect("builder netlists are valid");
        let mut sim = Simulator::new(&netlist);
        let mask = adder.mask();
        let mut check = |a: u64, b: u64| {
            let out = sim
                .evaluate(&ports.pack_operands(a, b, false))
                .expect("ports match their own netlist");
            let (got, _) = ports.unpack_result(&out);
            let want = adder.add(a, b);
            assert_eq!(
                got,
                want,
                "{}: netlist {got:#x} != functional {want:#x} for a={a:#x} b={b:#x}",
                adder.name()
            );
        };
        check(0, 0);
        check(mask, mask);
        check(mask, 1);
        check(1, mask);
        let mut rng = Pcg32::seeded(0xDECAF, 0);
        for _ in 0..samples {
            check(rng.next_u64() & mask, rng.next_u64() & mask);
        }
    }
}
